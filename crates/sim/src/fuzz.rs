//! Randomized-schedule fuzzing: beyond the hand-crafted adversary
//! scenarios, explore *arbitrary* interleavings of the simulated
//! algorithms under a seeded random scheduler and check every produced
//! history for linearizability.
//!
//! The point mirrors the paper's framing: the sound algorithms
//! (Listings 2 within its assumption, and 4) must survive **every**
//! schedule, while for the unsound ones (naive strawman, two-null) random
//! search alone occasionally rediscovers the violations the proof
//! constructs deterministically — evidence that the adversary scenarios
//! are not knife-edge artifacts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algos::counter_queue::{dcss, distinct, naive, two_null, CounterQueue, Flavor};
use crate::controller::{RunOutcome, Sim};
use crate::lincheck::{check_history, LinResult};
use crate::machine::{Op, SimQueue};
use crate::mem::SimMemory;

/// Parameters of one fuzz round.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Algorithm flavor to drive.
    pub flavor: Flavor,
    /// Queue capacity.
    pub capacity: usize,
    /// Number of concurrent threads.
    pub threads: usize,
    /// Total operations to invoke (kept ≤ ~20 for the checker).
    pub ops: usize,
    /// When true, enqueue values are drawn from a tiny set so they repeat
    /// (violating Listing 2's assumption; irrelevant for value-independent
    /// flavors).
    pub repeated_values: bool,
}

/// Run one seeded fuzz round; returns the checker's verdict on the
/// produced history.
pub fn fuzz_round(cfg: FuzzConfig, seed: u64) -> LinResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = SimMemory::new();
    let q = match cfg.flavor {
        Flavor::Naive => naive(cfg.capacity, &mut mem),
        Flavor::Distinct => distinct(cfg.capacity, &mut mem),
        Flavor::TwoNull => two_null(cfg.capacity, &mut mem),
        Flavor::Dcss => dcss(cfg.capacity, &mut mem),
    };
    let capacity = q.capacity();
    let mut sim: Sim<CounterQueue> = Sim::new(q, mem, cfg.threads);

    let mut invoked = 0usize;
    let mut fresh = 1u64;
    // Random scheduling loop: at each tick, pick a thread; if idle and we
    // still have budget, invoke a random op; otherwise advance it one
    // primitive. A thread may thus pause mid-operation for arbitrarily
    // long — exactly the stalls the paper's model allows.
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(guard < 200_000, "fuzz scheduler failed to converge");
        let tid = rng.gen_range(0..cfg.threads);
        if sim.is_busy(tid) {
            let _ = sim.step(tid);
        } else if invoked < cfg.ops {
            let op = if rng.gen_bool(0.5) {
                let v = if cfg.repeated_values {
                    1 + rng.gen_range(0..3u64)
                } else {
                    fresh += 1;
                    fresh
                };
                Op::Enqueue(v)
            } else {
                Op::Dequeue
            };
            sim.invoke(tid, op);
            invoked += 1;
        } else {
            // Budget exhausted: drain the remaining busy threads with a
            // random (but fair) schedule.
            let busy: Vec<usize> = (0..cfg.threads).filter(|&t| sim.is_busy(t)).collect();
            if busy.is_empty() {
                break;
            }
            let t = busy[rng.gen_range(0..busy.len())];
            if let RunOutcome::Completed(_) = sim.step(t) {
                continue;
            }
        }
    }
    check_history(sim.history(), capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(flavor: Flavor, repeated: bool, seeds: std::ops::Range<u64>) -> (usize, usize) {
        let mut ok = 0;
        let mut bad = 0;
        for seed in seeds {
            let cfg = FuzzConfig {
                flavor,
                capacity: 2,
                threads: 3,
                ops: 10,
                repeated_values: repeated,
            };
            match fuzz_round(cfg, seed) {
                LinResult::Linearizable(_) => ok += 1,
                LinResult::NotLinearizable => bad += 1,
            }
        }
        (ok, bad)
    }

    #[test]
    fn listing2_distinct_values_always_linearizable() {
        let (_, bad) = sweep(Flavor::Distinct, false, 0..400);
        assert_eq!(bad, 0, "Listing 2 within its assumption must never fail");
    }

    #[test]
    fn listing4_dcss_always_linearizable_even_with_repeats() {
        let (_, bad) = sweep(Flavor::Dcss, true, 0..400);
        assert_eq!(bad, 0, "Listing 4 is value-independent and must never fail");
    }

    #[test]
    fn naive_strawman_found_broken_by_random_search() {
        // The violations aren't knife-edge: random schedules with repeated
        // values rediscover them. (Seeded — deterministic.)
        let (ok, bad) = sweep(Flavor::Naive, true, 0..400);
        assert!(
            bad > 0,
            "random search should hit at least one violation ({ok} ok)"
        );
    }

    #[test]
    fn deterministic_replay() {
        let cfg = FuzzConfig {
            flavor: Flavor::Dcss,
            capacity: 2,
            threads: 3,
            ops: 12,
            repeated_values: true,
        };
        let a = fuzz_round(cfg, 12345);
        let b = fuzz_round(cfg, 12345);
        assert_eq!(
            a.is_linearizable(),
            b.is_linearizable(),
            "same seed must replay the same schedule"
        );
    }
}
