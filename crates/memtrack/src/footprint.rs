//! Structural memory accounting.
//!
//! Every queue in this workspace reports where its bytes go, split into the
//! paper's two categories: **element storage** (the `C` value-locations that
//! any bounded queue of capacity `C` must have) and **overhead** (everything
//! else). The overhead entries are further classified so the experiment
//! tables can show *why* an implementation pays what it pays.

use std::fmt;

/// Classification of an overhead contribution, used to aggregate the
/// experiment tables. The variants mirror the mechanisms discussed in the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverheadClass {
    /// Positioning counters (`enqueues`/`dequeues`, head/tail).
    Counters,
    /// Per-slot metadata co-located with elements (sequence numbers, epochs,
    /// versioned nulls wider than the value, LL/SC emulation tags).
    PerSlotMetadata,
    /// Operation descriptors (DCSS descriptors, `EnqOp` descriptors).
    Descriptors,
    /// Announcement/"ops" arrays indexed by thread.
    Announcement,
    /// Per-node linkage in linked structures (next pointers, segment ids).
    Linkage,
    /// Synchronization primitives (locks, condvars).
    Locks,
    /// Anything else (padding, container headers, …).
    Other,
}

impl fmt::Display for OverheadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OverheadClass::Counters => "counters",
            OverheadClass::PerSlotMetadata => "per-slot metadata",
            OverheadClass::Descriptors => "descriptors",
            OverheadClass::Announcement => "announcement array",
            OverheadClass::Linkage => "linkage",
            OverheadClass::Locks => "locks",
            OverheadClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// One named contribution to a queue's memory footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintEntry {
    /// Human-readable label, e.g. `"ops announcement array (T slots)"`.
    pub label: String,
    /// Bytes attributed to this entry.
    pub bytes: usize,
    /// Aggregation class.
    pub class: OverheadClass,
}

impl FootprintEntry {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, bytes: usize, class: OverheadClass) -> Self {
        FootprintEntry {
            label: label.into(),
            bytes,
            class,
        }
    }
}

/// A complete structural footprint: element bytes plus an itemized overhead
/// list.
#[derive(Debug, Clone, Default)]
pub struct FootprintBreakdown {
    /// Bytes used by the `C` value-locations themselves.
    pub element_bytes: usize,
    /// Itemized overhead entries.
    pub overhead: Vec<FootprintEntry>,
}

impl FootprintBreakdown {
    /// Start a breakdown with the given element-storage size.
    pub fn with_elements(element_bytes: usize) -> Self {
        FootprintBreakdown {
            element_bytes,
            overhead: Vec::new(),
        }
    }

    /// Add an overhead entry (builder style).
    pub fn add(mut self, label: impl Into<String>, bytes: usize, class: OverheadClass) -> Self {
        self.overhead.push(FootprintEntry::new(label, bytes, class));
        self
    }

    /// Total overhead bytes.
    pub fn overhead_bytes(&self) -> usize {
        self.overhead.iter().map(|e| e.bytes).sum()
    }

    /// Total footprint: elements + overhead.
    pub fn total_bytes(&self) -> usize {
        self.element_bytes + self.overhead_bytes()
    }

    /// Sum of overhead bytes in a given class.
    pub fn class_bytes(&self, class: OverheadClass) -> usize {
        self.overhead
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.bytes)
            .sum()
    }
}

/// Structural memory accounting, implemented by every queue in the
/// workspace.
///
/// Implementations must report their *actual* current memory: a queue whose
/// overhead varies at runtime (e.g. the segment queue of Listing 1, whose
/// live segment count depends on head/tail positions) reports the
/// instantaneous value.
pub trait MemoryFootprint {
    /// Itemized breakdown of this structure's memory.
    fn footprint(&self) -> FootprintBreakdown;

    /// Bytes dedicated to element storage (the `C` value-locations).
    fn element_bytes(&self) -> usize {
        self.footprint().element_bytes
    }

    /// Bytes of overhead — the paper's metric.
    fn overhead_bytes(&self) -> usize {
        self.footprint().overhead_bytes()
    }

    /// Total bytes.
    fn total_bytes(&self) -> usize {
        self.footprint().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let b = FootprintBreakdown::with_elements(8 * 1024)
            .add("head+tail", 16, OverheadClass::Counters)
            .add("per-slot seq", 8 * 1024, OverheadClass::PerSlotMetadata)
            .add("descriptors", 640, OverheadClass::Descriptors);
        assert_eq!(b.element_bytes, 8192);
        assert_eq!(b.overhead_bytes(), 16 + 8192 + 640);
        assert_eq!(b.total_bytes(), 8192 + 16 + 8192 + 640);
        assert_eq!(b.class_bytes(OverheadClass::Counters), 16);
        assert_eq!(b.class_bytes(OverheadClass::PerSlotMetadata), 8192);
        assert_eq!(b.class_bytes(OverheadClass::Locks), 0);
    }

    #[test]
    fn default_is_empty() {
        let b = FootprintBreakdown::default();
        assert_eq!(b.total_bytes(), 0);
        assert_eq!(b.overhead_bytes(), 0);
    }

    struct Fake;
    impl MemoryFootprint for Fake {
        fn footprint(&self) -> FootprintBreakdown {
            FootprintBreakdown::with_elements(100).add("x", 7, OverheadClass::Other)
        }
    }

    #[test]
    fn trait_defaults_delegate() {
        let f = Fake;
        assert_eq!(f.element_bytes(), 100);
        assert_eq!(f.overhead_bytes(), 7);
        assert_eq!(f.total_bytes(), 107);
    }

    #[test]
    fn class_display() {
        assert_eq!(OverheadClass::Descriptors.to_string(), "descriptors");
        assert_eq!(
            OverheadClass::Announcement.to_string(),
            "announcement array"
        );
    }
}
