//! **Cross-process variable-length byte ring** — a
//! [`RelocByteRing`](bq_core::relocatable::RelocByteRing) served out of an
//! `mmap`-shared [`ShmSegment`], carrying length-prefixed messages between
//! one producer *process* and one consumer *process* with zero copies on
//! either side (DESIGN.md §12; the ARINC 653 queuing-port shape of
//! §10.4, now with real payload bytes instead of token words).
//!
//! ## Role claiming
//!
//! The byte ring is strictly SPSC, and across processes ownership cannot
//! be a Rust `&mut`: the producer/consumer roles are handed out through
//! two **claim words** in the ring header. [`ShmByteRing::producer`]
//! CASes the word from 0 to the caller's pid; a second claim from a
//! *live* pid is refused, while a claim word held by a **dead** process
//! (`kill(pid, 0) == ESRCH`) is stolen — the successor process resumes
//! exactly where the victim's last published counter left it.
//!
//! ## Crash consistency
//!
//! The record protocol makes the two crash windows benign (the argument
//! is spelled out in DESIGN.md §12.3):
//!
//! * producer dies before its `tail` release-store → the torn record is
//!   after `tail`, invisible to every consumer forever; the successor
//!   producer overwrites it;
//! * consumer dies before its `head` release-store → the message is
//!   still between `head` and `tail`; the successor consumer reads it
//!   again (at-least-once on the consumer side, never lost).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bq_core::relocatable::{ByteReadGrant, ByteWriteGrant, RelocByteRing};
use bq_core::SimAtomicU64;

use crate::segment::ShmSegment;

/// Layout tag for a byte-ring payload ("SHQ2" + "BYTE"): geometry lives
/// in the ring header itself, so the tag only names the protocol.
pub const BYTE_RING_LAYOUT_TAG: u64 = 0x5348_5132_4259_5445;

/// A role claim was refused because the role is already held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleHeld {
    /// Pid of the live holder.
    pub pid: u32,
}

impl std::fmt::Display for RoleHeld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "byte-ring role already held by live process {}",
            self.pid
        )
    }
}

impl std::error::Error for RoleHeld {}

/// `kill(pid, 0) == ESRCH`: no such process. (A pid that merely belongs
/// to another user reports `EPERM` — alive, so not stealable.)
fn pid_is_dead(pid: u32) -> bool {
    // SAFETY: signal 0 performs no delivery, only the existence check.
    let r = unsafe { libc::kill(pid as libc::pid_t, 0) };
    r == -1 && std::io::Error::last_os_error().raw_os_error() == Some(libc::ESRCH)
}

/// Claim a role word: 0 → pid, or steal from a dead holder. The retry
/// loop only continues on lost CAS races, each of which means another
/// claimant made progress — but it still backs off (spin → yield) so a
/// pile-up of claimants after a death converges instead of thrashing the
/// claim line. `Ok(true)` means the claim was a *steal* from a dead
/// holder (the caller attributes the reclaim — DESIGN.md §14).
fn claim_role(word: &SimAtomicU64) -> Result<bool, RoleHeld> {
    let me = std::process::id() as u64;
    let mut backoff = bq_core::retry::Backoff::new();
    loop {
        let cur = word.load(Ordering::SeqCst);
        if cur == 0 {
            if word
                .compare_exchange(0, me, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(false);
            }
            backoff.snooze();
            continue; // raced; re-read
        }
        if cur != me && pid_is_dead(cur as u32) {
            if word
                .compare_exchange(cur, me, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(true);
            }
            backoff.snooze();
            continue;
        }
        // Held by ourselves (double claim) or by a live process.
        return Err(RoleHeld { pid: cur as u32 });
    }
}

/// Release a role word if we still hold it (benign no-op otherwise —
/// e.g. a successor already stole it from our dead pid record).
fn release_role(word: &SimAtomicU64) {
    let me = std::process::id() as u64;
    let _ = word.compare_exchange(me, 0, Ordering::SeqCst, Ordering::SeqCst);
}

/// A variable-length SPSC byte ring in an `mmap`-shared segment. `Clone`
/// shares the mapping (for handing to `fork` children); the producer and
/// consumer **roles** are claimed separately via [`producer`]/[`consumer`]
/// (at most one live holder each, enforced across processes).
///
/// [`producer`]: Self::producer
/// [`consumer`]: Self::consumer
pub struct ShmByteRing {
    seg: Arc<ShmSegment>,
    ring: RelocByteRing,
}

// SAFETY: the segment mapping is process-shared by construction; shared
// access through `&self` only touches the ring's atomics (counters,
// claim words). The data-plane ops live on the role endpoints.
unsafe impl Send for ShmByteRing {}
unsafe impl Sync for ShmByteRing {}

impl Clone for ShmByteRing {
    fn clone(&self) -> Self {
        ShmByteRing {
            seg: Arc::clone(&self.seg),
            ring: self.ring,
        }
    }
}

impl ShmByteRing {
    /// Create a byte ring with `cap_bytes` data bytes (multiple of 8,
    /// holding at least two maximum-size records) carrying messages up
    /// to `max_msg` bytes, in a fresh anonymous shared segment (shared
    /// with all future `fork` children).
    pub fn create_anon(cap_bytes: usize, max_msg: usize) -> std::io::Result<ShmByteRing> {
        let layout = RelocByteRing::layout(cap_bytes);
        let seg = ShmSegment::create_anon(layout.size(), BYTE_RING_LAYOUT_TAG)?;
        // SAFETY: the payload region is zeroed, 128-aligned, and at
        // least `layout.size()` bytes; the segment was created by us.
        let ring = unsafe { RelocByteRing::init_at(seg.payload_ptr(), cap_bytes, max_msg) };
        seg.publish();
        Ok(ShmByteRing {
            seg: Arc::new(seg),
            ring,
        })
    }

    /// Create a byte ring in a file-backed segment at `path`, for
    /// unrelated processes to [`open_file`](Self::open_file).
    pub fn create_file(
        path: &std::path::Path,
        cap_bytes: usize,
        max_msg: usize,
    ) -> std::io::Result<ShmByteRing> {
        let layout = RelocByteRing::layout(cap_bytes);
        let seg = ShmSegment::create_file(path, layout.size(), BYTE_RING_LAYOUT_TAG)?;
        // SAFETY: as in `create_anon`.
        let ring = unsafe { RelocByteRing::init_at(seg.payload_ptr(), cap_bytes, max_msg) };
        seg.publish();
        Ok(ShmByteRing {
            seg: Arc::new(seg),
            ring,
        })
    }

    /// Attach to a published byte-ring segment file created by another
    /// process (the relocation path: the mapping lands at a different
    /// base address here and the view is rebuilt from it).
    pub fn open_file(path: &std::path::Path) -> std::io::Result<ShmByteRing> {
        let seg = ShmSegment::open_file(path, BYTE_RING_LAYOUT_TAG)?;
        // SAFETY: the header check accepted magic/version/tag/length, so
        // the payload is an initialized `RelocByteRing` region.
        let ring = unsafe { RelocByteRing::from_raw(seg.payload_ptr()) };
        Ok(ShmByteRing {
            seg: Arc::new(seg),
            ring,
        })
    }

    /// The segment this ring lives in (scratch counters, process table).
    pub fn segment(&self) -> &Arc<ShmSegment> {
        &self.seg
    }

    /// Data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.ring.capacity_bytes()
    }

    /// Maximum message length in bytes.
    pub fn max_msg(&self) -> usize {
        self.ring.max_msg()
    }

    /// Bytes currently in flight (records + wrap padding).
    pub fn bytes_used(&self) -> usize {
        self.ring.bytes_used()
    }

    /// Claim the producer role for the calling process. Fails with the
    /// holder's pid while the role is held by a live process; a dead
    /// holder's claim is stolen.
    pub fn producer(&self) -> Result<ShmByteProducer, RoleHeld> {
        let stole = claim_role(self.ring.prod_claim())?;
        let proc_idx = self.note_role_claim(stole);
        Ok(ShmByteProducer {
            ring: self.clone(),
            proc_idx,
        })
    }

    /// Claim the consumer role for the calling process (same contract as
    /// [`producer`](Self::producer)).
    pub fn consumer(&self) -> Result<ShmByteConsumer, RoleHeld> {
        let stole = claim_role(self.ring.cons_claim())?;
        let proc_idx = self.note_role_claim(stole);
        Ok(ShmByteConsumer {
            ring: self.clone(),
            proc_idx,
        })
    }

    /// Attribute a won role claim (and, for a steal from a dead holder,
    /// the implied reclaim) to the calling process's table slot, so the
    /// tallies survive this process like the queue's do (DESIGN.md §14).
    fn note_role_claim(&self, stole: bool) -> usize {
        let idx = self.seg.find_or_register_self();
        self.seg.note_proc_claim(idx);
        if stole {
            self.seg.note_proc_reclaim(idx);
        }
        idx
    }

    /// Cross-process metrics for this ring's segment — the byte-ring
    /// mirror of [`ShmQueue::stats_snapshot`](crate::ShmQueue::stats_snapshot).
    pub fn stats_snapshot(&self) -> bq_core::MetricsSnapshot {
        self.seg.stats_snapshot()
    }

    /// Proactively release every endpoint whose holder the pid oracle
    /// confirms dead, so successors claim without first colliding with
    /// the stale holder (the eager counterpart of the lazy steal in the
    /// claim path — same verdict, same CAS, just not deferred to the
    /// next claimant). Each freed endpoint is recorded in the segment's
    /// poison counter. Returns how many endpoints were freed.
    pub fn recover(&self) -> usize {
        let mut freed = 0;
        for word in [self.ring.prod_claim(), self.ring.cons_claim()] {
            let cur = word.load(Ordering::SeqCst);
            if cur != 0
                && pid_is_dead(cur as u32)
                && word
                    .compare_exchange(cur, 0, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.seg.note_poison();
                freed += 1;
            }
        }
        freed
    }
}

/// The claimed producer role of a [`ShmByteRing`]. Releases the claim
/// word on drop; a crashed holder is stolen from via the pid liveness
/// check instead.
pub struct ShmByteProducer {
    ring: ShmByteRing,
    proc_idx: usize,
}

// SAFETY: the endpoint is the unique producer by claim-word contract;
// moving it between threads moves the role with it.
unsafe impl Send for ShmByteProducer {}

impl ShmByteProducer {
    /// Reserve in-place space for one message of up to `len ≤ max_msg`
    /// bytes (`None` when the ring lacks room). Fill and `commit(used)`;
    /// dropping the grant aborts.
    pub fn try_grant(&mut self, len: usize) -> Option<ByteWriteGrant<'_>> {
        self.ring.seg.note_proc_attempt(self.proc_idx);
        // SAFETY: holding the claimed endpoint is the single-producer
        // discipline the ring op requires.
        unsafe { self.ring.ring.producer_grant(len) }
    }

    /// Copy-convenience enqueue. `false` when the ring lacks room.
    pub fn push(&mut self, msg: &[u8]) -> bool {
        self.ring.seg.note_proc_attempt(self.proc_idx);
        // SAFETY: as in `try_grant`.
        unsafe { self.ring.ring.producer_push(msg) }
    }

    /// The underlying ring (counters, geometry).
    pub fn ring(&self) -> &ShmByteRing {
        &self.ring
    }

    /// This endpoint's process-table slot (counter attribution).
    pub fn proc_idx(&self) -> usize {
        self.proc_idx
    }
}

impl Drop for ShmByteProducer {
    fn drop(&mut self) {
        release_role(self.ring.ring.prod_claim());
    }
}

/// The claimed consumer role of a [`ShmByteRing`] (mirror of
/// [`ShmByteProducer`]).
pub struct ShmByteConsumer {
    ring: ShmByteRing,
    proc_idx: usize,
}

// SAFETY: unique consumer by claim-word contract.
unsafe impl Send for ShmByteConsumer {}

impl ShmByteConsumer {
    /// Borrow the oldest message in place (`None` when empty). The ring
    /// space is reclaimed when the grant drops — a process dying with a
    /// live grant redelivers the message to its successor.
    pub fn try_read(&mut self) -> Option<ByteReadGrant<'_>> {
        self.ring.seg.note_proc_attempt(self.proc_idx);
        // SAFETY: holding the claimed endpoint is the single-consumer
        // discipline the ring op requires.
        unsafe { self.ring.ring.consumer_read() }
    }

    /// Copy-convenience dequeue appending to `out`. `false` when empty.
    pub fn pop(&mut self, out: &mut Vec<u8>) -> bool {
        self.ring.seg.note_proc_attempt(self.proc_idx);
        // SAFETY: as in `try_read`.
        unsafe { self.ring.ring.consumer_pop(out) }
    }

    /// The underlying ring (counters, geometry).
    pub fn ring(&self) -> &ShmByteRing {
        &self.ring
    }

    /// This endpoint's process-table slot (counter attribution).
    pub fn proc_idx(&self) -> usize {
        self.proc_idx
    }
}

impl Drop for ShmByteConsumer {
    fn drop(&mut self) {
        release_role(self.ring.ring.cons_claim());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_roundtrip_and_role_exclusion() {
        let ring = ShmByteRing::create_anon(4096, 512).unwrap();
        let mut tx = ring.producer().unwrap();
        // The role is exclusive while held...
        let held = match ring.producer() {
            Err(e) => e,
            Ok(_) => panic!("second producer claim must be refused"),
        };
        assert_eq!(
            held,
            RoleHeld {
                pid: std::process::id()
            }
        );
        let mut rx = ring.consumer().unwrap();
        assert!(tx.push(b"ping"));
        {
            let g = rx.try_read().unwrap();
            assert_eq!(&*g, b"ping");
        }
        assert!(rx.try_read().is_none());
        // ...and released on drop.
        drop(tx);
        let _tx2 = ring.producer().unwrap();
    }

    #[test]
    fn file_backed_attach_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bq_byte_ring_{}.seg", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ring = ShmByteRing::create_file(&path, 1024, 128).unwrap();
        let mut tx = ring.producer().unwrap();
        assert!(tx.push(b"over the file"));

        let attached = ShmByteRing::open_file(&path).unwrap();
        assert_eq!(attached.capacity_bytes(), 1024);
        assert_eq!(attached.max_msg(), 128);
        let mut rx = attached.consumer().unwrap();
        let mut out = Vec::new();
        assert!(rx.pop(&mut out));
        assert_eq!(out, b"over the file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dead_holder_claim_is_stolen() {
        let ring = ShmByteRing::create_anon(256, 32).unwrap();
        // Plant a pid that certainly does not exist: pid_max on Linux
        // defaults well below this, and kill(, 0) then reports ESRCH.
        ring.ring.prod_claim().store(0x3FFF_FF17, Ordering::SeqCst);
        let mut tx = ring.producer().expect("dead holder must be stolen from");
        // The steal is attributed to the stealer's table slot, and the
        // endpoint's data-plane ops count as its attempts.
        let me = tx.proc_idx();
        assert!(tx.push(b"x"));
        assert!(tx.push(b"y"));
        let snap = ring.stats_snapshot();
        assert_eq!(snap.get(&format!("proc{me}.claims")), Some(1));
        assert_eq!(snap.get(&format!("proc{me}.reclaims")), Some(1));
        assert_eq!(snap.get(&format!("proc{me}.attempts")), Some(2));
    }

    #[test]
    fn recover_frees_both_dead_endpoints_in_one_sweep() {
        let ring = ShmByteRing::create_anon(256, 32).unwrap();
        // Both roles held by pids that cannot exist (ESRCH ⇒ dead).
        ring.ring.prod_claim().store(0x3FFF_FF19, Ordering::SeqCst);
        ring.ring.cons_claim().store(0x3FFF_FF1A, Ordering::SeqCst);
        assert_eq!(ring.recover(), 2, "one sweep frees both endpoints");
        assert_eq!(ring.recover(), 0, "sweep is idempotent");
        assert_eq!(ring.segment().poison_count(), 2, "faults recorded");
        // Successors claim cleanly — no steal collision left.
        assert_eq!(ring.ring.prod_claim().load(Ordering::SeqCst), 0);
        let mut tx = ring.producer().unwrap();
        let mut rx = ring.consumer().unwrap();
        assert!(tx.push(b"clean"));
        let mut out = Vec::new();
        assert!(rx.pop(&mut out));
        assert_eq!(out, b"clean");
    }
}
