//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a minimal harness behind the criterion API subset the benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`/`throughput`,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`.
//!
//! Measurement model: each sample times a batch of iterations sized to
//! the configured measurement time; the harness reports the median
//! sample (ns/iter and, when a throughput was declared, elements/sec).
//! No plots, no statistics beyond the median — enough to compare the
//! workspace's queues against each other on one machine.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput declaration for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the closure being benchmarked; runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results_ns_per_iter: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to size the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.samples.max(1) as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            samples.push(elapsed * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.results_ns_per_iter.push(samples[samples.len() / 2]);
    }
}

/// An opaque black box inhibiting constant-folding of benchmark payloads.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Declare the work performed per iteration (enables rate reporting).
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            results_ns_per_iter: &mut results,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        for ns in &results {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let rate = n as f64 / (ns * 1e-9);
                    println!("{full}: {ns:.1} ns/iter ({rate:.3e} elem/s)");
                }
                Some(Throughput::Bytes(n)) => {
                    let rate = n as f64 / (ns * 1e-9);
                    println!("{full}: {ns:.1} ns/iter ({rate:.3e} B/s)");
                }
                None => println!("{full}: {ns:.1} ns/iter"),
            }
        }
        self.criterion.completed += 1;
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher<'_>)) {
        let mut f = f;
        self.run_one(id.to_string(), |b| f(b));
    }

    /// Benchmark a closure receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher<'_>, &I),
    ) {
        let mut f = f;
        self.run_one(id.id.clone(), |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark harness context.
#[derive(Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Parse CLI configuration (no-op in the shim; accepts and ignores
    /// the harness arguments cargo-bench passes, e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher<'_>)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }

    /// Print the run summary.
    pub fn final_summary(&self) {
        println!("criterion shim: {} benchmarks completed", self.completed);
    }
}

/// Collect benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generate the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
