//! A dynamic, object-safe view over every queue in the workspace, so the
//! experiment drivers can sweep "all algorithms × all parameters" without
//! monomorphizing each combination.
//!
//! [`ConcurrentQueue`] is not object safe (associated `Handle`), so
//! [`Registered`] pre-registers `T` handles behind mutexes; each benchmark
//! thread locks only its own handle, so the lock is always uncontended and
//! adds a uniform constant to every implementation.

use parking_lot::Mutex;

use bq_baselines::{
    CrossbeamArrayQueue, MsQueue, MutexRingQueue, ScqStyleQueue, TwoNullQueue, VyukovQueue,
};
use bq_core::{
    byte_ring, ByteConsumer, ByteProducer, ConcurrentQueue, DcssQueue, DistinctQueue, LlScQueue,
    NaiveQueue, OptimalQueue, SegmentQueue, ShardedQueue,
};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint};
use bq_shm::ShmQueue;

/// Object-safe queue interface for the experiment drivers.
pub trait DynQueue: Send + Sync {
    /// Algorithm name (stable across runs; used as table row label).
    fn name(&self) -> &'static str;
    /// Enqueue on behalf of registered thread `tid`; `false` = full.
    fn enqueue(&self, tid: usize, v: u64) -> bool;
    /// Dequeue on behalf of registered thread `tid`.
    fn dequeue(&self, tid: usize) -> Option<u64>;
    /// Capacity `C`.
    fn capacity(&self) -> usize;
    /// Number of pre-registered thread handles.
    fn threads(&self) -> usize;
    /// Largest valid token.
    fn max_token(&self) -> u64;
    /// Structural footprint (the paper's overhead metric).
    fn footprint(&self) -> FootprintBreakdown;
    /// Is this implementation linearizable in general? (`false` for the
    /// strawman and the two-null model — they are included to *show* the
    /// lower bound, not to compete.)
    fn sound(&self) -> bool;
    /// Does this implementation preserve **global FIFO** order? `false`
    /// for the sharded compositions, which relax it to per-shard FIFO
    /// (DESIGN.md §8) — the sequential-spec and strict-FIFO suites skip
    /// those rows and the pool-spec suites cover them instead.
    fn fifo(&self) -> bool;
    /// Batch enqueue on behalf of thread `tid`: accepts a prefix of `vs`
    /// (through the queue's native batch path where one exists) and
    /// returns the count.
    fn enqueue_many(&self, tid: usize, vs: &[u64]) -> usize;
    /// Batch dequeue on behalf of thread `tid`: up to `max` elements
    /// appended to `out`; returns the count.
    fn dequeue_many(&self, tid: usize, max: usize, out: &mut Vec<u64>) -> usize;
    /// Observability snapshot (DESIGN.md §14): the queue's counter blocks
    /// flattened to `name → value`. Empty without the `obs` feature (and
    /// for implementations with no counters of their own).
    fn metrics(&self) -> bq_core::MetricsSnapshot {
        bq_core::MetricsSnapshot::new()
    }
}

struct Registered<Q: ConcurrentQueue + MemoryFootprint> {
    name: &'static str,
    sound: bool,
    fifo: bool,
    q: Q,
    handles: Vec<Mutex<Q::Handle>>,
}

impl<Q: ConcurrentQueue + MemoryFootprint> Registered<Q> {
    fn new(name: &'static str, sound: bool, q: Q, threads: usize) -> Self {
        Self::with_fifo(name, sound, true, q, threads)
    }

    fn with_fifo(name: &'static str, sound: bool, fifo: bool, q: Q, threads: usize) -> Self {
        let handles = (0..threads).map(|_| Mutex::new(q.register())).collect();
        Registered {
            name,
            sound,
            fifo,
            q,
            handles,
        }
    }
}

impl<Q: ConcurrentQueue + MemoryFootprint> DynQueue for Registered<Q> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn enqueue(&self, tid: usize, v: u64) -> bool {
        let mut h = self.handles[tid].lock();
        self.q.enqueue(&mut h, v).is_ok()
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        let mut h = self.handles[tid].lock();
        self.q.dequeue(&mut h)
    }

    fn capacity(&self) -> usize {
        self.q.capacity()
    }

    fn threads(&self) -> usize {
        self.handles.len()
    }

    fn max_token(&self) -> u64 {
        self.q.max_token()
    }

    fn footprint(&self) -> FootprintBreakdown {
        self.q.footprint()
    }

    fn sound(&self) -> bool {
        self.sound
    }

    fn fifo(&self) -> bool {
        self.fifo
    }

    fn enqueue_many(&self, tid: usize, vs: &[u64]) -> usize {
        let mut h = self.handles[tid].lock();
        self.q.enqueue_many(&mut h, vs)
    }

    fn dequeue_many(&self, tid: usize, max: usize, out: &mut Vec<u64>) -> usize {
        let mut h = self.handles[tid].lock();
        self.q.dequeue_many(&mut h, max, out)
    }

    fn metrics(&self) -> bq_core::MetricsSnapshot {
        // Fold every slot's handle-local deltas in first: the dyn
        // interface owns the handles, so callers cannot flush them.
        for h in self.handles.iter() {
            self.q.flush_metrics(&mut h.lock());
        }
        self.q.metrics()
    }
}

/// The byte ring behind the registry interface: `u64` tokens travel as
/// 8-byte little-endian messages (16-byte records: length header + body),
/// so the variable-length data path can sit in the same tables as the
/// slot queues. The ring itself is SPSC; the registry's per-endpoint
/// mutexes serialize the benchmark threads onto the two roles — the same
/// uniform constant every `Registered` queue pays per handle.
struct ByteTokenQueue {
    prod: Mutex<ByteProducer>,
    cons: Mutex<ByteConsumer>,
    cap: usize,
    threads: usize,
}

impl ByteTokenQueue {
    fn new(c: usize, threads: usize) -> Self {
        // Two records must fit for the wrap-pad progress bound; each
        // token record is exactly 16 bytes, so 16·C bytes = C tokens.
        let c = c.max(2);
        let (prod, cons) = byte_ring(16 * c, 8);
        ByteTokenQueue {
            prod: Mutex::new(prod),
            cons: Mutex::new(cons),
            cap: c,
            threads,
        }
    }
}

impl DynQueue for ByteTokenQueue {
    fn name(&self) -> &'static str {
        "byte-ring"
    }

    fn enqueue(&self, _tid: usize, v: u64) -> bool {
        self.prod.lock().push(&v.to_le_bytes())
    }

    fn dequeue(&self, _tid: usize) -> Option<u64> {
        let mut cons = self.cons.lock();
        let g = cons.try_read()?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&g);
        Some(u64::from_le_bytes(b))
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn max_token(&self) -> u64 {
        u64::MAX
    }

    fn footprint(&self) -> FootprintBreakdown {
        self.prod.lock().footprint()
    }

    fn sound(&self) -> bool {
        true
    }

    fn fifo(&self) -> bool {
        true
    }

    fn enqueue_many(&self, _tid: usize, vs: &[u64]) -> usize {
        let mut prod = self.prod.lock();
        let mut n = 0;
        for v in vs {
            if !prod.push(&v.to_le_bytes()) {
                break;
            }
            n += 1;
        }
        n
    }

    fn dequeue_many(&self, _tid: usize, max: usize, out: &mut Vec<u64>) -> usize {
        let mut cons = self.cons.lock();
        let mut n = 0;
        while n < max {
            let Some(g) = cons.try_read() else { break };
            let mut b = [0u8; 8];
            b.copy_from_slice(&g);
            out.push(u64::from_le_bytes(b));
            n += 1;
        }
        n
    }

    fn metrics(&self) -> bq_core::MetricsSnapshot {
        let mut snap = bq_core::MetricsSnapshot::new();
        if cfg!(feature = "obs") {
            snap.push("bytes_used_hwm", self.prod.lock().bytes_used_hwm());
        }
        snap
    }
}

/// Identifiers for every queue implementation in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Unsound Θ(1) strawman (§3).
    Naive,
    /// Listing 1 segment queue, K = √C.
    Segment,
    /// Listing 1 with the paper's suggested segment-reuse pool.
    SegmentPooled,
    /// Listing 2, distinct elements.
    Distinct,
    /// Listing 3, LL/SC.
    LlSc,
    /// Listing 4, DCSS.
    Dcss,
    /// Listing 5, memory-optimal.
    Optimal,
    /// Michael–Scott (bounded).
    Ms,
    /// Vyukov MPMC.
    Vyukov,
    /// SCQ structural model.
    Scq,
    /// Tsigas–Zhang two-null model.
    TwoNull,
    /// Mutex ring.
    MutexRing,
    /// crossbeam ArrayQueue.
    Crossbeam,
    /// Scale layer: 4 shards of Listing 5 — Θ(S·T) overhead, per-shard
    /// FIFO (DESIGN.md §8).
    ShardedOptimal,
    /// Scale layer: 4 shards of Listing 1 segments.
    ShardedSegment,
    /// Shared-memory multi-process ring (`bq-shm`): the relocatable
    /// sequenced-ring layout in an `mmap` segment under the
    /// crash-consistent publication protocol. Registered here over its
    /// in-process `ConcurrentQueue` facade; the cross-process numbers are
    /// E13's fork-based workload.
    Shm,
    /// Variable-length byte ring (`bq_core::bytering`), tokens as 8-byte
    /// messages through the zero-copy grant machinery. SPSC by contract;
    /// registered behind per-role mutexes so the MPMC drivers can run it
    /// (E15 measures the unserialized payload path directly).
    ByteRing,
}

/// All kinds, in the order the paper discusses them.
pub const ALL_KINDS: &[QueueKind] = &[
    QueueKind::Naive,
    QueueKind::Segment,
    QueueKind::SegmentPooled,
    QueueKind::Distinct,
    QueueKind::LlSc,
    QueueKind::Dcss,
    QueueKind::Optimal,
    QueueKind::Ms,
    QueueKind::Vyukov,
    QueueKind::Scq,
    QueueKind::TwoNull,
    QueueKind::MutexRing,
    QueueKind::Crossbeam,
    QueueKind::ShardedOptimal,
    QueueKind::ShardedSegment,
    QueueKind::Shm,
    QueueKind::ByteRing,
];

/// Default shard count for the registry's sharded kinds (the sweep binary
/// varies `S` explicitly via [`sharded_optimal`]).
pub const DEFAULT_SHARDS: usize = 4;

impl QueueKind {
    /// Stable name used in tables and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Naive => "naive-O(1)-UNSOUND",
            QueueKind::Segment => "listing1-segment",
            QueueKind::SegmentPooled => "listing1-segment-pooled",
            QueueKind::Distinct => "listing2-distinct",
            QueueKind::LlSc => "listing3-llsc",
            QueueKind::Dcss => "listing4-dcss",
            QueueKind::Optimal => "listing5-optimal",
            QueueKind::Ms => "michael-scott",
            QueueKind::Vyukov => "vyukov",
            QueueKind::Scq => "scq-style",
            QueueKind::TwoNull => "tsigas-zhang-2null",
            QueueKind::MutexRing => "mutex-ring",
            QueueKind::Crossbeam => "crossbeam-array",
            QueueKind::ShardedOptimal => "sharded4-optimal",
            QueueKind::ShardedSegment => "sharded4-segment",
            QueueKind::Shm => "shm-mpmc",
            QueueKind::ByteRing => "byte-ring",
        }
    }

    /// The paper's asymptotic overhead claim for this implementation
    /// (shown alongside measurements in the tables).
    pub fn claimed_overhead(self) -> &'static str {
        match self {
            QueueKind::Naive => "Θ(1) [unsound]",
            QueueKind::Segment => "Θ(C/K + T·K)",
            QueueKind::SegmentPooled => "Θ(C/K + T·K)",
            QueueKind::Distinct => "Θ(1) [distinct]",
            QueueKind::LlSc => "Θ(1) [LL/SC hw]",
            QueueKind::Dcss => "Θ(T)",
            QueueKind::Optimal => "Θ(T)",
            QueueKind::Ms => "Θ(n)",
            QueueKind::Vyukov => "Θ(C)",
            QueueKind::Scq => "Θ(C)",
            QueueKind::TwoNull => "Θ(1) [unsound]",
            QueueKind::MutexRing => "Θ(1) [blocking]",
            QueueKind::Crossbeam => "Θ(C)",
            QueueKind::ShardedOptimal => "Θ(S·T)",
            QueueKind::ShardedSegment => "Θ(C/K + S·T·K)",
            QueueKind::Shm => "Θ(C) [multi-proc]",
            QueueKind::ByteRing => "Θ(1) [SPSC bytes]",
        }
    }

    /// Instantiate with capacity `c` and thread bound `t`.
    pub fn build(self, c: usize, t: usize) -> Box<dyn DynQueue> {
        match self {
            QueueKind::Naive => Box::new(Registered::new(
                self.name(),
                false,
                NaiveQueue::with_capacity(c),
                t,
            )),
            QueueKind::Segment => Box::new(Registered::new(
                self.name(),
                true,
                SegmentQueue::with_capacity(c),
                t,
            )),
            QueueKind::SegmentPooled => Box::new(Registered::new(
                self.name(),
                true,
                SegmentQueue::with_pooled_segments(c, (c as f64).sqrt().round().max(1.0) as usize),
                t,
            )),
            QueueKind::Distinct => Box::new(Registered::new(
                self.name(),
                true,
                DistinctQueue::with_capacity(c),
                t,
            )),
            QueueKind::LlSc => Box::new(Registered::new(
                self.name(),
                true,
                LlScQueue::with_capacity(c),
                t,
            )),
            QueueKind::Dcss => Box::new(Registered::new(
                self.name(),
                true,
                DcssQueue::with_capacity_and_threads(c, t),
                t,
            )),
            QueueKind::Optimal => Box::new(Registered::new(
                self.name(),
                true,
                OptimalQueue::with_capacity_and_threads(c, t),
                t,
            )),
            QueueKind::Ms => Box::new(Registered::new(
                self.name(),
                true,
                MsQueue::with_capacity(c),
                t,
            )),
            QueueKind::Vyukov => Box::new(Registered::new(
                self.name(),
                true,
                VyukovQueue::with_capacity(c),
                t,
            )),
            QueueKind::Scq => Box::new(Registered::new(
                self.name(),
                true,
                ScqStyleQueue::with_capacity(c),
                t,
            )),
            QueueKind::TwoNull => Box::new(Registered::new(
                self.name(),
                false,
                TwoNullQueue::with_capacity(c),
                t,
            )),
            QueueKind::MutexRing => Box::new(Registered::new(
                self.name(),
                true,
                MutexRingQueue::with_capacity(c),
                t,
            )),
            QueueKind::Crossbeam => Box::new(Registered::new(
                self.name(),
                true,
                CrossbeamArrayQueue::with_capacity(c),
                t,
            )),
            QueueKind::ShardedOptimal => Box::new(Registered::with_fifo(
                self.name(),
                true,
                false, // per-shard FIFO only
                ShardedQueue::<OptimalQueue>::optimal(c, DEFAULT_SHARDS, t),
                t,
            )),
            QueueKind::ShardedSegment => Box::new(Registered::with_fifo(
                self.name(),
                true,
                false,
                ShardedQueue::<SegmentQueue>::segmented(c, DEFAULT_SHARDS),
                t,
            )),
            QueueKind::Shm => Box::new(Registered::new(
                self.name(),
                true,
                // The sequenced-ring protocol needs two slots to tell
                // full from empty; the registry's smallest sweeps use 1.
                ShmQueue::<u64>::create_anon(c.max(2)).expect("anonymous shm segment"),
                t,
            )),
            QueueKind::ByteRing => Box::new(ByteTokenQueue::new(c, t)),
        }
    }
}

/// Build a `ShardedQueue<OptimalQueue>` with an explicit shard count `s`
/// behind the `DynQueue` interface — the shard/batch sweep binary (E11)
/// varies `S` beyond the registry's fixed default.
pub fn sharded_optimal(c: usize, s: usize, t: usize) -> Box<dyn DynQueue> {
    Box::new(Registered::with_fifo(
        "sharded-optimal",
        true,
        s <= 1, // a single shard degenerates to the plain FIFO queue
        ShardedQueue::<OptimalQueue>::optimal(c, s, t),
        t,
    ))
}

/// Build every implementation at `(c, t)`.
pub fn all_queues(c: usize, t: usize) -> Vec<Box<dyn DynQueue>> {
    ALL_KINDS.iter().map(|k| k.build(c, t)).collect()
}

/// Look a kind up by its table name.
pub fn queue_by_name(name: &str) -> Option<QueueKind> {
    ALL_KINDS.iter().copied().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_round_trips() {
        for q in all_queues(16, 2) {
            assert!(q.enqueue(0, 1), "{} rejects a first enqueue", q.name());
            assert_eq!(q.dequeue(1), Some(1), "{} loses the element", q.name());
            assert_eq!(q.dequeue(0), None, "{} not empty after drain", q.name());
            assert_eq!(q.capacity(), 16);
            assert_eq!(q.threads(), 2);
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL_KINDS {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert_eq!(queue_by_name(k.name()), Some(*k));
        }
        assert_eq!(queue_by_name("nope"), None);
    }

    #[test]
    fn soundness_flags() {
        for q in all_queues(4, 1) {
            let expected = !matches!(
                queue_by_name(q.name()).unwrap(),
                QueueKind::Naive | QueueKind::TwoNull
            );
            assert_eq!(q.sound(), expected, "{}", q.name());
        }
    }

    #[test]
    fn every_kind_batch_round_trips() {
        for q in all_queues(16, 2) {
            let vs: Vec<u64> = (1..=10).collect();
            assert_eq!(q.enqueue_many(0, &vs), 10, "{}", q.name());
            let mut out = Vec::new();
            assert_eq!(q.dequeue_many(1, 10, &mut out), 10, "{}", q.name());
            out.sort_unstable();
            assert_eq!(out, vs, "{}: batch conservation", q.name());
            assert_eq!(q.dequeue_many(0, 1, &mut out), 0, "{}", q.name());
        }
    }

    #[test]
    fn fifo_flags_mark_only_sharded_kinds_relaxed() {
        for q in all_queues(8, 1) {
            let expected = !matches!(
                queue_by_name(q.name()).unwrap(),
                QueueKind::ShardedOptimal | QueueKind::ShardedSegment
            );
            assert_eq!(q.fifo(), expected, "{}", q.name());
        }
    }

    #[test]
    fn sharded_optimal_builder_varies_shard_count() {
        for s in [1, 2, 8] {
            let q = sharded_optimal(16, s, 2);
            assert_eq!(q.capacity(), 16);
            assert_eq!(q.fifo(), s <= 1);
            assert!(q.enqueue(0, 5));
            assert_eq!(q.dequeue(1), Some(5));
        }
    }

    #[test]
    fn metrics_flow_through_the_dyn_interface() {
        // The instrumented facades report through `DynQueue::metrics`;
        // with `obs` off every snapshot is empty (the zero-cost contract).
        let q = QueueKind::Optimal.build(8, 2);
        assert!(q.enqueue(0, 1));
        assert_eq!(q.dequeue(1), Some(1));
        let snap = q.metrics();
        if cfg!(feature = "obs") {
            assert_eq!(snap.get("enq_success"), Some(1), "{snap}");
            assert_eq!(snap.get("deq_success"), Some(1), "{snap}");
        } else {
            assert!(snap.is_empty());
        }
        // And kinds with no counters of their own stay harmlessly empty.
        let ms = QueueKind::Ms.build(8, 1);
        ms.enqueue(0, 9);
        assert!(ms.metrics().is_empty());
    }

    #[test]
    fn footprints_are_positive() {
        for q in all_queues(64, 2) {
            // MS stores per-element, so occupy one slot before measuring.
            q.enqueue(0, 1);
            let f = q.footprint();
            assert!(f.element_bytes > 0, "{}", q.name());
            assert!(f.overhead_bytes() > 0, "{}", q.name());
        }
    }
}
