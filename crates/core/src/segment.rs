//! **Listing 1 / Figure 2** — the memory-friendly bounded queue on a
//! conceptually infinite array of segments.
//!
//! The infinite array is a concurrent linked list of fixed-size segments of
//! `K` cells each, following the design the paper borrows from Kotlin
//! Coroutines channels. `head` and `tail` are absolute (never wrapping)
//! positions; cell `i` lives in the segment with `id == i / K` at offset
//! `i % K`.
//!
//! Because each *absolute* position is used by exactly one enqueue–dequeue
//! pair, a cell's life cycle is monotone — `⊥ → element → TAKEN` — and the
//! ABA problem is structurally eliminated (no CAS can observe a repeated
//! state). Note the extraction marker must differ from `⊥`: restoring `⊥`
//! would let a poised round-old `CAS(cell, ⊥, y)` fire and fabricate a
//! successful enqueue.
//!
//! ## Memory overhead
//!
//! Θ(C/K + T·K): about `C/K` live segments with constant per-segment
//! linkage, plus up to Θ(T) retired segments of `K` cells pinned by
//! in-flight readers (here via epoch-based reclamation, playing the role of
//! the descriptor-reuse technique the paper cites). Choosing `K = √C`
//! minimizes this at Θ(T·√C) — experiment E2 sweeps `K` to reproduce the
//! U-shaped curve.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use crate::simx::SimAtomicU64;
use parking_lot::Mutex;

use crate::queue::{ConcurrentQueue, Full};
use crate::token::NULL;
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Extraction marker: distinct from `⊥` so emptied cells can never satisfy
/// a stale enqueue CAS expecting `⊥`.
const TAKEN: u64 = u64::MAX;

/// Largest token this queue accepts (`TAKEN` and `NULL` are reserved).
pub const MAX_SEGMENT_TOKEN: u64 = u64::MAX - 1;

struct Segment {
    id: u64,
    next: Atomic<Segment>,
    cells: Box<[SimAtomicU64]>,
}

impl Segment {
    fn new(id: u64, k: usize) -> Self {
        Segment {
            id,
            next: Atomic::null(),
            cells: (0..k).map(|_| SimAtomicU64::new(NULL)).collect(),
        }
    }

    /// Bytes of one segment: header (id + next + boxed-slice fat pointer)
    /// plus `K` cells.
    fn bytes(k: usize) -> usize {
        std::mem::size_of::<Segment>() + k * 8
    }
}

/// The memory-friendly segment queue of Listing 1.
pub struct SegmentQueue {
    k: usize,
    capacity: usize,
    tail: SimAtomicU64,
    head: SimAtomicU64,
    head_seg: Atomic<Segment>,
    tail_seg: Atomic<Segment>,
    /// Segments ever allocated fresh (statistics for the overhead
    /// experiments).
    allocated_segments: AtomicUsize,
    /// Segments handed to the epoch reclaimer (destroyed or pooled).
    retired_segments: AtomicUsize,
    /// Segments taken back out of the pool instead of allocated fresh.
    reused_segments: AtomicUsize,
    /// The reuse pool the paper suggests ("reusing segments by applying
    /// the technique to reclaim descriptors"): retired segments land here
    /// after their grace period and are recycled by `find_segment`.
    /// `None` = plain epoch reclamation (free instead of pool).
    /// (Boxes inside the Vec are intentional: segments must keep stable
    /// addresses so they can round-trip through `Owned`/`Shared`.)
    #[allow(clippy::vec_box)]
    pool: Option<Arc<Mutex<Vec<Box<Segment>>>>>,
}

/// `SegmentQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct SegmentHandle;

impl SegmentQueue {
    /// Create a queue of capacity `c` with segment size `k` (both > 0),
    /// with plain epoch reclamation (retired segments are freed).
    pub fn with_capacity_and_segment_size(c: usize, k: usize) -> Self {
        Self::build(c, k, false)
    }

    /// Create a queue that **recycles segments through a pool** instead of
    /// freeing them — the reuse design the paper sketches in §2.1. After
    /// warm-up the queue stops allocating entirely: the working set of
    /// Θ(C/K + T) segments circulates through the pool.
    pub fn with_pooled_segments(c: usize, k: usize) -> Self {
        Self::build(c, k, true)
    }

    fn build(c: usize, k: usize, pooled: bool) -> Self {
        assert!(c > 0 && k > 0, "capacity and segment size must be positive");
        let first = Owned::new(Segment::new(0, k)).into_shared(unsafe { epoch::unprotected() });
        let q = SegmentQueue {
            k,
            capacity: c,
            tail: SimAtomicU64::new(0),
            head: SimAtomicU64::new(0),
            head_seg: Atomic::null(),
            tail_seg: Atomic::null(),
            allocated_segments: AtomicUsize::new(1),
            retired_segments: AtomicUsize::new(0),
            reused_segments: AtomicUsize::new(0),
            pool: pooled.then(|| Arc::new(Mutex::new(Vec::new()))),
        };
        q.head_seg.store(first, Ordering::SeqCst);
        q.tail_seg.store(first, Ordering::SeqCst);
        q
    }

    /// Create a queue with the paper's optimal segment size `K = √C`.
    pub fn with_capacity(c: usize) -> Self {
        let k = (c as f64).sqrt().round().max(1.0) as usize;
        Self::with_capacity_and_segment_size(c, k)
    }

    /// Segments taken from the pool instead of the allocator.
    pub fn segments_reused(&self) -> usize {
        self.reused_segments.load(Ordering::Relaxed)
    }

    /// Segments currently parked in the reuse pool.
    pub fn segments_pooled(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.lock().len())
    }

    /// Take a segment for `id`: recycle from the pool when possible,
    /// allocate fresh otherwise.
    fn obtain_segment(&self, id: u64) -> Owned<Segment> {
        if let Some(pool) = &self.pool {
            if let Some(mut seg) = pool.lock().pop() {
                seg.id = id;
                seg.next = Atomic::null();
                for cell in seg.cells.iter() {
                    cell.store(NULL, Ordering::Relaxed);
                }
                self.reused_segments.fetch_add(1, Ordering::Relaxed);
                return seg.into();
            }
        }
        self.allocated_segments.fetch_add(1, Ordering::Relaxed);
        Owned::new(Segment::new(id, self.k))
    }

    /// The segment size `K`.
    pub fn segment_size(&self) -> usize {
        self.k
    }

    /// Number of segments currently allocated and not yet handed to the
    /// reclaimer (live upper bound; retired segments may still occupy heap
    /// until a grace period elapses).
    pub fn segments_live(&self) -> usize {
        (self.allocated_segments.load(Ordering::Relaxed)
            + self.reused_segments.load(Ordering::Relaxed))
        .saturating_sub(self.retired_segments.load(Ordering::Relaxed))
    }

    /// Total segments ever allocated.
    pub fn segments_allocated(&self) -> usize {
        self.allocated_segments.load(Ordering::Relaxed)
    }

    /// Find (creating as needed) the segment with the given id, starting
    /// from `hint`. Returns `None` if the list has already advanced past
    /// `id` — the caller's position is stale and it must re-read the
    /// counters.
    fn find_segment<'g>(
        &self,
        hint: &Atomic<Segment>,
        id: u64,
        guard: &'g Guard,
    ) -> Option<Shared<'g, Segment>> {
        let mut s = hint.load(Ordering::SeqCst, guard);
        // SAFETY: segments are only reclaimed after being unreachable from
        // both hints; a hint load under the guard yields a protected pointer.
        let mut seg = unsafe { s.deref() };
        if seg.id > id {
            return None;
        }
        while seg.id < id {
            let next = seg.next.load(Ordering::SeqCst, guard);
            if next.is_null() {
                let new = self.obtain_segment(seg.id + 1);
                match seg.next.compare_exchange(
                    Shared::null(),
                    new,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                ) {
                    Ok(linked) => {
                        s = linked;
                    }
                    Err(e) => {
                        // Someone else linked it first; park our segment
                        // back in the pool (or drop it).
                        if let Some(pool) = &self.pool {
                            pool.lock().push(e.new.into_box());
                        }
                        s = e.current;
                    }
                }
            } else {
                s = next;
            }
            seg = unsafe { s.deref() };
        }
        debug_assert_eq!(seg.id, id);
        Some(s)
    }

    /// Advance a hint pointer to `to` if it is behind. For the head hint,
    /// also retire the segments that became unreachable — after first
    /// pushing the tail hint forward so it can never dangle into the
    /// retired range.
    fn move_hint_forward(&self, to: Shared<'_, Segment>, is_head: bool, guard: &Guard) {
        let hint = if is_head {
            &self.head_seg
        } else {
            &self.tail_seg
        };
        let to_id = unsafe { to.deref() }.id;
        loop {
            let cur = hint.load(Ordering::SeqCst, guard);
            let cur_id = unsafe { cur.deref() }.id;
            if cur_id >= to_id {
                return;
            }
            if hint
                .compare_exchange(cur, to, Ordering::SeqCst, Ordering::SeqCst, guard)
                .is_ok()
            {
                if is_head {
                    // Ensure the tail hint is not left pointing into the
                    // range we are about to retire.
                    self.move_hint_forward(to, false, guard);
                    // Retire [cur, to): we won the CAS from exactly `cur`,
                    // so this range is retired exactly once. With pooling,
                    // the segment is parked for reuse after its grace
                    // period instead of being freed.
                    let mut s = cur;
                    while unsafe { s.deref() }.id < to_id {
                        let next = unsafe { s.deref() }.next.load(Ordering::SeqCst, guard);
                        self.retired_segments.fetch_add(1, Ordering::Relaxed);
                        if let Some(pool) = &self.pool {
                            let pool = Arc::clone(pool);
                            let raw = s.as_raw() as usize;
                            // SAFETY: `s` is unreachable once the grace
                            // period elapses; reconstructing the Box then
                            // is the same transfer defer_destroy performs.
                            unsafe {
                                guard.defer_unchecked(move || {
                                    pool.lock().push(Box::from_raw(raw as *mut Segment));
                                });
                            }
                        } else {
                            unsafe { guard.defer_destroy(s) };
                        }
                        s = next;
                    }
                }
                return;
            }
        }
    }
}

impl ConcurrentQueue for SegmentQueue {
    type Handle = SegmentHandle;

    fn register(&self) -> SegmentHandle {
        SegmentHandle
    }

    fn enqueue(&self, _h: &mut SegmentHandle, v: u64) -> Result<(), Full> {
        assert!(
            v != NULL && v != TAKEN,
            "segment queue tokens must not be 0 or u64::MAX"
        );
        let c = self.capacity as u64;
        let k = self.k as u64;
        loop {
            let guard = epoch::pin();
            let t = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if t == h + c {
                return Err(Full(v));
            }
            let Some(seg) = self.find_segment(&self.tail_seg, t / k, &guard) else {
                continue; // stale position; counters moved on
            };
            self.move_hint_forward(seg, false, &guard);
            let cell = &unsafe { seg.deref() }.cells[(t % k) as usize];
            let done = cell
                .compare_exchange(NULL, v, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            let _ = self
                .tail
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Ok(());
            }
        }
    }

    fn dequeue(&self, _h: &mut SegmentHandle) -> Option<u64> {
        let k = self.k as u64;
        loop {
            let guard = epoch::pin();
            let t = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if t == h {
                return None;
            }
            let Some(seg) = self.find_segment(&self.head_seg, h / k, &guard) else {
                continue;
            };
            // Advancing the head hint retires fully-consumed segments.
            self.move_hint_forward(seg, true, &guard);
            let cell = &unsafe { seg.deref() }.cells[(h % k) as usize];
            let e = cell.load(Ordering::SeqCst);
            let done = e != NULL
                && e != TAKEN
                && cell
                    .compare_exchange(e, TAKEN, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
            let _ = self
                .head
                .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Some(e);
            }
        }
    }

    /// Native batch fast path: **segment-local runs**. One epoch pin per
    /// batch, and the segment located for the first element is reused for
    /// every following element that lands in the same segment — the
    /// `find_segment` walk runs once per segment instead of once per
    /// element. Each element still linearizes individually (cell CAS +
    /// counter CAS), so the batch contract of the trait holds unchanged.
    fn enqueue_many(&self, _h: &mut SegmentHandle, vs: &[u64]) -> usize {
        for &v in vs {
            assert!(
                v != NULL && v != TAKEN,
                "segment queue tokens must not be 0 or u64::MAX"
            );
        }
        let c = self.capacity as u64;
        let k = self.k as u64;
        let mut done = 0usize;
        // Pinning once per batch (not per element) delays reclamation by at
        // most one batch length — the amortization this path exists for.
        let guard = epoch::pin();
        let mut cached: Option<Shared<'_, Segment>> = None;
        'next: while done < vs.len() {
            let v = vs[done];
            loop {
                let t = self.tail.load(Ordering::SeqCst);
                let h = self.head.load(Ordering::SeqCst);
                if t != self.tail.load(Ordering::SeqCst) {
                    continue;
                }
                if t == h + c {
                    return done;
                }
                // Segment-local run: reuse the cached segment while the
                // position stays inside it.
                let seg = match cached {
                    Some(s) if unsafe { s.deref() }.id == t / k => s,
                    _ => {
                        let Some(s) = self.find_segment(&self.tail_seg, t / k, &guard) else {
                            continue;
                        };
                        self.move_hint_forward(s, false, &guard);
                        cached = Some(s);
                        s
                    }
                };
                let cell = &unsafe { seg.deref() }.cells[(t % k) as usize];
                let won = cell
                    .compare_exchange(NULL, v, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
                let _ = self
                    .tail
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
                if won {
                    done += 1;
                    continue 'next;
                }
            }
        }
        done
    }

    /// Native batch dequeue: the mirror segment-local run over the head
    /// counter (one pin, one segment walk per segment crossed).
    fn dequeue_many(&self, _h: &mut SegmentHandle, max: usize, out: &mut Vec<u64>) -> usize {
        let k = self.k as u64;
        let mut done = 0usize;
        let guard = epoch::pin();
        let mut cached: Option<Shared<'_, Segment>> = None;
        'next: while done < max {
            loop {
                let t = self.tail.load(Ordering::SeqCst);
                let h = self.head.load(Ordering::SeqCst);
                if t != self.tail.load(Ordering::SeqCst) {
                    continue;
                }
                if t == h {
                    return done;
                }
                let seg = match cached {
                    Some(s) if unsafe { s.deref() }.id == h / k => s,
                    _ => {
                        let Some(s) = self.find_segment(&self.head_seg, h / k, &guard) else {
                            continue;
                        };
                        self.move_hint_forward(s, true, &guard);
                        cached = Some(s);
                        s
                    }
                };
                let cell = &unsafe { seg.deref() }.cells[(h % k) as usize];
                let e = cell.load(Ordering::SeqCst);
                let won = e != NULL
                    && e != TAKEN
                    && cell
                        .compare_exchange(e, TAKEN, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok();
                let _ = self
                    .head
                    .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst);
                if won {
                    out.push(e);
                    done += 1;
                    continue 'next;
                }
            }
        }
        done
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn max_token(&self) -> u64 {
        MAX_SEGMENT_TOKEN
    }

    fn len(&self) -> usize {
        let t = self.tail.load(Ordering::SeqCst);
        let h = self.head.load(Ordering::SeqCst);
        t.saturating_sub(h) as usize
    }
}

impl MemoryFootprint for SegmentQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let live = self.segments_live();
        let seg_bytes = Segment::bytes(self.k);
        let total_cell_bytes = live * self.k * 8;
        let element_bytes = self.capacity * 8;
        let header_bytes = live * (seg_bytes - self.k * 8);
        let pooled = self.segments_pooled();
        FootprintBreakdown::with_elements(element_bytes)
            .add(
                format!("segment headers ({live} segments)"),
                header_bytes,
                OverheadClass::Linkage,
            )
            .add(
                "cell slack beyond C (unused / retired-pending cells)",
                total_cell_bytes.saturating_sub(element_bytes),
                OverheadClass::PerSlotMetadata,
            )
            .add(
                format!("pooled segments ({pooled} parked for reuse)"),
                pooled * seg_bytes,
                OverheadClass::Linkage,
            )
            .add("head + tail counters", 16, OverheadClass::Counters)
            .add("head/tail segment hints", 16, OverheadClass::Linkage)
    }
}

impl Drop for SegmentQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access; free the remaining chain directly.
        unsafe {
            let guard = epoch::unprotected();
            let mut s = self.head_seg.load(Ordering::SeqCst, guard);
            while !s.is_null() {
                let next = s.deref().next.load(Ordering::SeqCst, guard);
                drop(s.into_owned());
                s = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = SegmentQueue::with_capacity_and_segment_size(8, 3);
        let mut h = q.register();
        for v in 1..=8 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 9), Err(Full(9)));
        for v in 1..=8 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn crosses_many_segments() {
        let q = SegmentQueue::with_capacity_and_segment_size(4, 2);
        let mut h = q.register();
        for round in 0..200u64 {
            for i in 0..4 {
                q.enqueue(&mut h, 1 + round * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.dequeue(&mut h), Some(1 + round * 4 + i));
            }
        }
        // 200 rounds × 4 positions over K=2 → 400 segments created, but only
        // a handful live at any time.
        assert!(q.segments_allocated() >= 400);
        assert!(
            q.segments_live() <= 4 + 2,
            "live segments stay bounded, got {}",
            q.segments_live()
        );
    }

    #[test]
    fn default_k_is_sqrt_c() {
        let q = SegmentQueue::with_capacity(1024);
        assert_eq!(q.segment_size(), 32);
    }

    #[test]
    fn reserved_tokens_rejected() {
        let q = SegmentQueue::with_capacity_and_segment_size(2, 2);
        let mut h = q.register();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = q.enqueue(&mut h, 0);
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = q.enqueue(&mut h, u64::MAX);
        }))
        .is_err());
    }

    #[test]
    fn overhead_shrinks_with_larger_k_until_slack_dominates() {
        // At steady state (freshly filled), overhead ≈ headers·C/K + slack.
        let c = 1 << 12;
        let mut ovh = Vec::new();
        for k in [4usize, 64, 1 << 12] {
            let q = SegmentQueue::with_capacity_and_segment_size(c, k);
            let mut h = q.register();
            for v in 1..=c as u64 {
                q.enqueue(&mut h, v).unwrap();
            }
            ovh.push((k, q.overhead_bytes()));
        }
        // Tiny K pays many headers; mid K is cheap; the shape check proper
        // is experiment E2.
        assert!(
            ovh[0].1 > ovh[1].1,
            "K=4 should cost more than K=64: {ovh:?}"
        );
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(SegmentQueue::with_capacity_and_segment_size(32, 4));
        let per = 3_000u64;
        let producers = 3u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while (seen.len() as u64) < total {
            match q.dequeue(&mut h) {
                Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        for v in 1..=total {
            assert!(seen.contains(&v), "missing {v}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pooled_queue_stops_allocating_after_warmup() {
        // The paper's reuse suggestion: after the working set circulates,
        // fresh allocations cease — the epoch-only variant keeps
        // allocating one segment per K positions forever.
        let pooled = SegmentQueue::with_pooled_segments(8, 2);
        let plain = SegmentQueue::with_capacity_and_segment_size(8, 2);
        let mut hp = pooled.register();
        let mut hq = plain.register();
        for v in 1..=10_000u64 {
            pooled.enqueue(&mut hp, v).unwrap();
            assert_eq!(pooled.dequeue(&mut hp), Some(v));
            plain.enqueue(&mut hq, v).unwrap();
            assert_eq!(plain.dequeue(&mut hq), Some(v));
        }
        assert!(
            plain.segments_allocated() > 1_000,
            "epoch-only variant allocates throughout: {}",
            plain.segments_allocated()
        );
        assert!(
            pooled.segments_reused() > 1_000,
            "pooled variant recycles: {} reuses",
            pooled.segments_reused()
        );
        assert!(
            pooled.segments_allocated() < 100,
            "pooled variant stops allocating: {} fresh allocations",
            pooled.segments_allocated()
        );
    }

    #[test]
    fn pooled_queue_concurrent_conservation() {
        let q = Arc::new(SegmentQueue::with_pooled_segments(16, 4));
        let per = 3_000u64;
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=per {
                while q2.enqueue(&mut h, v).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut h = q.register();
        let mut expect = 1u64;
        while expect <= per {
            match q.dequeue(&mut h) {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn batch_runs_cross_segments_and_match_fifo() {
        let q = SegmentQueue::with_capacity_and_segment_size(8, 3);
        let mut h = q.register();
        // Run spans 3 segments; the batch path must walk them all.
        assert_eq!(q.enqueue_many(&mut h, &(1..=8).collect::<Vec<_>>()), 8);
        assert_eq!(q.enqueue_many(&mut h, &[9]), 0, "full stops the run");
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 5, &mut out), 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5], "segment runs preserve FIFO");
        assert_eq!(
            q.enqueue_many(&mut h, &[9, 10]),
            2,
            "wraps into new segments"
        );
        assert_eq!(q.dequeue_many(&mut h, 10, &mut out), 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn concurrent_batch_producers_conserve() {
        let q = Arc::new(SegmentQueue::with_capacity_and_segment_size(32, 4));
        let per = 2_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                let vals: Vec<u64> = (0..per).map(|i| 1 + p * per + i).collect();
                let mut sent = 0usize;
                while sent < vals.len() {
                    let batch_end = (sent + 16).min(vals.len());
                    sent += q.enqueue_many(&mut h, &vals[sent..batch_end]);
                    if sent < batch_end {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        let mut buf = Vec::new();
        while (seen.len() as u64) < total {
            buf.clear();
            if q.dequeue_many(&mut h, 16, &mut buf) == 0 {
                std::thread::yield_now();
            }
            for &v in &buf {
                assert!(seen.insert(v), "duplicate {v}");
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert!(q.is_empty());
    }

    #[test]
    fn live_segments_bounded_under_churn() {
        let q = Arc::new(SegmentQueue::with_capacity_and_segment_size(64, 8));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=20_000u64 {
                while q2.enqueue(&mut h, v).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut h = q.register();
        let mut peak = 0usize;
        let mut got = 0u64;
        while got < 20_000 {
            if q.dequeue(&mut h).is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
            peak = peak.max(q.segments_live());
        }
        t.join().unwrap();
        // C/K = 8 live segments plus a small constant per thread.
        assert!(
            peak <= 8 + 4,
            "peak live segments {peak} exceeds C/K + O(T)"
        );
    }
}
