//! Queue operations as explicit step machines.
//!
//! A machine exposes [`OpMachine::next_access`] — a pure function of its
//! internal state — *before* executing it, so the adversary can pause the
//! thread exactly there ("poising" it, Definition 3.5 of the paper). The
//! controller then executes the access against [`crate::mem::SimMemory`]
//! and feeds the observation back through [`OpMachine::apply`].

use crate::mem::Loc;

/// A queue operation to invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `enqueue(value)`.
    Enqueue(u64),
    /// `dequeue()`.
    Dequeue,
}

/// One shared-memory primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Atomic load.
    Read(Loc),
    /// Atomic store.
    Write(Loc, u64),
    /// Compare-and-set; observation is the *old* value.
    Cas {
        /// Target location.
        loc: Loc,
        /// Expected value.
        exp: u64,
        /// Replacement value.
        new: u64,
    },
    /// Double-compare-single-set (primitive form, for the Listing 4
    /// control); observation is 1/0 success.
    Dcss {
        /// Updated location.
        loc1: Loc,
        /// Expected value at `loc1`.
        exp1: u64,
        /// Replacement for `loc1`.
        new1: u64,
        /// Guard location (only compared).
        loc2: Loc,
        /// Expected value at `loc2`.
        exp2: u64,
    },
}

impl Access {
    /// The location this access targets (the updated one for DCSS).
    pub fn target(&self) -> Loc {
        match *self {
            Access::Read(l) | Access::Write(l, _) => l,
            Access::Cas { loc, .. } => loc,
            Access::Dcss { loc1, .. } => loc1,
        }
    }

    /// Is this an update attempt (write/CAS/DCSS, as opposed to a read)?
    pub fn is_update(&self) -> bool {
        !matches!(self, Access::Read(_))
    }
}

/// Operation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ret {
    /// `enqueue` succeeded (`true` in the paper).
    EnqOk,
    /// `enqueue` observed a full queue (`false`).
    EnqFull,
    /// `dequeue` returned an element.
    DeqVal(u64),
    /// `dequeue` observed an empty queue (`⊥`).
    DeqEmpty,
}

/// Machine progress after consuming one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// More steps to take.
    Running,
    /// The operation completed with this result.
    Done(Ret),
}

/// A queue operation in flight: a deterministic automaton over shared
/// memory, in the sense of the paper's §3.2 implementation model.
pub trait OpMachine {
    /// The primitive this machine will execute next. Must be deterministic
    /// in the machine's state (it may not consult the memory).
    fn next_access(&self) -> Access;

    /// Consume the observation produced by executing [`next_access`]
    /// against the memory, advancing the machine.
    ///
    /// [`next_access`]: OpMachine::next_access
    fn apply(&mut self, observed: u64) -> Status;
}

/// Algorithms the simulator can run: a memory layout plus a machine
/// factory.
pub trait SimQueue {
    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> &'static str;

    /// Queue capacity `C`.
    fn capacity(&self) -> usize;

    /// Create the step machine for `op`.
    fn make(&self, op: Op) -> Box<dyn OpMachine>;

    /// The value-locations of this layout (for the adversary's catch
    /// criteria and the E8 location-count report).
    fn value_locations(&self) -> Vec<Loc>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_target_and_kind() {
        let r = Access::Read(Loc(3));
        assert_eq!(r.target(), Loc(3));
        assert!(!r.is_update());
        let c = Access::Cas {
            loc: Loc(5),
            exp: 0,
            new: 1,
        };
        assert_eq!(c.target(), Loc(5));
        assert!(c.is_update());
        let d = Access::Dcss {
            loc1: Loc(7),
            exp1: 0,
            new1: 1,
            loc2: Loc(8),
            exp2: 0,
        };
        assert_eq!(d.target(), Loc(7));
        assert!(d.is_update());
    }
}
