//! # bq-shm — the shared-memory multi-process backend
//!
//! Serves the relocatable queue layouts of `bq_core::relocatable` out of
//! `mmap`-shared segments, so N producer *processes* and M consumer
//! *processes* share one bounded queue — the way ARINC 653 partition OSes
//! wire isolated partitions to a bounded channel (DESIGN.md §10.4
//! records the framing facts this design borrows).
//!
//! Pieces:
//!
//! * [`ShmSegment`] — an `mmap` mapping fronted by a versioned
//!   magic/length/layout-tag header, eight cache-padded scratch counters
//!   for harness coordination, and a [process liveness
//!   table](segment::ProcSlot) with one-sided death detection plus a
//!   heartbeat/lease suspicion layer and a segment-wide poison counter
//!   (the health monitor of DESIGN.md §13);
//! * [`ShmQueue<T>`](ShmQueue) — the N-producer/M-consumer bounded queue
//!   under a crash-consistent publication protocol: a process dying
//!   between **any** two shared writes leaves a state the survivors
//!   either complete or reclaim (the per-write argument is tabulated in
//!   [`queue`]'s module docs);
//! * [`ShmByteRing`] — a variable-length SPSC byte ring over the same
//!   segments: zero-copy grants on both sides, with the producer and
//!   consumer roles claimed per-process through header claim words
//!   (dead holders detected via pid liveness and stolen);
//! * [`fork_child`]/[`Child`] — a fork harness with deadline waits, so a
//!   wedged queue fails tests instead of hanging them;
//! * [`FaultPlan`] — the unified fault-injection plan (kill countdowns,
//!   injected delays, forced refusals, dropped wakes) consumed by the
//!   crash tests, the soak binary and the explorer, rendered as a
//!   replayable `plan:v1:` artifact;
//! * [`OpLog`] — a cross-process operation log with globally sequenced
//!   stamps, feeding the Wing–Gong pool checker in `bq-sim`.
//!
//! In-process, `ShmQueue<u64>` also implements the workspace-wide
//! [`ConcurrentQueue`](bq_core::ConcurrentQueue) interface, which is how
//! it joins the bench registry and inherits the whole conformance suite.

#![deny(missing_docs)]

pub mod bytering;
pub mod fault;
pub mod harness;
pub mod oplog;
pub mod queue;
pub mod segment;

pub use bytering::{RoleHeld, ShmByteConsumer, ShmByteProducer, ShmByteRing, BYTE_RING_LAYOUT_TAG};
pub use fault::{BadPlan, FaultPlan};
pub use harness::{fork_child, Child, ChildExit};
pub use oplog::{LoggedEvent, OpKind, OpLog, RetKind};
pub use queue::{layout_tag, ShmHandle, ShmQueue};
pub use segment::{ShmSegment, MAX_PROCS, SCRATCH_WORDS, SHM_MAGIC, SHM_VERSION};

use bq_core::queue::{ConcurrentQueue, Full};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

impl ConcurrentQueue for ShmQueue<u64> {
    type Handle = ShmHandle;

    fn register(&self) -> ShmHandle {
        ShmQueue::register(self)
    }

    fn enqueue(&self, h: &mut ShmHandle, v: u64) -> Result<(), Full> {
        ShmQueue::enqueue(self, h, v).map_err(Full)
    }

    fn dequeue(&self, h: &mut ShmHandle) -> Option<u64> {
        ShmQueue::dequeue(self, h)
    }

    fn capacity(&self) -> usize {
        ShmQueue::capacity(self)
    }

    fn max_token(&self) -> u64 {
        u64::MAX
    }

    fn len(&self) -> usize {
        ShmQueue::len(self)
    }
}

impl MemoryFootprint for ShmQueue<u64> {
    fn footprint(&self) -> FootprintBreakdown {
        let c = self.capacity();
        FootprintBreakdown::with_elements(c * 8)
            .add(
                "per-slot round/state/owner words (8 B × C)",
                c * 8,
                OverheadClass::PerSlotMetadata,
            )
            .add(
                "head + tail counters (cache-padded)",
                256,
                OverheadClass::Counters,
            )
            .add(
                "segment header (id words, scratch, process table)",
                std::mem::size_of::<segment::SegHdr>(),
                OverheadClass::Other,
            )
    }
}

#[cfg(test)]
mod facade_tests {
    use super::*;

    #[test]
    fn concurrent_queue_facade_round_trips() {
        let q = ShmQueue::<u64>::create_anon(4).unwrap();
        let mut h = ConcurrentQueue::register(&q);
        ConcurrentQueue::enqueue(&q, &mut h, 9).unwrap();
        assert_eq!(ConcurrentQueue::len(&q), 1);
        assert_eq!(ConcurrentQueue::dequeue(&q, &mut h), Some(9));
        assert_eq!(
            ConcurrentQueue::enqueue(&q, &mut h, 1).and(Ok(2)),
            Ok(2),
            "facade reports Full through the workspace error type"
        );
    }

    #[test]
    fn footprint_reports_theta_c_plus_header() {
        let small = ShmQueue::<u64>::create_anon(1 << 6).unwrap();
        let large = ShmQueue::<u64>::create_anon(1 << 12).unwrap();
        let (s, l) = (small.overhead_bytes(), large.overhead_bytes());
        // Θ(C): 8 bytes of slot metadata per extra slot; header constant.
        assert_eq!((l - s) / ((1 << 12) - (1 << 6)), 8);
    }
}
