//! A structural model of Nikolaev's SCQ (DISC 2019) — the paper's §4
//! "tightest algorithm we found": a lock-free bounded queue of capacity `C`
//! built on rings of `2C` cells, with total memory overhead Ω(C + T).
//!
//! SCQ is an *indirect* queue: the elements live in a plain `data[C]`
//! array, and FIFO order is maintained over **slot indices** circulating
//! through two rings — `aq` (allocated: indices holding elements) and `fq`
//! (free: indices available to producers). Each ring has `2C` cells, which
//! is exactly the ×2 cell blow-up the paper cites; on top of that the
//! original needs a descriptor per ongoing operation (Θ(T)).
//!
//! **Simplification (DESIGN.md §3):** the original rings use
//! fetch-and-add cycles with a livelock-prevention threshold; we use a
//! CAS-sequenced ring (Vyukov protocol) of the same geometry. The memory
//! *shape* — `C` data cells + 2 × `2C` ring cells + per-cell cycle words —
//! is what experiment E9 measures, and that is preserved. (A CAS ring is
//! also lock-free, so the progress class matches.)

use std::cell::UnsafeCell;

use crate::vyukov::VyukovQueue;
use bq_core::queue::{ConcurrentQueue, Full};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// SCQ-style indirect bounded queue (Θ(C) overhead with the paper-cited
/// 2C-cell rings).
pub struct ScqStyleQueue {
    data: Box<[UnsafeCell<u64>]>,
    /// Ring of indices currently holding elements (capacity 2C).
    aq: VyukovQueue,
    /// Ring of free indices (capacity 2C, initially 0..C).
    fq: VyukovQueue,
}

// SAFETY: a data cell is owned exclusively by whichever thread holds its
// index between ring transfers; the rings' sequence words provide the
// necessary Acquire/Release synchronization.
unsafe impl Send for ScqStyleQueue {}
unsafe impl Sync for ScqStyleQueue {}

/// `ScqStyleQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScqHandle;

impl ScqStyleQueue {
    /// Create a queue of capacity `c > 0`.
    pub fn with_capacity(c: usize) -> Self {
        assert!(c > 0, "capacity must be positive");
        let q = ScqStyleQueue {
            data: (0..c).map(|_| UnsafeCell::new(0)).collect(),
            aq: VyukovQueue::with_capacity(2 * c),
            fq: VyukovQueue::with_capacity(2 * c),
        };
        let mut h = q.fq.register();
        for idx in 0..c as u64 {
            q.fq.enqueue(&mut h, idx).expect("fq sized at 2C");
        }
        q
    }
}

impl ConcurrentQueue for ScqStyleQueue {
    type Handle = ScqHandle;

    fn register(&self) -> ScqHandle {
        ScqHandle
    }

    fn enqueue(&self, _h: &mut ScqHandle, v: u64) -> Result<(), Full> {
        let mut rh = self.fq.register();
        // Acquire a free data slot; none free ⇔ C elements present ⇔ full.
        let Some(idx) = self.fq.dequeue(&mut rh) else {
            return Err(Full(v));
        };
        // SAFETY: holding `idx` off both rings grants exclusive access.
        unsafe { *self.data[idx as usize].get() = v };
        // A 2C ring holding ≤ C live indices can still report full
        // *spuriously*: a consumer that claimed a slot but has not yet
        // released its sequence word blocks that slot for one round. This
        // is the semantic relaxation the paper (§1) notes ring buffers
        // accept; for the index rings we simply retry — the slot is
        // guaranteed to free.
        let mut idx_back = idx;
        while let Err(Full(i)) = self.aq.enqueue(&mut rh, idx_back) {
            idx_back = i;
            std::thread::yield_now();
        }
        Ok(())
    }

    fn dequeue(&self, _h: &mut ScqHandle) -> Option<u64> {
        let mut rh = self.aq.register();
        let idx = self.aq.dequeue(&mut rh)?;
        // SAFETY: as in `enqueue`.
        let v = unsafe { *self.data[idx as usize].get() };
        let mut idx_back = idx;
        while let Err(Full(i)) = self.fq.enqueue(&mut rh, idx_back) {
            idx_back = i;
            std::thread::yield_now();
        }
        Some(v)
    }

    fn capacity(&self) -> usize {
        self.data.len()
    }

    fn max_token(&self) -> u64 {
        u64::MAX
    }

    fn len(&self) -> usize {
        self.aq.len()
    }
}

impl MemoryFootprint for ScqStyleQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let c = self.data.len();
        let ring = |q: &VyukovQueue| q.total_bytes();
        FootprintBreakdown::with_elements(c * 8)
            .add(
                "aq index ring (2C cells + cycles)",
                ring(&self.aq),
                OverheadClass::PerSlotMetadata,
            )
            .add(
                "fq index ring (2C cells + cycles)",
                ring(&self.fq),
                OverheadClass::PerSlotMetadata,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = ScqStyleQueue::with_capacity(3);
        let mut h = q.register();
        for v in [5, 6, 7] {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 8), Err(Full(8)));
        assert_eq!(q.dequeue(&mut h), Some(5));
        assert_eq!(q.dequeue(&mut h), Some(6));
        assert_eq!(q.dequeue(&mut h), Some(7));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn wraparound_recycles_indices() {
        let q = ScqStyleQueue::with_capacity(2);
        let mut h = q.register();
        for round in 0..300u64 {
            q.enqueue(&mut h, round).unwrap();
            assert_eq!(q.dequeue(&mut h), Some(round));
        }
    }

    #[test]
    fn overhead_is_about_4c_ring_cells() {
        // 2 rings × 2C cells: the cited 2C-cell blow-up, squared by the
        // aq/fq pair needed for arbitrary values.
        let c = 1 << 10;
        let q = ScqStyleQueue::with_capacity(c);
        let ovh = q.overhead_bytes();
        assert!(
            ovh >= 4 * c * 16,
            "two 2C rings of (seq,value) pairs: {ovh}"
        );
    }

    #[test]
    fn concurrent_transfer_conserves() {
        let q = Arc::new(ScqStyleQueue::with_capacity(8));
        let per = 3_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while (seen.len() as u64) < total {
            match q.dequeue(&mut h) {
                Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert!(q.dequeue(&mut h).is_none());
    }
}
