//! Pinned regression schedules (DESIGN.md §11): historical bugs encoded
//! as replayable [`Schedule`] artifacts driven through the neutral
//! machine-schedule runner. Each fixture must **flag the pre-fix model
//! variant** and **pass the shipped code path** — so the schedule itself
//! is the regression test, independent of the choreography that first
//! produced it. Runs in tier-1 (no features required).

use std::collections::VecDeque;

use bq_sim::algos::optimal_model::{HelpMode, OptimalModel};
use bq_sim::explore::MachinePlan;
use bq_sim::{
    check_history, run_machine_schedule, token_domain_violations, Access, LocKind, Op, Ret,
    RunOutcome, Schedule, Sim, SimMemory,
};

const STEPS: usize = 10_000;

// ---------------------------------------------------------------------------
// Recording harness: replays the original adversary choreography while
// logging every primitive step, to derive (and cross-check) the pinned
// schedule.
// ---------------------------------------------------------------------------

struct Rec<Q: bq_sim::machine::SimQueue> {
    sim: Sim<Q>,
    steps: Vec<usize>,
}

impl<Q: bq_sim::machine::SimQueue> Rec<Q> {
    fn step(&mut self, tid: usize) -> RunOutcome {
        self.steps.push(tid);
        self.sim.step(tid)
    }

    fn run_to_completion(&mut self, tid: usize) -> Ret {
        for _ in 0..STEPS {
            if let RunOutcome::Completed(r) = self.step(tid) {
                return r;
            }
        }
        panic!("thread {tid} did not complete");
    }

    fn run_op(&mut self, tid: usize, op: Op) -> Ret {
        self.sim.invoke(tid, op);
        self.run_to_completion(tid)
    }

    fn run_until(&mut self, tid: usize, mut pred: impl FnMut(&Access, &SimMemory) -> bool) {
        for _ in 0..STEPS {
            let a = self.sim.pending_access(tid);
            if pred(&a, &self.sim.mem) {
                return;
            }
            self.step(tid);
        }
        panic!("thread {tid} never reached its poise point");
    }
}

// ---------------------------------------------------------------------------
// PR-1 regression: the Lemma A.2 descriptor-verdict race
// ---------------------------------------------------------------------------

/// The pinned interleaving of the Lemma A.2 descriptor-verdict race
/// (DESIGN.md §7(1)): thread 1's enqueue is paused before its stale
/// array write-back, a helper pushes the counter, the element leaves
/// through the announcement, thread 2 is paused on its replacement CAS —
/// and the release order makes the paper-faithful helping discipline
/// count a position that holds no successful descriptor, resurrecting a
/// dequeued value.
///
/// Derived from the original adversary choreography by
/// [`derive_lemma_a2_schedule`]; `lemma_a2_schedule_is_stable` asserts
/// the two never drift apart.
const LEMMA_A2_SCHEDULE: &str = "sched:v1:1,1,1,1,1,1,1,3,3,3,3,3,3,3,3,0,0,0,0,0,2,2,2,2,\
                                 1,1,1,1,2,2,2,2,2,0,0,0,0,0,0,0,0,0,0,0";

/// Thread op plans matching the pinned schedule: T0 dequeues (the
/// through-announcement read plus the drain), T1 is the stalled victim
/// V, T2 is the poised second enqueuer Z, T3 the helper.
fn lemma_a2_plan() -> MachinePlan {
    vec![
        VecDeque::from([Op::Dequeue, Op::Dequeue, Op::Dequeue]),
        VecDeque::from([Op::Enqueue(10)]),
        VecDeque::from([Op::Enqueue(20)]),
        VecDeque::from([Op::Enqueue(99)]),
    ]
}

/// Re-run the PR-1 choreography step by step, recording every scheduled
/// primitive, and return (schedule, rendered history).
fn derive_lemma_a2_schedule() -> (Schedule, String) {
    let mut mem = SimMemory::new();
    let q = OptimalModel::new(HelpMode::PaperFaithful, 1, &mut mem);
    let ops_loc = q.ops_loc();
    let mut rec = Rec {
        sim: Sim::new(q, mem, 4),
        steps: Vec::new(),
    };

    // (1) V logically enqueues 10, poised before the array write-back.
    rec.sim.invoke(1, Op::Enqueue(10));
    rec.run_until(1, |a, m| {
        a.is_update() && m.kind(a.target()) == LocKind::Value
    });

    // (2) helper observes the descriptor and pushes the counter to 1.
    assert_eq!(rec.run_op(3, Op::Enqueue(99)), Ret::EnqFull);

    // (3) the element is consumed through the announcement.
    assert_eq!(rec.run_op(0, Op::Dequeue), Ret::DeqVal(10));

    // (4) Z reaches its previous-round replacement CAS and is poised.
    rec.sim.invoke(2, Op::Enqueue(20));
    rec.run_until(
        2,
        |a, _| matches!(a, Access::Cas { loc, exp, .. } if *loc == ops_loc && *exp != 0),
    );

    // (5) V completes: stale write-back, slot cleared.
    rec.run_to_completion(1);

    // (6) Z resumes into the unsound counter help.
    rec.run_to_completion(2);

    // Drain: the resurrected 10 comes back out — the double dequeue.
    let mut drains = 0;
    for _ in 0..3 {
        drains += 1;
        if rec.run_op(0, Op::Dequeue) == Ret::DeqEmpty {
            break;
        }
    }
    assert_eq!(
        drains + 1,
        lemma_a2_plan()[0].len(),
        "drain count drifted from the pinned plan"
    );
    (Schedule(rec.steps), rec.sim.history().render())
}

fn lemma_a2_model(mode: HelpMode) -> (OptimalModel, SimMemory) {
    let mut mem = SimMemory::new();
    let q = OptimalModel::new(mode, 1, &mut mem);
    (q, mem)
}

/// The derivation choreography and the pinned artifact must agree — if
/// the model's step structure changes, this fails and the constant needs
/// re-pinning (consciously).
#[test]
fn lemma_a2_schedule_is_stable() {
    let (derived, _) = derive_lemma_a2_schedule();
    assert_eq!(
        derived.to_string(),
        LEMMA_A2_SCHEDULE,
        "the Lemma A.2 choreography no longer produces the pinned schedule"
    );
}

/// Replaying the pinned schedule through the neutral runner reproduces
/// the double dequeue on the pre-fix (paper-faithful) helping variant:
/// the checker flags it.
#[test]
fn lemma_a2_pinned_schedule_flags_the_prefix_model() {
    let schedule: Schedule = LEMMA_A2_SCHEDULE.parse().unwrap();
    let (q, mem) = lemma_a2_model(HelpMode::PaperFaithful);
    let h = run_machine_schedule(q, mem, 4, &schedule, &lemma_a2_plan(), STEPS);
    assert!(
        !check_history(&h, 1).is_linearizable(),
        "the pinned schedule must exhibit the PR-1 bug on the pre-fix model:\n{}",
        h.render()
    );

    // Byte-for-byte: the neutral runner reproduces the choreography's
    // exact history from the artifact alone.
    let (_, choreography_history) = derive_lemma_a2_schedule();
    assert_eq!(h.render(), choreography_history);
}

/// The identical schedule on the shipped (evidence-based) helping
/// discipline stays linearizable — the fix holds on the exact
/// historical interleaving.
#[test]
fn lemma_a2_pinned_schedule_passes_the_shipped_model() {
    let schedule: Schedule = LEMMA_A2_SCHEDULE.parse().unwrap();
    let (q, mem) = lemma_a2_model(HelpMode::Evidence);
    let h = run_machine_schedule(q, mem, 4, &schedule, &lemma_a2_plan(), STEPS);
    assert!(
        check_history(&h, 1).is_linearizable(),
        "the shipped helping discipline regressed on the pinned PR-1 schedule:\n{}",
        h.render()
    );
}

// ---------------------------------------------------------------------------
// PR-2 regression: the bit-63 token-domain collision
// ---------------------------------------------------------------------------

/// The pre-fix pipeline packing (examples/pipeline.rs before PR-2): a
/// 16-bit checksum at bit 48 lets bit 63 escape into the token domain,
/// colliding with the DCSS descriptor mark.
fn pack_prefix(sum: u64, id: u64) -> u64 {
    (sum & 0xFFFF) << 48 | id
}

/// The shipped packing: 15 checksum bits, bit 63 always clear.
fn pack_shipped(sum: u64, id: u64) -> u64 {
    (sum & 0x7FFF) << 48 | id
}

/// The pinned producer/consumer interleaving for the token-domain
/// fixture — handy alternation, no derivation needed: what matters is
/// that enqueues and dequeues overlap.
const BIT63_SCHEDULE: &str = "sched:v1:0,0,1,0,0,1,1,0,1,0,0,1,1,1,0,1,0,1,1,0,1,1";

fn bit63_plan(pack: fn(u64, u64) -> u64) -> MachinePlan {
    // Checksums with bit 15 set are exactly the PR-2 trigger.
    let vs: Vec<u64> = (1..=3u64).map(|id| pack(0x8000 + id, id)).collect();
    vec![
        VecDeque::from([Op::Enqueue(vs[0]), Op::Enqueue(vs[1]), Op::Enqueue(vs[2])]),
        VecDeque::from([Op::Dequeue, Op::Dequeue, Op::Dequeue]),
    ]
}

/// The pre-fix packing pushes bit-63 values through the queue; the
/// token-domain invariant must flag every one of them, on both the
/// enqueue and the dequeue side.
#[test]
fn bit63_pinned_schedule_flags_the_prefix_packing() {
    let schedule: Schedule = BIT63_SCHEDULE.parse().unwrap();
    let mut mem = SimMemory::new();
    let q = bq_sim::algos::counter_queue::naive(2, &mut mem);
    let h = run_machine_schedule(q, mem, 2, &schedule, &bit63_plan(pack_prefix), STEPS);
    let violations = token_domain_violations(&h);
    assert!(
        !violations.is_empty(),
        "pre-fix packing must violate the token domain:\n{}",
        h.render()
    );
    assert!(
        violations.iter().any(|v| v.contains("enqueue")),
        "{violations:?}"
    );
}

/// The shipped packing survives the identical schedule with a clean
/// token domain and a linearizable history.
#[test]
fn bit63_pinned_schedule_passes_the_shipped_packing() {
    let schedule: Schedule = BIT63_SCHEDULE.parse().unwrap();
    let mut mem = SimMemory::new();
    let q = bq_sim::algos::counter_queue::naive(2, &mut mem);
    let h = run_machine_schedule(q, mem, 2, &schedule, &bit63_plan(pack_shipped), STEPS);
    assert_eq!(
        token_domain_violations(&h),
        Vec::<String>::new(),
        "shipped packing regressed into the token domain:\n{}",
        h.render()
    );
    assert!(check_history(&h, 2).is_linearizable());
}

/// The shipped examples still use the 15-bit packing — guard the source
/// so the 0xFFFF mask cannot quietly come back.
#[test]
fn shipped_examples_use_the_15bit_checksum_mask() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for f in ["examples/pipeline.rs", "examples/async_pipeline.rs"] {
        let src = std::fs::read_to_string(format!("{root}/{f}")).unwrap();
        assert!(
            src.contains("& 0x7FFF) << 48"),
            "{f}: shipped checksum packing changed"
        );
        assert!(
            !src.contains("& 0xFFFF) << 48"),
            "{f}: the pre-fix 16-bit checksum mask is back"
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism audit: nothing on an explored or replayed path may consult
// wall clocks or ambient randomness
// ---------------------------------------------------------------------------

/// Source scan over `bq-sim`: schedules must replay bit-identically, so
/// no wall-clock reads or entropy-seeded RNGs anywhere in the crate.
/// (`fuzz.rs` uses `StdRng::seed_from_u64`, which is deterministic by
/// construction.)
#[test]
fn sim_crate_has_no_wallclock_or_ambient_randomness() {
    let src_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/src");
    let banned = [
        "Instant::now",
        "SystemTime::now",
        "thread_rng",
        "from_entropy",
        "rand::random",
    ];
    let mut stack = vec![std::path::PathBuf::from(src_dir)];
    let mut scanned = 0;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).unwrap();
                for b in banned {
                    assert!(
                        !src.contains(b),
                        "{}: uses {b} — explored/replayed paths must be deterministic",
                        path.display()
                    );
                }
                scanned += 1;
            }
        }
    }
    assert!(scanned >= 10, "scan found only {scanned} source files");
}
