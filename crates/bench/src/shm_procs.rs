//! Fork-based **multi-process** workloads over the `bq-shm` backend —
//! the drivers behind experiment E13 and the soak's crash rounds.
//!
//! These mirror [`crate::workload`] but place each worker in its own
//! forked *process*: the queue lives in an anonymous `MAP_SHARED`
//! segment, so the only coordination between workers is the shared
//! protocol itself. On a single-core host the numbers measure the
//! protocol's cost under preemption and context switching (plus fork
//! overhead amortized over the run), not parallel speedup — the same
//! caveat as every other throughput table in this workspace.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bq_shm::{fork_child, ChildExit, FaultPlan, ShmQueue};

use crate::workload::WorkloadResult;

fn yield_now() {
    // SAFETY: sched_yield has no preconditions, and it is allocation-free
    // (forked children of this threaded process must not allocate).
    unsafe {
        libc::sched_yield();
    }
}

/// Producer/consumer pairs across processes: `producers` forked processes
/// each enqueue `per` values, `consumers` forked processes drain them.
/// Wall-clock covers fork-to-reap; ops counts enqueues + dequeues.
///
/// Panics if any child wedges (deadline) or reports failure — this
/// doubles as the liveness check in the soak.
pub fn shm_fork_pairs_throughput(
    c: usize,
    producers: u64,
    consumers: u64,
    per: u64,
) -> WorkloadResult {
    assert!(producers > 0 && consumers > 0);
    assert!(
        (producers * per).is_multiple_of(consumers),
        "consumers must split the stream evenly"
    );
    let q = ShmQueue::<u64>::create_anon(c).expect("anonymous shm segment");

    let start = Instant::now();
    let mut children = Vec::new();
    for p in 0..producers {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        yield_now();
                    }
                }
            })
            .expect("fork producer"),
        );
    }
    let quota = producers * per / consumers;
    for _ in 0..consumers {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                let seg = q.segment();
                for _ in 0..quota {
                    let v = loop {
                        if let Some(v) = q.dequeue(&mut h) {
                            break v;
                        }
                        yield_now();
                    };
                    seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                }
            })
            .expect("fork consumer"),
        );
    }
    for mut child in children {
        let end = child
            .wait_deadline(Duration::from_secs(120))
            .expect("waitpid")
            .expect("cross-process pairs wedged");
        assert_eq!(end, ChildExit::Exited(0), "child failed");
    }
    let secs = start.elapsed().as_secs_f64();

    let n = producers * per;
    assert_eq!(
        q.segment().scratch(0).load(Ordering::SeqCst),
        n * (n + 1) / 2,
        "element conservation across processes"
    );
    WorkloadResult { ops: 2 * n, secs }
}

/// One crash round: a producer process streaming values is `SIGKILL`ed
/// after `writes_before_kill` shared writes (landing it at an arbitrary
/// point inside some enqueue's write sequence); the parent flags it dead
/// and a consumer process must drain the queue to a stable empty state.
/// Returns the number of elements that were published before the kill.
///
/// Panics if the consumer wedges or conservation breaks — the queue must
/// have consumed exactly the contiguous published prefix of the stream.
pub fn shm_crash_round(writes_before_kill: u64) -> u64 {
    let q = ShmQueue::<u64>::create_anon(8).expect("anonymous shm segment");
    let seg = q.segment().clone();

    let qp = q.clone();
    let producer = fork_child(move || {
        let mut h = qp.register();
        qp.segment()
            .scratch(7)
            .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
        h.arm_crash_after_writes(writes_before_kill);
        for v in 1..=u64::MAX {
            while qp.enqueue(&mut h, v).is_err() {
                yield_now();
            }
        }
    })
    .expect("fork producer");

    assert_eq!(
        producer.wait().expect("waitpid"),
        ChildExit::Signaled(libc::SIGKILL),
        "the armed producer must die mid-stream"
    );
    let slot = seg.scratch(7).load(Ordering::SeqCst);
    assert!(slot > 0, "producer registered before arming");
    seg.mark_dead(slot as usize - 1);

    let qc = q.clone();
    let mut consumer = fork_child(move || {
        let mut h = qc.register();
        let seg = qc.segment();
        let mut empties = 0u32;
        while empties < 500 {
            match qc.dequeue(&mut h) {
                Some(v) => {
                    empties = 0;
                    seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                    seg.scratch(1).fetch_add(1, Ordering::SeqCst);
                }
                None => empties += 1,
            }
        }
    })
    .expect("fork consumer");
    let end = consumer
        .wait_deadline(Duration::from_secs(60))
        .expect("waitpid")
        .expect("consumer wedged draining a crashed producer's queue");
    assert_eq!(end, ChildExit::Exited(0));

    let count = seg.scratch(1).load(Ordering::SeqCst);
    let sum = seg.scratch(0).load(Ordering::SeqCst);
    assert_eq!(
        sum,
        count * (count + 1) / 2,
        "published prefix must be contiguous (writes_before_kill = {writes_before_kill})"
    );
    assert!(q.is_empty(), "orphaned state must be reclaimed, not wedged");
    count
}

/// One **unified fault round** (DESIGN.md §13.4): the producer executes
/// an entire [`FaultPlan`] — forced refusals consumed at operation
/// entry, injected delays widening the crash windows, and (for plans
/// that kill) a `SIGKILL` landing mid-protocol. The parent then reaps,
/// flags the victim, runs **one** [`ShmQueue::recover`] sweep, and a
/// consumer process drains to stable empty; the contiguous-published-
/// prefix conservation check is the same as [`shm_crash_round`]'s.
/// Returns the number of elements published before the fault.
///
/// `plan.drop_wakes` is a *driver-side* fault with no meaning on the
/// spin-based shm protocol; the soak honors it separately through
/// [`crate::facade::timed_recv_dropped_wake_round`]. Panics on wedge or
/// conservation failure — the caller prints the plan's `plan:v1:`
/// artifact beforehand, so a red soak log replays exactly.
pub fn shm_fault_round(plan: &FaultPlan) -> u64 {
    shm_fault_round_with_stats(plan).0
}

/// [`shm_fault_round`] plus the segment's post-round cross-process
/// metrics snapshot (poison count, per-process attempt/claim/reclaim
/// tallies — DESIGN.md §14). The snapshot is taken *after* the recover
/// sweep and the drain, so it is the round's post-mortem: the dead
/// producer's counters are still in it.
pub fn shm_fault_round_with_stats(plan: &FaultPlan) -> (u64, bq_core::MetricsSnapshot) {
    // Short fault-free streams must fit the capacity: the consumer only
    // forks after the producer is reaped, so nothing drains concurrently.
    const CALM_STREAM: u64 = 6;
    let q = ShmQueue::<u64>::create_anon(8).expect("anonymous shm segment");
    let seg = q.segment().clone();

    let qp = q.clone();
    let plan_c = *plan;
    let producer = fork_child(move || {
        let mut h = qp.register();
        qp.segment()
            .scratch(7)
            .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
        h.apply_plan(&plan_c);
        let stream = if plan_c.kill_after.is_some() {
            u64::MAX // run until the armed kill fires
        } else {
            CALM_STREAM
        };
        for v in 1..=stream {
            while qp.enqueue(&mut h, v).is_err() {
                yield_now();
            }
        }
    })
    .expect("fork producer");

    let end = producer.wait().expect("waitpid");
    if plan.kill_after.is_some() {
        assert_eq!(
            end,
            ChildExit::Signaled(libc::SIGKILL),
            "an armed producer must die mid-stream"
        );
    } else {
        assert!(end.success(), "fault-free producer exits cleanly");
    }
    let slot = seg.scratch(7).load(Ordering::SeqCst);
    assert!(slot > 0, "producer registered before running its plan");
    seg.mark_dead(slot as usize - 1);

    // One sweep reclaims whatever the victim left claimed: at most its
    // single in-flight enqueue, and exactly nothing for a clean exit.
    let reclaimed = q.recover();
    assert!(
        reclaimed <= 1,
        "a single producer can orphan at most one claim, swept {reclaimed}"
    );
    if plan.kill_after.is_none() {
        assert_eq!(reclaimed, 0, "clean exit left an orphaned claim");
    }

    let qc = q.clone();
    let mut consumer = fork_child(move || {
        let mut h = qc.register();
        let seg = qc.segment();
        let mut empties = 0u32;
        while empties < 500 {
            match qc.dequeue(&mut h) {
                Some(v) => {
                    empties = 0;
                    seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                    seg.scratch(1).fetch_add(1, Ordering::SeqCst);
                }
                None => empties += 1,
            }
        }
    })
    .expect("fork consumer");
    let end = consumer
        .wait_deadline(Duration::from_secs(60))
        .expect("waitpid")
        .expect("consumer wedged draining after the fault round");
    assert_eq!(end, ChildExit::Exited(0));

    let count = seg.scratch(1).load(Ordering::SeqCst);
    let sum = seg.scratch(0).load(Ordering::SeqCst);
    assert_eq!(
        sum,
        count * (count + 1) / 2,
        "published prefix must be contiguous (plan {plan})"
    );
    if plan.kill_after.is_none() {
        assert_eq!(count, CALM_STREAM, "refusals/delays must not drop values");
    }
    assert!(q.is_empty(), "faulted state must be reclaimed, not wedged");
    (count, q.stats_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static FORK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn fork_pairs_driver_conserves() {
        let _g = FORK_LOCK.lock().unwrap();
        let r = shm_fork_pairs_throughput(8, 2, 2, 100);
        assert_eq!(r.ops, 400);
    }

    #[test]
    fn crash_round_driver_reports_published_prefix() {
        let _g = FORK_LOCK.lock().unwrap();
        // 5 gate hits per uncontended enqueue (entry + W1..W4): dying
        // after 12 writes lands inside the 3rd enqueue, with 2 published.
        assert_eq!(shm_crash_round(12), 2);
    }

    #[test]
    fn fault_round_runs_calm_and_lethal_plans() {
        let _g = FORK_LOCK.lock().unwrap();
        // Calm plan: refusals and delays but no kill — nothing dropped.
        let calm = FaultPlan {
            refuse_first: 2,
            delay_period: 3,
            delay_micros: 5,
            ..FaultPlan::default()
        };
        assert_eq!(shm_fault_round(&calm), 6);
        // Lethal plan: same gate arithmetic as the crash-round test. The
        // post-round snapshot reports the reclaimed orphan and keeps the
        // dead producer's per-process tallies (3 attempts, 3 won claims).
        let lethal = FaultPlan {
            kill_after: Some(12),
            ..FaultPlan::default()
        };
        let (count, snap) = shm_fault_round_with_stats(&lethal);
        assert_eq!(count, 2);
        assert_eq!(snap.get("poisoned"), Some(1));
        assert_eq!(snap.get("proc0.attempts"), Some(3));
        assert_eq!(snap.get("proc0.claims"), Some(3));
        assert_eq!(snap.get("proc0.dead"), Some(1));
    }
}
