//! **Heap-backed variable-length byte ring** — unique SPSC endpoints
//! over a [`RelocByteRing`] (DESIGN.md §12).
//!
//! [`byte_ring`] allocates the relocatable layout on the heap and hands
//! out exactly one [`ByteProducer`] and one [`ByteConsumer`]. The
//! endpoints are `!Clone` and their methods take `&mut self`, so the
//! strictly-one-producer / strictly-one-consumer contract the raw
//! `unsafe` ring ops demand is enforced by ownership: holding the
//! endpoint *is* holding the role. (`bq-shm`'s `ShmByteRing` enforces
//! the same contract across processes with the header claim words.)
//!
//! Messages travel zero-copy in both directions: the producer fills a
//! [`ByteWriteGrant`] in place and the consumer borrows each message as
//! a [`ByteReadGrant`] (`&[u8]` straight over the ring memory). The
//! copy-convenience `push`/`pop` wrappers exist for callers that want
//! the simple thing.

use std::sync::Arc;

use crate::relocatable::{ByteReadGrant, ByteWriteGrant, RelocBuf, RelocByteRing};

struct Shared {
    // Field order is drop order; the buf must outlive nothing (the ring
    // view holds pointers into it) but keeping it first documents the
    // ownership: `_buf` owns the bytes, `ring` addresses them.
    _buf: RelocBuf,
    ring: RelocByteRing,
    /// Highest `bytes_used` observed at a producer publication
    /// (DESIGN.md §14); a ZST no-op with `obs` off.
    used_hwm: crate::obs::Counter,
}

// SAFETY: the ring layout is self-contained in `_buf` and the SPSC
// protocol synchronizes producer and consumer through the tail/head
// atomics (Release/Acquire pairs); the unique endpoints guarantee at
// most one thread on each side.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// The unique producing endpoint of a [`byte_ring`].
pub struct ByteProducer {
    shared: Arc<Shared>,
}

/// The unique consuming endpoint of a [`byte_ring`].
pub struct ByteConsumer {
    shared: Arc<Shared>,
}

/// Build a heap-backed SPSC byte ring with `cap_bytes` data bytes
/// (multiple of 8) carrying messages up to `max_msg` bytes, and return
/// its two unique endpoints.
///
/// Panics on invalid geometry: `cap_bytes` must hold two maximum-size
/// records (`2 · byte_record_size(max_msg) ≤ cap_bytes`) so a producer
/// retry loop can always make progress on an empty ring.
pub fn byte_ring(cap_bytes: usize, max_msg: usize) -> (ByteProducer, ByteConsumer) {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(cap_bytes));
    // SAFETY: buf satisfies layout(cap_bytes) and is exclusively owned.
    let ring = unsafe { RelocByteRing::init_at(buf.base(), cap_bytes, max_msg) };
    let shared = Arc::new(Shared {
        _buf: buf,
        ring,
        used_hwm: crate::obs::Counter::new(),
    });
    (
        ByteProducer {
            shared: Arc::clone(&shared),
        },
        ByteConsumer { shared },
    )
}

impl ByteProducer {
    /// Data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.shared.ring.capacity_bytes()
    }

    /// Maximum message length in bytes.
    pub fn max_msg(&self) -> usize {
        self.shared.ring.max_msg()
    }

    /// Reserve in-place space for one message of up to `len ≤ max_msg`
    /// bytes. `None` when the ring lacks room. Fill the grant's buffer
    /// and `commit(used)`; dropping it aborts.
    pub fn try_grant(&mut self, len: usize) -> Option<ByteWriteGrant<'_>> {
        // SAFETY: `&mut self` on the unique producer endpoint is the
        // single-producer discipline the ring op requires.
        let g = unsafe { self.shared.ring.producer_grant(len) };
        if cfg!(feature = "obs") && g.is_some() {
            // The reservation is not in `bytes_used` until the commit,
            // so count the full reserved record here (an upper bound
            // when the grant commits fewer than `len` bytes).
            let reserved = crate::relocatable::byte_record_size(len);
            self.shared
                .used_hwm
                .record_max((self.shared.ring.bytes_used() + reserved) as u64);
        }
        g
    }

    /// Copy-convenience enqueue of one message. `false` when the ring
    /// lacks room.
    pub fn push(&mut self, msg: &[u8]) -> bool {
        // SAFETY: as in `try_grant`.
        let ok = unsafe { self.shared.ring.producer_push(msg) };
        if cfg!(feature = "obs") && ok {
            self.shared
                .used_hwm
                .record_max(self.shared.ring.bytes_used() as u64);
        }
        ok
    }

    /// Bytes currently in flight (records + wrap padding).
    pub fn bytes_used(&self) -> usize {
        self.shared.ring.bytes_used()
    }

    /// Highest `bytes_used` ever observed at a publication — the ring's
    /// occupancy high-watermark (DESIGN.md §14). Always 0 with `obs` off.
    pub fn bytes_used_hwm(&self) -> u64 {
        self.shared.used_hwm.get()
    }
}

impl ByteConsumer {
    /// Data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.shared.ring.capacity_bytes()
    }

    /// Maximum message length in bytes.
    pub fn max_msg(&self) -> usize {
        self.shared.ring.max_msg()
    }

    /// Borrow the oldest message in place (`None` when empty). The ring
    /// space is reclaimed when the grant drops.
    pub fn try_read(&mut self) -> Option<ByteReadGrant<'_>> {
        // SAFETY: `&mut self` on the unique consumer endpoint is the
        // single-consumer discipline the ring op requires.
        unsafe { self.shared.ring.consumer_read() }
    }

    /// Copy-convenience dequeue appending the oldest message to `out`.
    /// `false` when the ring is empty.
    pub fn pop(&mut self, out: &mut Vec<u8>) -> bool {
        // SAFETY: as in `try_read`.
        unsafe { self.shared.ring.consumer_pop(out) }
    }

    /// Bytes currently in flight (records + wrap padding).
    pub fn bytes_used(&self) -> usize {
        self.shared.ring.bytes_used()
    }
}

impl bq_memtrack::MemoryFootprint for ByteProducer {
    fn footprint(&self) -> bq_memtrack::FootprintBreakdown {
        // The data bytes are the element storage; the only overhead is
        // the fixed header (counters + geometry + claims). Record
        // headers/padding live *inside* the data bytes — they are the
        // price of variable-size messages, not queue metadata.
        bq_memtrack::FootprintBreakdown::with_elements(self.shared.ring.capacity_bytes()).add(
            "byte ring header",
            std::mem::size_of::<crate::relocatable::ByteRingHdr>(),
            bq_memtrack::OverheadClass::Counters,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_roundtrip_across_threads() {
        let (mut tx, mut rx) = byte_ring(4096, 512);
        let sender = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let len = (i % 512) as usize + 1;
                let msg = vec![(i % 251) as u8; len];
                while !tx.push(&msg) {
                    std::hint::spin_loop();
                }
            }
        });
        let mut seen = 0u32;
        while seen < 1000 {
            if let Some(g) = rx.try_read() {
                let len = (seen % 512) as usize + 1;
                assert_eq!(g.len(), len);
                assert!(g.iter().all(|&b| b == (seen % 251) as u8));
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        sender.join().unwrap();
        assert!(rx.try_read().is_none());
    }

    #[test]
    fn zero_copy_grant_path_roundtrip() {
        let (mut tx, mut rx) = byte_ring(256, 64);
        {
            let mut g = tx.try_grant(64).unwrap();
            g.buf()[..5].copy_from_slice(b"hello");
            g.commit(5);
        }
        {
            let g = rx.try_read().unwrap();
            assert_eq!(&*g, b"hello");
        }
        assert_eq!(rx.bytes_used(), 0);
        // The occupancy high-watermark survives the drain (obs only).
        if cfg!(feature = "obs") {
            assert!(tx.bytes_used_hwm() > 0, "publication raised the HWM");
        } else {
            assert_eq!(tx.bytes_used_hwm(), 0, "obs off: no recording");
        }
    }

    #[test]
    fn footprint_is_header_plus_data() {
        use bq_memtrack::MemoryFootprint;
        let (tx, _rx) = byte_ring(1024, 64);
        assert_eq!(tx.element_bytes(), 1024);
        assert_eq!(tx.overhead_bytes(), 384);
    }
}
