//! A blocking façade over the non-blocking queues: `send` waits for space,
//! `recv` waits for an element.
//!
//! The paper's §1 mentions the trivial blocking solution (a lock has Θ(1)
//! overhead but poor scalability). This type shows the practical middle
//! ground real systems use: the *data path* stays the lock-free queue —
//! all transfers go through it, no element is ever protected by a lock —
//! and waiting is delegated to the [`EventCount`] waiter subsystem
//! (DESIGN.md §9), one instance per direction, used **only to park**
//! threads that found the queue full/empty. The memory cost of the
//! parking layer is Θ(1) on top of whatever the underlying queue pays,
//! so e.g. `BlockingQueue<T, OptimalQueue>` is a blocking-API queue with
//! Θ(T) total overhead.
//!
//! ## Wake protocol: wake generations, no timed polling
//!
//! The classic lost-wake race — a counterpart transitions the queue
//! between our failed attempt and our park — is closed by the
//! eventcount's announce → snapshot → re-attempt → park-if-unchanged
//! protocol; see the [`crate::event`] module docs for the full argument.
//! This file contains **no parking machinery of its own**: every wait is
//! an [`EventCount::wait_until`] call whose attempt closure is the
//! non-blocking operation, and every successful transition publishes a
//! wake to the opposite direction via [`EventCount::wake_all`]. The
//! async façade ([`crate::AsyncQueue`]) drives futures off the *same two
//! eventcount instances*, so blocking threads and async tasks can wait
//! on one queue simultaneously. Waits are untimed, the uncontended wake
//! fast path is one atomic load, and blocking throughput has no built-in
//! millisecond floor.
//!
//! ## Shutdown: `close()` with drain semantics
//!
//! [`close`](BlockingQueue::close) disconnects the queue without needing
//! sentinel ("poison") values: subsequent and parked `send`s return the
//! value back as an error, while receivers **drain every element already
//! accepted** and only then observe the closed state (`recv` → `None`,
//! `recv_many` → empty vector). A send racing `close` may still deposit
//! its element — it is never lost: it remains in the queue for later
//! receivers (or the destructor's drain). Conservation is unaffected.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crate::simx::SimAtomicBool;

use crate::boxed::{BoxedHandle, BoxedQueue, PointerCapable};
use crate::event::EventCount;

/// Error returned by a blocking/async `send` on a closed queue: carries
/// the unsent value(s) back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by `try_send`: the queue was full or already closed.
/// Either way the value comes back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue holds `C` elements (retry may succeed later).
    Full(T),
    /// The queue is closed (no send will ever succeed again).
    Closed(T),
}

impl<T> TrySendError<T> {
    /// The rejected value, whatever the reason.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

/// Error returned by `try_recv`: nothing to take right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue was observed empty but is still open.
    Empty,
    /// The queue was observed empty after it was closed. (A send racing
    /// `close` may still deposit later; see the module docs.)
    Closed,
}

/// Error returned by a deadline/timeout `send`: the value comes back in
/// both cases, and the two failure causes stay distinguishable — a
/// `Timeout` may be retried, a `Closed` never succeeds again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The deadline passed with the queue still full. A `close()` racing
    /// the deadline is pinned the other way: when the queue was closed
    /// first, the error is [`Closed`](Self::Closed), never `Timeout`.
    Timeout(T),
    /// The queue is closed (no send will ever succeed again).
    Closed(T),
}

impl<T> SendTimeoutError<T> {
    /// The unsent value(s), whatever the reason.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(v) | SendTimeoutError::Closed(v) => v,
        }
    }

    /// `true` for the retryable [`Timeout`](Self::Timeout) case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SendTimeoutError::Timeout(_))
    }
}

impl<T> std::fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "send timed out (queue still full)"),
            SendTimeoutError::Closed(_) => write!(f, "send on closed queue"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendTimeoutError<T> {}

/// Error returned by a deadline/timeout `recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue still empty and open. As with
    /// sends, `close()` racing the deadline is pinned: when the queue
    /// was closed and drained first, the error is
    /// [`Closed`](Self::Closed), never `Timeout`.
    Timeout,
    /// The queue is closed and fully drained.
    Closed,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "recv timed out (queue still empty)"),
            RecvTimeoutError::Closed => write!(f, "recv on closed and drained queue"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// How long a timed operation may wait. `Deadline` is absolute;
/// `Timeout` resolves to a deadline lazily at the first park, so an
/// operation that never waits never reads the clock.
#[derive(Debug, Clone, Copy)]
enum Wait {
    Deadline(Instant),
    Timeout(Duration),
}

impl Wait {
    fn until<R>(self, ec: &EventCount, attempt: impl FnMut() -> Option<R>) -> Option<R> {
        match self {
            Wait::Deadline(d) => ec.wait_until_deadline(d, attempt),
            Wait::Timeout(t) => ec.wait_until_timeout(t, attempt),
        }
    }
}

/// Blocking bounded queue over any pointer-capable token queue.
///
/// ```
/// use bq_core::{BlockingQueue, OptimalQueue};
///
/// let q: BlockingQueue<String, OptimalQueue> =
///     BlockingQueue::new(OptimalQueue::with_capacity_and_threads(8, 2));
/// let mut h = q.register();
/// q.send(&mut h, "job".to_string()).unwrap();
/// assert_eq!(q.recv(&mut h), Some("job".to_string()));
/// q.close();
/// assert_eq!(q.recv(&mut h), None, "closed and drained");
/// ```
pub struct BlockingQueue<T: Send, Q: PointerCapable> {
    inner: BoxedQueue<T, Q>,
    not_full: EventCount,
    not_empty: EventCount,
    closed: SimAtomicBool,
    poisoned: SimAtomicBool,
}

impl<T: Send, Q: PointerCapable> BlockingQueue<T, Q> {
    /// Wrap an empty token queue.
    pub fn new(inner: Q) -> Self {
        BlockingQueue {
            inner: BoxedQueue::new(inner),
            not_full: EventCount::new(),
            not_empty: EventCount::new(),
            closed: SimAtomicBool::new(false),
            poisoned: SimAtomicBool::new(false),
        }
    }

    /// Obtain a per-thread handle.
    pub fn register(&self) -> BoxedHandle<Q> {
        self.inner.register()
    }

    /// The eventcount senders wait on ("not full"). Exposed so the async
    /// façade can register wakers against the same generations, and for
    /// instrumentation (waiter counts in tests).
    pub fn not_full_event(&self) -> &EventCount {
        &self.not_full
    }

    /// The eventcount receivers wait on ("not empty"); see
    /// [`not_full_event`](Self::not_full_event).
    pub fn not_empty_event(&self) -> &EventCount {
        &self.not_empty
    }

    /// Borrow the underlying token queue (footprint accounting and other
    /// read-only introspection — the façade's typed API is the only safe
    /// transfer path).
    pub fn inner_queue(&self) -> &Q {
        self.inner.inner()
    }

    /// Close the queue: wakes every parked sender and receiver. Senders
    /// fail from now on; receivers drain the remaining elements and then
    /// observe the closed state. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.not_full.wake_all();
        self.not_empty.wake_all();
    }

    /// Has [`close`](Self::close) been called?
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Did a panic unwind out of a queue operation mid-flight? A
    /// poisoned queue is permanently closed (fault containment: the
    /// inner data structure may hold a half-applied transition), but
    /// already-accepted elements still drain. The panic itself is
    /// re-thrown to the thread that hit it; *other* threads observe
    /// `Closed` errors plus this flag.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Run an inner-queue operation, converting a panic that unwinds out
    /// of it into a poisoned + closed queue before re-throwing. This is
    /// the facade-level catch: both the blocking and async surfaces
    /// funnel every data-path call through here.
    fn contain<R>(&self, f: impl FnOnce() -> R) -> R {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(payload) => {
                self.poisoned.store(true, Ordering::SeqCst);
                self.close();
                resume_unwind(payload);
            }
        }
    }

    /// Non-blocking enqueue (delegates to the lock-free path).
    pub fn try_send(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), TrySendError<T>> {
        if self.is_closed() {
            return Err(TrySendError::Closed(value));
        }
        match self.contain(|| self.inner.enqueue(h, value)) {
            Ok(()) => {
                self.not_empty.wake_all();
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Enqueue, waiting while the queue is full. Fails only when the
    /// queue is (or becomes) closed, returning the value.
    pub fn send(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), SendError<T>> {
        let mut item = Some(value);
        self.not_full.wait_until(
            || match self.try_send(h, item.take().expect("item present")) {
                Ok(()) => Some(Ok(())),
                Err(TrySendError::Closed(v)) => Some(Err(SendError(v))),
                Err(TrySendError::Full(v)) => {
                    item = Some(v);
                    None
                }
            },
        )
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self, h: &mut BoxedHandle<Q>) -> Result<T, TryRecvError> {
        match self.contain(|| self.inner.dequeue(h)) {
            Some(v) => {
                self.not_full.wake_all();
                Ok(v)
            }
            None => Err(if self.is_closed() {
                TryRecvError::Closed
            } else {
                TryRecvError::Empty
            }),
        }
    }

    /// Dequeue, waiting while the queue is empty. Returns `None` only
    /// once the queue is closed **and** observed empty after the closed
    /// flag (drain semantics: every accepted element is delivered first).
    pub fn recv(&self, h: &mut BoxedHandle<Q>) -> Option<T> {
        self.not_empty.wait_until(|| match self.try_recv(h) {
            Ok(v) => Some(Some(v)),
            // Closed: one final drain check *after* observing the flag
            // catches elements deposited between the failed dequeue and
            // the flag read.
            Err(TryRecvError::Closed) => Some(self.try_recv(h).ok()),
            Err(TryRecvError::Empty) => None,
        })
    }

    /// Non-blocking batch enqueue: accepts a prefix (through the inner
    /// queue's batch path) and returns the rejected suffix — everything,
    /// untouched, when the queue is closed (check
    /// [`is_closed`](Self::is_closed) to tell the cases apart).
    pub fn try_send_many(&self, h: &mut BoxedHandle<Q>, items: Vec<T>) -> Vec<T> {
        if self.is_closed() {
            return items;
        }
        let total = items.len();
        let rejected = self.contain(|| self.inner.enqueue_many(h, items));
        if rejected.len() < total {
            self.not_empty.wake_all();
        }
        rejected
    }

    /// Batch enqueue, waiting until **every** item is accepted. On close,
    /// returns the unsent suffix (already-accepted items stay in the
    /// queue for receivers to drain).
    pub fn send_all(&self, h: &mut BoxedHandle<Q>, items: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        // Box once and retry on the token run: a parked batch would
        // otherwise round-trip every pending item through Box on each
        // wake. (If a retry panics, the unsent suffix leaks its boxes —
        // a memory leak only, and the inner enqueue does not panic on
        // tokens produced by `box_token`.)
        let tokens: Vec<u64> = items
            .into_iter()
            .map(BoxedQueue::<T, Q>::box_token)
            .collect();
        let mut sent = 0usize;
        self.not_full.wait_until(|| {
            if self.is_closed() {
                let unsent = tokens[sent..]
                    .iter()
                    .map(|&t| BoxedQueue::<T, Q>::unbox_token(t))
                    .collect();
                sent = tokens.len(); // the suffix's ownership moved out
                return Some(Err(SendError(unsent)));
            }
            let n = self.contain(|| self.inner.enqueue_tokens(h, &tokens[sent..]));
            if n > 0 {
                self.not_empty.wake_all();
            }
            sent += n;
            (sent == tokens.len()).then_some(Ok(()))
        })
    }

    /// Non-blocking batch dequeue into `out`; returns the count taken.
    pub fn try_recv_many(&self, h: &mut BoxedHandle<Q>, max: usize, out: &mut Vec<T>) -> usize {
        let n = self.contain(|| self.inner.dequeue_many(h, max, out));
        if n > 0 {
            self.not_full.wake_all();
        }
        n
    }

    /// Batch dequeue, waiting until at least one element arrives; returns
    /// 1..=`max` values. An **empty vector** means the queue is closed
    /// and fully drained (for `max > 0` that is the only way it can be
    /// empty).
    pub fn recv_many(&self, h: &mut BoxedHandle<Q>, max: usize) -> Vec<T> {
        assert!(max > 0, "recv_many needs a positive batch bound");
        // One buffer across park/retry cycles; failed attempts push
        // nothing into it and allocate nothing.
        let mut out = Vec::new();
        self.not_empty.wait_until(|| {
            if self.try_recv_many(h, max, &mut out) > 0 {
                return Some(());
            }
            if self.is_closed() {
                // Final drain check after observing the flag, as in recv.
                self.try_recv_many(h, max, &mut out);
                return Some(());
            }
            None
        });
        out
    }

    /// [`send`](Self::send) with an absolute deadline: waits for space at
    /// most until `deadline`, then hands the value back as
    /// [`SendTimeoutError::Timeout`]. The fast path never reads the
    /// clock — the deadline only matters once a park actually happens —
    /// and a `close()` racing the deadline is pinned: if the queue was
    /// closed first, the error is `Closed`, never `Timeout`.
    pub fn send_deadline(
        &self,
        h: &mut BoxedHandle<Q>,
        value: T,
        deadline: Instant,
    ) -> Result<(), SendTimeoutError<T>> {
        self.send_limited(h, value, Wait::Deadline(deadline))
    }

    /// [`send_deadline`](Self::send_deadline) with a relative timeout.
    /// The timeout resolves to a deadline lazily at the first park, so an
    /// uncontended send never reads the clock (E16 measures this).
    pub fn send_timeout(
        &self,
        h: &mut BoxedHandle<Q>,
        value: T,
        timeout: Duration,
    ) -> Result<(), SendTimeoutError<T>> {
        self.send_limited(h, value, Wait::Timeout(timeout))
    }

    fn send_limited(
        &self,
        h: &mut BoxedHandle<Q>,
        value: T,
        wait: Wait,
    ) -> Result<(), SendTimeoutError<T>> {
        let mut item = Some(value);
        let res = wait.until(&self.not_full, || {
            match self.try_send(h, item.take().expect("item present")) {
                Ok(()) => Some(Ok(())),
                Err(TrySendError::Closed(v)) => Some(Err(SendTimeoutError::Closed(v))),
                Err(TrySendError::Full(v)) => {
                    item = Some(v);
                    None
                }
            }
        });
        match res {
            Some(r) => r,
            None => {
                // Deadline fired; the eventcount already ran one final
                // attempt, so `item` is still ours. Pin close-vs-timeout:
                // a queue closed before the deadline reports Closed even
                // if the last attempt raced the flag.
                let v = item.take().expect("item present on timeout");
                if self.is_closed() {
                    Err(SendTimeoutError::Closed(v))
                } else {
                    Err(SendTimeoutError::Timeout(v))
                }
            }
        }
    }

    /// [`recv`](Self::recv) with an absolute deadline. `Closed` still has
    /// drain semantics (every accepted element is delivered before the
    /// closed state is reported), and close-vs-timeout is pinned the same
    /// way as for sends: closed-and-drained before the deadline reports
    /// [`RecvTimeoutError::Closed`], never `Timeout`.
    pub fn recv_deadline(
        &self,
        h: &mut BoxedHandle<Q>,
        deadline: Instant,
    ) -> Result<T, RecvTimeoutError> {
        self.recv_limited(h, Wait::Deadline(deadline))
    }

    /// [`recv_deadline`](Self::recv_deadline) with a relative timeout
    /// (clock read only if the queue is actually empty long enough to
    /// park).
    pub fn recv_timeout(
        &self,
        h: &mut BoxedHandle<Q>,
        timeout: Duration,
    ) -> Result<T, RecvTimeoutError> {
        self.recv_limited(h, Wait::Timeout(timeout))
    }

    fn recv_limited(&self, h: &mut BoxedHandle<Q>, wait: Wait) -> Result<T, RecvTimeoutError> {
        let res = wait.until(&self.not_empty, || match self.try_recv(h) {
            Ok(v) => Some(Ok(v)),
            Err(TryRecvError::Closed) => {
                // Final drain check after observing the flag, as in recv.
                Some(self.try_recv(h).map_err(|_| RecvTimeoutError::Closed))
            }
            Err(TryRecvError::Empty) => None,
        });
        match res {
            Some(r) => r,
            // Timed out with the queue open as of the last attempt; the
            // close-vs-timeout pin re-checks the flag (with one more
            // drain pass) before blaming the clock.
            None => {
                if self.is_closed() {
                    self.try_recv(h).map_err(|_| RecvTimeoutError::Closed)
                } else {
                    Err(RecvTimeoutError::Timeout)
                }
            }
        }
    }

    /// [`send_all`](Self::send_all) with an absolute deadline: on timeout
    /// the unsent suffix comes back as `Timeout(suffix)`; the accepted
    /// prefix stays in the queue (conservation, as with close).
    pub fn send_all_deadline(
        &self,
        h: &mut BoxedHandle<Q>,
        items: Vec<T>,
        deadline: Instant,
    ) -> Result<(), SendTimeoutError<Vec<T>>> {
        self.send_all_limited(h, items, Wait::Deadline(deadline))
    }

    /// [`send_all_deadline`](Self::send_all_deadline) with a relative
    /// timeout (lazy deadline resolution, like
    /// [`send_timeout`](Self::send_timeout)).
    pub fn send_all_timeout(
        &self,
        h: &mut BoxedHandle<Q>,
        items: Vec<T>,
        timeout: Duration,
    ) -> Result<(), SendTimeoutError<Vec<T>>> {
        self.send_all_limited(h, items, Wait::Timeout(timeout))
    }

    fn send_all_limited(
        &self,
        h: &mut BoxedHandle<Q>,
        items: Vec<T>,
        wait: Wait,
    ) -> Result<(), SendTimeoutError<Vec<T>>> {
        // Box once, retry on the token run — same pattern as send_all.
        let tokens: Vec<u64> = items
            .into_iter()
            .map(BoxedQueue::<T, Q>::box_token)
            .collect();
        let mut sent = 0usize;
        let res = wait.until(&self.not_full, || {
            if self.is_closed() {
                let unsent = tokens[sent..]
                    .iter()
                    .map(|&t| BoxedQueue::<T, Q>::unbox_token(t))
                    .collect();
                sent = tokens.len(); // the suffix's ownership moved out
                return Some(Err(SendTimeoutError::Closed(unsent)));
            }
            let n = self.contain(|| self.inner.enqueue_tokens(h, &tokens[sent..]));
            if n > 0 {
                self.not_empty.wake_all();
            }
            sent += n;
            (sent == tokens.len()).then_some(Ok(()))
        });
        match res {
            Some(r) => r,
            None => {
                let unsent: Vec<T> = tokens[sent..]
                    .iter()
                    .map(|&t| BoxedQueue::<T, Q>::unbox_token(t))
                    .collect();
                if self.is_closed() {
                    Err(SendTimeoutError::Closed(unsent))
                } else {
                    Err(SendTimeoutError::Timeout(unsent))
                }
            }
        }
    }

    /// [`recv_many`](Self::recv_many) with an absolute deadline: `Ok` is
    /// always non-empty; `Timeout` means the deadline passed with nothing
    /// to take, `Closed` means closed and fully drained.
    pub fn recv_many_deadline(
        &self,
        h: &mut BoxedHandle<Q>,
        max: usize,
        deadline: Instant,
    ) -> Result<Vec<T>, RecvTimeoutError> {
        self.recv_many_limited(h, max, Wait::Deadline(deadline))
    }

    /// [`recv_many_deadline`](Self::recv_many_deadline) with a relative
    /// timeout.
    pub fn recv_many_timeout(
        &self,
        h: &mut BoxedHandle<Q>,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<T>, RecvTimeoutError> {
        self.recv_many_limited(h, max, Wait::Timeout(timeout))
    }

    fn recv_many_limited(
        &self,
        h: &mut BoxedHandle<Q>,
        max: usize,
        wait: Wait,
    ) -> Result<Vec<T>, RecvTimeoutError> {
        assert!(max > 0, "recv_many needs a positive batch bound");
        let mut out = Vec::new();
        let res = wait.until(&self.not_empty, || {
            if self.try_recv_many(h, max, &mut out) > 0 {
                return Some(Ok(()));
            }
            if self.is_closed() {
                // Final drain check after observing the flag.
                if self.try_recv_many(h, max, &mut out) > 0 {
                    return Some(Ok(()));
                }
                return Some(Err(RecvTimeoutError::Closed));
            }
            None
        });
        match res {
            Some(Ok(())) => Ok(out),
            Some(Err(e)) => Err(e),
            None => {
                if !out.is_empty() {
                    return Ok(out);
                }
                if self.is_closed() {
                    if self.try_recv_many(h, max, &mut out) > 0 {
                        Ok(out)
                    } else {
                        Err(RecvTimeoutError::Closed)
                    }
                } else {
                    Err(RecvTimeoutError::Timeout)
                }
            }
        }
    }

    /// Capacity of the underlying queue.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Approximate emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Observability snapshot (DESIGN.md §14): the inner queue's own
    /// counters, then the two eventcounts' waiter statistics under
    /// `not_full.` / `not_empty.` prefixes. The async façade shares the
    /// same eventcounts, so task parks show up here too. Empty with
    /// `obs` off.
    /// Data-path counts from operations on a still-live handle appear
    /// only after that handle drops, a
    /// [`flush_metrics`](BlockingQueue::flush_metrics) call, or the
    /// periodic fold (`LOCAL_FLUSH_PERIOD` operations).
    pub fn metrics(&self) -> crate::obs::MetricsSnapshot {
        let mut snap = self.inner.inner().metrics();
        self.not_full.snapshot_into("not_full.", &mut snap);
        self.not_empty.snapshot_into("not_empty.", &mut snap);
        snap
    }

    /// Fold `h`'s handle-local data-path counters into the shared block
    /// so the next [`metrics`](BlockingQueue::metrics) read is exact for
    /// this handle's operations (DESIGN.md §14.1).
    pub fn flush_metrics(&self, h: &mut BoxedHandle<Q>) {
        self.inner.flush_metrics(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalQueue;
    use crate::sharded::ShardedQueue;
    use std::sync::Arc;
    use std::time::Duration;

    fn make(c: usize, t: usize) -> BlockingQueue<u64, OptimalQueue> {
        BlockingQueue::new(OptimalQueue::with_capacity_and_threads(c, t))
    }

    #[test]
    fn try_paths_mirror_inner_queue() {
        let q = make(2, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        q.try_send(&mut h, 2).unwrap();
        assert_eq!(q.try_send(&mut h, 3), Err(TrySendError::Full(3)));
        assert_eq!(q.try_recv(&mut h), Ok(1));
        assert_eq!(q.try_recv(&mut h), Ok(2));
        assert_eq!(q.try_recv(&mut h), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_blocks_until_space() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h2 = q2.register();
            // Blocks until the main thread drains.
            q2.send(&mut h2, 2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_recv(&mut h), Ok(1));
        sender.join().unwrap();
        assert_eq!(q.recv(&mut h), Some(2));
    }

    #[test]
    fn recv_blocks_until_element() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut h = q.register();
        q.send(&mut h, 77).unwrap();
        assert_eq!(receiver.join().unwrap(), Some(77));
    }

    #[test]
    fn blocking_transfer_full_stream() {
        let q = Arc::new(make(4, 2));
        let n = 5_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=n {
                q2.send(&mut h, v).unwrap();
            }
        });
        let mut h = q.register();
        for expect in 1..=n {
            assert_eq!(q.recv(&mut h), Some(expect), "single-producer order");
        }
        producer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn batch_send_all_blocks_until_everything_fits() {
        let q = Arc::new(make(2, 2));
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            // 5 items through a 2-slot queue: must park at least once.
            q2.send_all(&mut h, (1..=5).collect()).unwrap();
        });
        let mut h = q.register();
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(q.recv_many(&mut h, 3));
        }
        sender.join().unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5], "SPSC batch order preserved");
        assert!(q.is_empty());
    }

    #[test]
    fn blocking_over_sharded_queue_composes() {
        // The Θ(1) parking layer stacks on the scale layer: a blocking
        // sharded queue with batch transfer.
        let q: Arc<BlockingQueue<u64, ShardedQueue<OptimalQueue>>> = Arc::new(BlockingQueue::new(
            ShardedQueue::<OptimalQueue>::optimal(8, 4, 2),
        ));
        let n = 2_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            let mut next = 1u64;
            while next <= n {
                let batch: Vec<u64> = (next..=(next + 7).min(n)).collect();
                next += batch.len() as u64;
                q2.send_all(&mut h, batch).unwrap();
            }
        });
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while seen.len() < n as usize {
            for v in q.recv_many(&mut h, 8) {
                assert!(seen.insert(v), "duplicate {v}");
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty(), "exact conservation through both layers");
    }

    #[test]
    fn many_parked_senders_all_wake() {
        let q = Arc::new(make(1, 4));
        let mut h = q.register();
        q.try_send(&mut h, 99).unwrap();
        let mut senders = Vec::new();
        for v in 1..=3u64 {
            let q = Arc::clone(&q);
            senders.push(std::thread::spawn(move || {
                let mut h = q.register();
                q.send(&mut h, v).unwrap();
            }));
        }
        // All three park on the full queue; drain one slot at a time.
        let mut got = vec![q.recv(&mut h).unwrap()];
        for _ in 0..3 {
            got.push(q.recv(&mut h).unwrap());
        }
        for s in senders {
            s.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 99]);
        assert!(q.is_empty());
    }

    #[test]
    fn close_fails_senders_and_drains_receivers() {
        let q = make(4, 1);
        let mut h = q.register();
        q.send(&mut h, 1).unwrap();
        q.send(&mut h, 2).unwrap();
        q.close();
        assert!(q.is_closed());
        // Senders see errors, values come back.
        assert_eq!(q.send(&mut h, 3), Err(SendError(3)));
        assert_eq!(q.try_send(&mut h, 4), Err(TrySendError::Closed(4)));
        assert_eq!(q.try_send_many(&mut h, vec![5, 6]), vec![5, 6]);
        assert_eq!(q.send_all(&mut h, vec![7, 8]), Err(SendError(vec![7, 8])));
        // Receivers drain, then observe closed.
        assert_eq!(q.recv(&mut h), Some(1));
        assert_eq!(q.recv_many(&mut h, 4), vec![2]);
        assert_eq!(q.recv(&mut h), None);
        assert_eq!(q.recv_many(&mut h, 4), Vec::<u64>::new());
        assert_eq!(q.try_recv(&mut h), Err(TryRecvError::Closed));
    }

    #[test]
    fn close_wakes_parked_receiver() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(
            receiver.join().unwrap(),
            None,
            "woken by close, not a value"
        );
    }

    #[test]
    fn close_wakes_parked_sender_with_value_back() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.send(&mut h, 2)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
        // The accepted element survives for draining.
        assert_eq!(q.recv(&mut h), Some(1));
        assert_eq!(q.recv(&mut h), None);
    }

    #[test]
    fn close_mid_send_all_returns_unsent_suffix() {
        let q = Arc::new(make(2, 2));
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            // 5 items through 2 slots: parks after the first 2.
            q2.send_all(&mut h, (1..=5).collect())
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let unsent = sender.join().unwrap().unwrap_err().0;
        let mut h = q.register();
        let mut drained = Vec::new();
        while let Some(v) = q.recv(&mut h) {
            drained.push(v);
        }
        // Conservation: accepted prefix + returned suffix = everything.
        drained.extend(unsent.iter().copied());
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn timed_send_on_full_queue_times_out_with_value_back() {
        let q = make(1, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        let start = std::time::Instant::now();
        let err = q
            .send_timeout(&mut h, 2, Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, SendTimeoutError::Timeout(2), "value handed back");
        assert!(err.is_timeout());
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(30),
            "returned {waited:?} before the timeout"
        );
        // Bounded latency: deadline + one generous scheduling quantum.
        assert!(
            waited < Duration::from_secs(5),
            "woke far too late: {waited:?}"
        );
        assert_eq!(q.not_full_event().waiter_count(), 0, "no leaked waiter");
    }

    #[test]
    fn timed_recv_on_empty_queue_times_out() {
        let q = make(4, 1);
        let mut h = q.register();
        let start = std::time::Instant::now();
        assert_eq!(
            q.recv_timeout(&mut h, Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(
            q.recv_deadline(&mut h, std::time::Instant::now()),
            Err(RecvTimeoutError::Timeout),
            "already-expired deadline returns immediately"
        );
        assert_eq!(q.not_empty_event().waiter_count(), 0);
    }

    #[test]
    fn timed_ops_succeed_without_reaching_the_deadline() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h2 = q2.register();
            q2.send_deadline(
                &mut h2,
                2,
                std::time::Instant::now() + Duration::from_secs(30),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.recv_timeout(&mut h, Duration::from_secs(30)), Ok(1));
        sender.join().unwrap().unwrap();
        assert_eq!(q.recv(&mut h), Some(2));
    }

    #[test]
    fn closed_queue_reports_closed_not_timeout() {
        // The close-vs-timeout pin, deterministic half: the queue is
        // closed (and drained) strictly before the timed call, so even a
        // zero/past deadline must blame the close, not the clock.
        let q = make(2, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        q.close();
        let past = std::time::Instant::now() - Duration::from_millis(1);
        assert_eq!(
            q.send_deadline(&mut h, 9, past),
            Err(SendTimeoutError::Closed(9)),
            "closed beats timeout for senders"
        );
        // Drain semantics survive the timed path: the accepted element
        // is delivered before Closed is reported.
        assert_eq!(q.recv_deadline(&mut h, past), Ok(1));
        assert_eq!(
            q.recv_deadline(&mut h, past),
            Err(RecvTimeoutError::Closed),
            "closed-and-drained beats timeout for receivers"
        );
        assert_eq!(
            q.recv_many_timeout(&mut h, 4, Duration::ZERO),
            Err(RecvTimeoutError::Closed)
        );
        assert_eq!(
            q.send_all_timeout(&mut h, vec![7, 8], Duration::ZERO),
            Err(SendTimeoutError::Closed(vec![7, 8]))
        );
    }

    #[test]
    fn close_racing_a_parked_timed_receiver_reports_closed() {
        // The racing half: a receiver parked under a long deadline is
        // woken by close() and must report Closed promptly — not sleep
        // out its deadline, and never report Timeout.
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv_deadline(&mut h, std::time::Instant::now() + Duration::from_secs(60))
        });
        while q.not_empty_event().waiter_count() == 0 {
            std::thread::yield_now();
        }
        let start = std::time::Instant::now();
        q.close();
        assert_eq!(receiver.join().unwrap(), Err(RecvTimeoutError::Closed));
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "woken by close, not the deadline"
        );
    }

    #[test]
    fn timed_batch_send_returns_unsent_suffix_on_timeout() {
        let q = make(2, 1);
        let mut h = q.register();
        let err = q
            .send_all_timeout(&mut h, vec![1, 2, 3, 4, 5], Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(
            err,
            SendTimeoutError::Timeout(vec![3, 4, 5]),
            "accepted prefix stays queued, suffix comes back"
        );
        // Conservation: prefix + suffix = everything.
        assert_eq!(
            q.recv_many_timeout(&mut h, 8, Duration::ZERO),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn timed_batch_recv_takes_what_arrives() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let mut h = q2.register();
            q2.send(&mut h, 42).unwrap();
        });
        let mut h = q.register();
        assert_eq!(
            q.recv_many_deadline(
                &mut h,
                4,
                std::time::Instant::now() + Duration::from_secs(30)
            ),
            Ok(vec![42])
        );
        producer.join().unwrap();
        assert_eq!(
            q.recv_many_timeout(&mut h, 4, Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    /// A pointer-capable queue with an injectable panic, for exercising
    /// the poisoning path. Sequential ring under a mutex — correctness,
    /// not scalability, is the point here.
    struct PanicSwitchQueue {
        inner: std::sync::Mutex<crate::queue::SeqRingQueue>,
        panic_next: std::sync::atomic::AtomicBool,
    }

    impl PanicSwitchQueue {
        fn new(c: usize) -> Self {
            PanicSwitchQueue {
                inner: std::sync::Mutex::new(crate::queue::SeqRingQueue::with_capacity(c)),
                panic_next: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    impl crate::queue::ConcurrentQueue for PanicSwitchQueue {
        type Handle = ();
        fn register(&self) {}
        fn enqueue(&self, _h: &mut (), v: u64) -> Result<(), crate::queue::Full> {
            if self.panic_next.swap(false, Ordering::SeqCst) {
                panic!("injected fault: enqueue died mid-operation");
            }
            self.inner.lock().unwrap().enqueue(v)
        }
        fn dequeue(&self, _h: &mut ()) -> Option<u64> {
            if self.panic_next.swap(false, Ordering::SeqCst) {
                panic!("injected fault: dequeue died mid-operation");
            }
            self.inner.lock().unwrap().dequeue()
        }
        fn capacity(&self) -> usize {
            self.inner.lock().unwrap().capacity()
        }
        fn max_token(&self) -> u64 {
            (1 << 62) - 1
        }
        fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }

    impl crate::boxed::PointerCapable for PanicSwitchQueue {
        fn drop_handle(&self) {}
    }

    #[test]
    fn panic_mid_operation_poisons_and_closes_the_queue() {
        let q: BlockingQueue<u64, PanicSwitchQueue> = BlockingQueue::new(PanicSwitchQueue::new(4));
        let mut h = q.register();
        q.send(&mut h, 1).unwrap();
        assert!(!q.is_poisoned());
        q.inner_queue().panic_next.store(true, Ordering::SeqCst);
        // The panic propagates to the faulting caller...
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = q.try_send(&mut h, 2);
        }));
        assert!(unwound.is_err(), "the injected panic is re-thrown");
        // ...and every other caller sees a poisoned, closed queue with
        // typed errors instead of a hang or a secondary panic.
        assert!(q.is_poisoned());
        assert!(q.is_closed());
        assert_eq!(q.try_send(&mut h, 3), Err(TrySendError::Closed(3)));
        assert_eq!(q.send(&mut h, 4), Err(SendError(4)));
        assert_eq!(
            q.send_timeout(&mut h, 5, Duration::ZERO),
            Err(SendTimeoutError::Closed(5))
        );
        // Accepted elements still drain (the fault hit before any state
        // transition of the inner ring).
        assert_eq!(q.recv(&mut h), Some(1));
        assert_eq!(q.recv(&mut h), None);
    }

    /// DESIGN.md §14: the façade snapshot stitches the data path's
    /// counters to the waiting stack's, with nothing fabricated when
    /// `obs` is off.
    #[test]
    fn facade_metrics_cover_data_path_and_waiting_stack() {
        let q = make(2, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        q.try_send(&mut h, 2).unwrap();
        assert_eq!(q.try_send(&mut h, 3), Err(TrySendError::Full(3)));
        assert_eq!(
            q.recv_timeout(&mut h, Duration::from_millis(5)).ok(),
            Some(1)
        );
        assert_eq!(
            q.recv_many_timeout(&mut h, 4, Duration::from_millis(5)),
            Ok(vec![2])
        );
        assert_eq!(
            q.recv_timeout(&mut h, Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // The handle is still live: fold its data-path deltas in first
        // (the §14.1 visibility contract this test also documents).
        q.flush_metrics(&mut h);
        let snap = q.metrics();
        if cfg!(feature = "obs") {
            assert_eq!(snap.get("enq_success"), Some(2));
            assert_eq!(snap.get("enq_full"), Some(1));
            assert!(
                snap.get("not_empty.timeout_expiries").unwrap() >= 1,
                "the timed-out recv parked on not_empty: {snap}"
            );
            assert_eq!(snap.get("not_full.timeout_expiries"), Some(0));
        } else {
            assert!(snap.is_empty(), "obs off: no fabricated zeros");
        }
    }

    #[test]
    fn waiter_accounting_rises_and_returns_to_zero() {
        // The façade's waiting state is exactly the two eventcounts (the
        // waiter subsystem the async façade also reads): a parked
        // receiver must become visible through the shared
        // instrumentation and disappear from it after the hand-off.
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        // The receiver announces itself before parking; wait for that.
        while q.not_empty_event().waiter_count() == 0 {
            std::thread::yield_now();
        }
        let mut h = q.register();
        q.send(&mut h, 9).unwrap();
        assert_eq!(receiver.join().unwrap(), Some(9));
        assert_eq!(q.not_empty_event().waiter_count(), 0, "waiter released");
        assert_eq!(q.not_empty_event().registered_wakers(), 0);
        assert_eq!(q.not_full_event().waiter_count(), 0);
    }
}
