//! **Listing 5 / Appendix A** — the memory-optimal bounded queue with Θ(T)
//! overhead, matching the paper's lower bound.
//!
//! ## Structure
//!
//! * `a` — the `C` value-locations (plain values, `0 = ⊥`).
//! * `enqueues` / `dequeues` — the positioning counters.
//! * `ops` — the **announcement array** of `T` slots holding references to
//!   in-progress `EnqOp` descriptors.
//! * `active_op` — the serialization point through which descriptor
//!   verdicts are decided one at a time (with helping).
//! * a pool of **2·T reusable `EnqOp` descriptors** (the Arbel-Raviv/Brown
//!   reuse technique the paper cites): at most `T` descriptors are parked
//!   in `ops` plus at most one claimed per thread.
//!
//! Total overhead: `T` announcement slots + `2T` descriptors + counters +
//! one word — **Θ(T)**, independent of the capacity `C`.
//!
//! ## How it dodges ABA with no per-slot metadata
//!
//! An enqueue never CASes a value-location directly. It *announces* a
//! descriptor binding `(e = enqueues, i = e % C, x)`; the descriptor becomes
//! `successful` only if, under the `active_op` serialization, no other
//! successful descriptor covers cell `i` and the `enqueues` counter still
//! equals `e`. The covering thread alone writes `a[i]` (in `complete_op`),
//! so a delayed thread can never deposit a stale value: its descriptor's
//! counter check fails instead. Dequeues read through the announcement
//! array (`read_elem`) so they see elements that are still "in flight".
//!
//! ## Deviation from the paper's pseudo-code (documented in DESIGN.md §7)
//!
//! Listing 5 lets a *failed* enqueue attempt unconditionally help
//! `CAS(&enqueues, e, e+1)`. There is an interleaving — the covering thread
//! clears a previous-round descriptor between a rival's `findOp` and its
//! replacement CAS — in which that helping CAS advances the counter although
//! **no** successful descriptor for position `e` exists, breaking the
//! bijection of Lemma A.2 (a dequeue could then observe the previous round's
//! value again). We therefore let a failed attempt help the counter only
//! when it has *evidence*: it observed a successful descriptor with
//! `op.e ≥ e`. Successful attempts and `complete_op` help unconditionally,
//! exactly as in the paper, and every enqueue stuck at counter value `e`
//! necessarily targets cell `e % C` and finds the blocking descriptor there,
//! so lock-freedom (Appendix A.1) is preserved. A regression test for the
//! problematic interleaving lives in the `bq-sim` adversary suite.

use std::sync::atomic::Ordering;

use crate::obs::{LocalQueueCounters, MetricsSnapshot, SharedQueueCounters};
use crate::queue::{ConcurrentQueue, Full};
use crate::relocatable::{AnnounceBoard, RelocBuf, RelocEnqOp};
use crate::simx::{SimAtomicU64, SimAtomicUsize};
use crate::token::{is_token, MAX_TOKEN, NULL};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// Verdict states, packed as `(seq << 2) | state`.
const ST_UNDECIDED: u64 = 0;
const ST_SUCCESS: u64 = 1;
const ST_FAILURE: u64 = 2;

#[inline]
fn pack_ref(index: usize, seq: u64) -> u64 {
    debug_assert!(seq % 2 == 1, "published incarnations are odd");
    ((index as u64) << SEQ_BITS) | (seq & SEQ_MASK)
}

#[inline]
fn unpack_index(p: u64) -> usize {
    (p >> SEQ_BITS) as usize
}

#[inline]
fn unpack_seq(p: u64) -> u64 {
    p & SEQ_MASK
}

/// A validated snapshot of one descriptor incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpView {
    packed: u64,
    index: usize,
    seq: u64,
    e: u64,
    x: u64,
    i: usize,
}

/// Outcome of one `apply` attempt (see module docs for why failures are
/// split by whether helping the counter is safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The operation took effect at position `e`.
    Success { retained_in_ops: bool },
    /// Failed, but a successful descriptor with `op.e ≥ e` was observed —
    /// helping `CAS(enqueues, e, e+1)` is safe.
    FailHelp,
    /// Failed with no such evidence — do not touch the counter.
    FailNoHelp,
}

/// The memory-optimal bounded queue (paper Listing 5 / Appendix A).
///
/// ```
/// use bq_core::{ConcurrentQueue, OptimalQueue};
/// use bq_memtrack::MemoryFootprint;
///
/// let q = OptimalQueue::with_capacity_and_threads(128, 4);
/// let mut h = q.register();
/// q.enqueue(&mut h, 7).unwrap();
/// assert_eq!(q.dequeue(&mut h), Some(7));
///
/// // The headline property: overhead is independent of the capacity.
/// let big = OptimalQueue::with_capacity_and_threads(128 * 1024, 4);
/// assert_eq!(q.overhead_bytes(), big.overhead_bytes());
/// ```
pub struct OptimalQueue {
    /// The `C` value-locations.
    a: Box<[SimAtomicU64]>,
    enqueues: SimAtomicU64,
    dequeues: SimAtomicU64,
    /// The announcement machinery — the `T`-slot announcement array of
    /// packed descriptor refs (0 = ⊥) plus the pool of `2T` reusable
    /// [`RelocEnqOp`] descriptors — lives in a relocatable
    /// [`AnnounceBoard`] layout inside `board_buf` (DESIGN.md §10):
    /// descriptor references were already position-independent packed
    /// `(index, seq)` words, so the board relocates wholesale.
    board: AnnounceBoard,
    /// Owns the bytes `board` views.
    _board_buf: RelocBuf,
    /// Serialization point for verdicts (packed ref or 0 = ⊥).
    active_op: SimAtomicU64,
    next_tid: SimAtomicUsize,
    /// Observability counter block (DESIGN.md §14). A ZST with `obs`
    /// off; plain `std` relaxed atomics with it on, so the counters are
    /// never explorer scheduling points and never synchronize anything.
    /// Per-operation counts accumulate in the *handle* (plain `u64`s)
    /// and fold in here on handle drop / flush — this shared block is
    /// off the hot path entirely.
    obs: SharedQueueCounters,
}

// SAFETY: the board's atomics carry all cross-thread communication (the
// same SeqCst protocol as before the relocatable port); the raw pointers
// inside the `AnnounceBoard` view target memory owned by `self.board_buf`.
unsafe impl Send for OptimalQueue {}
unsafe impl Sync for OptimalQueue {}

/// Per-thread handle: the thread id into the announcement machinery,
/// plus the handle-local observability accumulator (DESIGN.md §14.1 —
/// a ZST with `obs` off).
#[derive(Debug)]
pub struct OptimalHandle {
    #[allow(dead_code)]
    tid: usize,
    obs: LocalQueueCounters,
}

impl OptimalHandle {
    /// Handle on tid 0 without consuming a registration slot. Only sound
    /// under exclusive access (used by `BoxedQueue::drop`). Its counter
    /// accumulator is detached — drain statistics during teardown are
    /// not part of the queue's operational story.
    pub(crate) fn exclusive() -> Self {
        OptimalHandle {
            tid: 0,
            obs: SharedQueueCounters::new().local(),
        }
    }
}

impl OptimalQueue {
    /// Create a queue of capacity `c` serving up to `max_threads` threads.
    pub fn with_capacity_and_threads(c: usize, max_threads: usize) -> Self {
        assert!(c > 0, "capacity must be positive");
        assert!(
            max_threads > 0 && max_threads < (1 << 15),
            "thread bound must be in 1..2^15"
        );
        let board_buf = RelocBuf::zeroed(AnnounceBoard::layout(max_threads));
        // SAFETY: `board_buf` was allocated with exactly
        // `AnnounceBoard::layout(max_threads)` and is exclusively owned.
        let board = unsafe { AnnounceBoard::init_at(board_buf.base(), max_threads) };
        OptimalQueue {
            a: (0..c).map(|_| SimAtomicU64::new(NULL)).collect(),
            enqueues: SimAtomicU64::new(0),
            dequeues: SimAtomicU64::new(0),
            board,
            _board_buf: board_buf,
            active_op: SimAtomicU64::new(0),
            next_tid: SimAtomicUsize::new(0),
            obs: SharedQueueCounters::new(),
        }
    }

    /// The thread bound `T`.
    pub fn max_threads(&self) -> usize {
        self.board.threads()
    }

    /// The descriptor a validated view points at.
    fn desc(&self, view: OpView) -> &RelocEnqOp {
        self.board.desc(view.index).expect("pooled index")
    }

    // ---- descriptor pool -------------------------------------------------

    /// Claim a free descriptor and publish incarnation fields for
    /// `(e, x, i)`. Always succeeds: at most `T` descriptors are parked in
    /// `ops` and at most one is claimed per other thread, so a pool of `2T`
    /// always has a free entry for the claimant.
    fn claim_desc(&self, e: u64, x: u64, i: usize) -> OpView {
        loop {
            for (index, d) in self.board.descs().enumerate() {
                let s = d.seq.load(Ordering::SeqCst);
                if s % 2 != 0 {
                    continue; // in use
                }
                if d.seq
                    .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    continue;
                }
                let seq = s + 1;
                d.e.store(e, Ordering::SeqCst);
                d.x.store(x, Ordering::SeqCst);
                d.i.store(i as u64, Ordering::SeqCst);
                d.status.store((seq << 2) | ST_UNDECIDED, Ordering::SeqCst);
                return OpView {
                    packed: pack_ref(index, seq),
                    index,
                    seq,
                    e,
                    x,
                    i,
                };
            }
        }
    }

    /// Return a descriptor to the pool. The caller must be the unique
    /// remover (see the freeing discipline in the module docs).
    fn free_desc(&self, view: OpView) {
        let d = self.board.desc(view.index).expect("pooled index");
        let ok = d
            .seq
            .compare_exchange(view.seq, view.seq + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        debug_assert!(ok, "double free of descriptor {}", view.index);
    }

    /// Reconstruct a validated view from a packed reference. `None` means
    /// the incarnation ended (the descriptor was freed, possibly reused).
    fn view_packed(&self, packed: u64) -> Option<OpView> {
        if packed == 0 {
            return None;
        }
        let index = unpack_index(packed);
        let seq = unpack_seq(packed);
        let d = self.board.desc(index)?;
        let e = d.e.load(Ordering::SeqCst);
        let x = d.x.load(Ordering::SeqCst);
        let i = d.i.load(Ordering::SeqCst) as usize;
        if d.seq.load(Ordering::SeqCst) != seq {
            return None;
        }
        Some(OpView {
            packed,
            index,
            seq,
            e,
            x,
            i,
        })
    }

    /// Current verdict of an incarnation: `None` = undecided,
    /// `Some(true/false)` = success/failure. `Some(false)` is also
    /// returned for ended incarnations — which makes this **unsafe to act
    /// on wherever the descriptor may have been freed concurrently**: a
    /// replaced-and-freed descriptor was necessarily *successful*, the
    /// opposite of what this returns (the race of DESIGN.md §7.1).
    /// `read_op`/`put_op`/`complete_op` therefore read `status` directly
    /// and handle the ended case explicitly; this helper remains only for
    /// debug assertions on descriptors the caller provably still owns.
    fn verdict(&self, view: OpView) -> Option<bool> {
        let st = self.desc(view).status.load(Ordering::SeqCst);
        if st >> 2 != view.seq {
            return Some(false);
        }
        match st & 0b11 {
            ST_SUCCESS => Some(true),
            ST_FAILURE => Some(false),
            _ => None,
        }
    }

    /// CAS the verdict from undecided (idempotent across helpers; stale
    /// helpers fail because the sequence is embedded).
    fn decide(&self, view: OpView, success: bool) {
        let d = self.desc(view);
        let from = (view.seq << 2) | ST_UNDECIDED;
        let to = (view.seq << 2) | if success { ST_SUCCESS } else { ST_FAILURE };
        let _ = d
            .status
            .compare_exchange(from, to, Ordering::SeqCst, Ordering::SeqCst);
    }

    // ---- announcement array ----------------------------------------------

    /// The paper's `readOp` (lines 103–106): the descriptor at `ops[slot]`
    /// if it is successful, else `None`.
    fn read_op(&self, slot: usize) -> Option<OpView> {
        loop {
            let p = self.board.op(slot).load(Ordering::SeqCst);
            if p == 0 {
                return None;
            }
            let Some(view) = self.view_packed(p) else {
                // The incarnation ended between our two loads; the slot
                // content must have changed — re-read it.
                continue;
            };
            let st = self.desc(view).status.load(Ordering::SeqCst);
            if st >> 2 != view.seq {
                // The incarnation ended between validation and the status
                // read. A parked descriptor is freed only after being
                // removed from the slot, so the slot has changed — re-read
                // it rather than reporting "no cover" and letting a caller
                // miss the replacement that is already installed.
                continue;
            }
            return if st & 0b11 == ST_SUCCESS {
                Some(view)
            } else {
                None
            };
        }
    }

    /// The paper's `findOp` (lines 110–115): a successful operation
    /// covering cell `i`, with its slot.
    fn find_op(&self, i: usize) -> Option<(OpView, usize)> {
        for slot in 0..self.board.threads() {
            if let Some(view) = self.read_op(slot) {
                if view.i == i {
                    return Some((view, slot));
                }
            }
        }
        None
    }

    /// The paper's `EnqOp.tryPut` (lines 12–21): decide the verdict of
    /// `view`, which must be the current `active_op`. Run by the owner and
    /// by helpers.
    fn try_put(&self, view: OpView) {
        // Is there an operation which already covers cell `i`?
        if let Some((other, _)) = self.find_op(view.i) {
            if other.packed != view.packed {
                self.decide(view, false);
            }
        }
        // Has `enqueues` been changed?
        let e_valid = self.enqueues.load(Ordering::SeqCst) == view.e;
        self.decide(view, e_valid);
    }

    /// The paper's `startPutOp` (lines 60–65): acquire the `active_op`
    /// serialization point, helping whoever holds it.
    fn start_put_op(&self, view: OpView) {
        loop {
            let cur = self.active_op.load(Ordering::SeqCst);
            if cur != 0 {
                if let Some(cur_view) = self.view_packed(cur) {
                    // Helping another thread's announced descriptor.
                    self.obs.helps.hit();
                    self.try_put(cur_view);
                }
                let _ = self
                    .active_op
                    .compare_exchange(cur, 0, Ordering::SeqCst, Ordering::SeqCst);
            } else if self
                .active_op
                .compare_exchange(0, view.packed, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// The paper's `putOp` (lines 45–58): occupy an empty announcement slot
    /// with `view`, decide its verdict under `active_op`, and return the
    /// slot on success (`None` on failure, with the slot cleaned).
    fn put_op(&self, view: OpView) -> Option<usize> {
        let t = self.board.threads();
        let mut j = 0usize;
        loop {
            let slot = j % t;
            j += 1;
            if self
                .board
                .op(slot)
                .compare_exchange(0, view.packed, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // occupied
            }
            self.start_put_op(view);
            self.try_put(view); // logical addition
                                // Finished; free `active_op` for the next descriptor.
            let _ =
                self.active_op
                    .compare_exchange(view.packed, 0, Ordering::SeqCst, Ordering::SeqCst);
            // Read the verdict. `try_put` always decides before returning,
            // so the only states are FAILURE, SUCCESS, or "incarnation
            // ended". The last one means a *replacer* already removed and
            // freed our descriptor — and replacers only ever remove
            // successful descriptors (`read_op` filters on the verdict) —
            // so an ended incarnation proves the operation took effect and
            // the announcement chain in `slot` is ours to complete. (The
            // window is real: helpers can decide us successful and the
            // queue can wrap all the way back to our cell while we are
            // preempted right here.)
            let st = self.desc(view).status.load(Ordering::SeqCst);
            if st >> 2 == view.seq && st & 0b11 == ST_FAILURE {
                // Clean the slot. Unsuccessful descriptors are never
                // replaced or completed by others, so this CAS is ours to
                // win.
                let cleaned = self
                    .board
                    .op(slot)
                    .compare_exchange(view.packed, 0, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
                debug_assert!(cleaned, "foreign clear of an unsuccessful descriptor");
                return None;
            }
            debug_assert!(
                st >> 2 != view.seq || st & 0b11 == ST_SUCCESS,
                "try_put returned with an undecided verdict"
            );
            return Some(slot);
        }
    }

    /// The paper's `completeOp` (lines 69–73). Only the thread that covered
    /// the cell runs this; it keeps completing replacement descriptors
    /// until its clearing CAS wins, then releases the cell.
    fn complete_op(&self, slot: usize) {
        loop {
            let p = self.board.op(slot).load(Ordering::SeqCst);
            if p == 0 {
                // Unreachable in a correct run: our clearing CAS below is
                // the only legitimate way a covered slot empties.
                debug_assert!(false, "covered slot emptied by someone else");
                return;
            }
            let Some(view) = self.view_packed(p) else {
                // A replacer removed and freed the descriptor between our
                // two loads; the slot already holds its successor — re-read.
                continue;
            };
            // Every descriptor reachable here is successful: ours was
            // decided before `complete_op`, and replacements are pre-marked
            // successful before installation.
            self.a[view.i].store(view.x, Ordering::SeqCst);
            let _ = self.enqueues.compare_exchange(
                view.e,
                view.e + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            if self
                .board
                .op(slot)
                .compare_exchange(view.packed, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // We removed it from `ops`; we free it.
                self.free_desc(view);
                return;
            }
            // A next-round enqueue replaced the descriptor; complete it too.
        }
    }

    /// The paper's `apply` (lines 76–92).
    fn apply(&self, view: OpView) -> Outcome {
        match self.find_op(view.i) {
            None => {
                // Try to cover the cell ourselves.
                match self.put_op(view) {
                    Some(slot) => {
                        self.complete_op(slot);
                        Outcome::Success {
                            retained_in_ops: false,
                        }
                    }
                    None => {
                        // tryPut failed: either the counter moved or a
                        // concurrent descriptor covers the cell. Helping is
                        // safe only with observed evidence (module docs).
                        match self.find_op(view.i) {
                            Some((c2, _)) if c2.e >= view.e => Outcome::FailHelp,
                            _ => Outcome::FailNoHelp,
                        }
                    }
                }
            }
            Some((cur, slot)) => {
                if cur.e >= view.e {
                    // A descriptor for this or a later round already exists;
                    // our position is taken (or stale). Helping is safe.
                    return Outcome::FailHelp;
                }
                // `cur` is a previous-round operation whose element was
                // already extracted; replace it with ours, pre-marked
                // successful (paper lines 89–92).
                self.decide(view, true);
                debug_assert_eq!(self.verdict(view), Some(true));
                if self
                    .board
                    .op(slot)
                    .compare_exchange(cur.packed, view.packed, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // We removed `cur` from `ops`; we free it. The covering
                    // thread will complete *our* descriptor.
                    self.free_desc(cur);
                    return Outcome::Success {
                        retained_in_ops: true,
                    };
                }
                // The replacement failed: the covering thread completed and
                // cleared `cur`, or another replacement won.
                match self.find_op(view.i) {
                    Some((c2, _)) if c2.e >= view.e => Outcome::FailHelp,
                    _ => Outcome::FailNoHelp,
                }
            }
        }
    }

    /// The paper's `readElem` (lines 96–99): look through the announcement
    /// array for an in-flight element destined for cell `i`; fall back to
    /// the array.
    fn read_elem(&self, i: usize) -> u64 {
        if let Some((view, _)) = self.find_op(i) {
            return view.x;
        }
        self.a[i].load(Ordering::SeqCst)
    }
}

impl ConcurrentQueue for OptimalQueue {
    type Handle = OptimalHandle;

    fn register(&self) -> OptimalHandle {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        assert!(
            tid < self.board.threads(),
            "more threads registered than the queue was sized for (T = {})",
            self.board.threads()
        );
        OptimalHandle {
            tid,
            obs: self.obs.local(),
        }
    }

    fn enqueue(&self, h: &mut OptimalHandle, x: u64) -> Result<(), Full> {
        assert!(
            is_token(x),
            "optimal queue tokens are non-zero 63-bit words"
        );
        let c = self.a.len() as u64;
        h.obs.enq_attempt();
        loop {
            // Read the counters snapshot (paper lines 36–37).
            let e = self.enqueues.load(Ordering::SeqCst);
            let d = self.dequeues.load(Ordering::SeqCst);
            if e != self.enqueues.load(Ordering::SeqCst) {
                h.obs.enq_retry();
                continue;
            }
            // Is the queue full?
            if e == d + c {
                h.obs.enq_full();
                return Err(Full(x));
            }
            // Announce and try to apply (paper line 39).
            let view = self.claim_desc(e, x, (e % c) as usize);
            match self.apply(view) {
                Outcome::Success { retained_in_ops: _ } => {
                    // Increment the counter (paper line 40). The descriptor
                    // is either already freed (complete_op path) or parked
                    // in `ops` to be freed by its remover — never by us.
                    let _ = self.enqueues.compare_exchange(
                        e,
                        e + 1,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    h.obs.enq_success((e + 1).saturating_sub(d));
                    return Ok(());
                }
                Outcome::FailHelp => {
                    let _ = self.enqueues.compare_exchange(
                        e,
                        e + 1,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    self.free_desc(view);
                    h.obs.enq_retry();
                }
                Outcome::FailNoHelp => {
                    self.free_desc(view);
                    h.obs.enq_retry();
                }
            }
        }
    }

    fn dequeue(&self, h: &mut OptimalHandle) -> Option<u64> {
        let c = self.a.len() as u64;
        h.obs.deq_attempt();
        loop {
            // Counters + element snapshot (paper lines 29–31).
            let d = self.dequeues.load(Ordering::SeqCst);
            let e = self.enqueues.load(Ordering::SeqCst);
            let x = self.read_elem((d % c) as usize);
            if d != self.dequeues.load(Ordering::SeqCst) {
                h.obs.deq_retry();
                continue;
            }
            // Is the queue empty?
            if e == d {
                h.obs.deq_empty();
                return None;
            }
            debug_assert_ne!(x, NULL, "non-empty position must hold an element");
            if self
                .dequeues
                .compare_exchange(d, d + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                h.obs.deq_success();
                return Some(x);
            }
            h.obs.deq_retry();
        }
    }

    fn capacity(&self) -> usize {
        self.a.len()
    }

    fn max_token(&self) -> u64 {
        MAX_TOKEN
    }

    fn len(&self) -> usize {
        let e = self.enqueues.load(Ordering::SeqCst);
        let d = self.dequeues.load(Ordering::SeqCst);
        e.saturating_sub(d) as usize
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        self.obs.snapshot_into("", &mut snap);
        snap
    }

    fn flush_metrics(&self, h: &mut OptimalHandle) {
        h.obs.flush();
    }
}

impl MemoryFootprint for OptimalQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let t = self.board.threads();
        FootprintBreakdown::with_elements(self.a.len() * 8)
            .add(
                format!("ops announcement array ({t} slots)"),
                t * 8,
                OverheadClass::Announcement,
            )
            .add(
                format!("2T = {} EnqOp descriptors", 2 * t),
                self.board.pool_len() * std::mem::size_of::<RelocEnqOp>(),
                OverheadClass::Descriptors,
            )
            .add("enqueues + dequeues counters", 16, OverheadClass::Counters)
            .add("active_op word", 8, OverheadClass::Announcement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = OptimalQueue::with_capacity_and_threads(4, 2);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn sequential_wraparound_many_rounds() {
        let q = OptimalQueue::with_capacity_and_threads(3, 2);
        let mut h = q.register();
        for round in 0..500u64 {
            for i in 0..3 {
                q.enqueue(&mut h, 1 + round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.dequeue(&mut h), Some(1 + round * 3 + i));
            }
        }
    }

    #[test]
    fn repeated_values_allowed() {
        let q = OptimalQueue::with_capacity_and_threads(2, 2);
        let mut h = q.register();
        for _ in 0..500 {
            q.enqueue(&mut h, 9).unwrap();
            q.enqueue(&mut h, 9).unwrap();
            assert_eq!(q.dequeue(&mut h), Some(9));
            assert_eq!(q.dequeue(&mut h), Some(9));
        }
    }

    #[test]
    fn interleaved_partial_rounds() {
        let q = OptimalQueue::with_capacity_and_threads(4, 2);
        let mut h = q.register();
        q.enqueue(&mut h, 1).unwrap();
        q.enqueue(&mut h, 2).unwrap();
        assert_eq!(q.dequeue(&mut h), Some(1));
        q.enqueue(&mut h, 3).unwrap();
        q.enqueue(&mut h, 4).unwrap();
        q.enqueue(&mut h, 5).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.enqueue(&mut h, 6), Err(Full(6)));
        for v in 2..=5 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn overhead_linear_in_t_constant_in_c() {
        let ovh =
            |c: usize, t: usize| OptimalQueue::with_capacity_and_threads(c, t).overhead_bytes();
        assert_eq!(ovh(64, 4), ovh(1 << 16, 4), "overhead independent of C");
        let t1 = ovh(64, 1);
        let t4 = ovh(64, 4);
        let t16 = ovh(64, 16);
        assert_eq!((t4 - t1) / 3, (t16 - t4) / 12, "uniform per-thread cost");
    }

    #[test]
    fn descriptor_pool_is_2t() {
        let q = OptimalQueue::with_capacity_and_threads(8, 5);
        assert_eq!(q.board.pool_len(), 10);
        assert_eq!(q.board.threads(), 5);
    }

    #[test]
    fn pool_exhaustion_never_happens_sequentially() {
        // A single thread cycling through many operations must keep reusing
        // the same descriptors (no leak: the number of claimed descriptors
        // returns to zero after each op).
        let q = OptimalQueue::with_capacity_and_threads(4, 3);
        let mut h = q.register();
        for v in 1..=10_000u64 {
            q.enqueue(&mut h, v).unwrap();
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        let claimed = q
            .board
            .descs()
            .filter(|d| d.seq.load(Ordering::SeqCst) % 2 == 1)
            .count();
        assert_eq!(claimed, 0, "all descriptors returned to the pool");
    }

    #[test]
    fn concurrent_repeated_values_conserved() {
        let q = Arc::new(OptimalQueue::with_capacity_and_threads(4, 4));
        let per = 2_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for _ in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for _ in 0..per {
                    while q.enqueue(&mut h, 7).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut got = 0u64;
        while got < total {
            match q.dequeue(&mut h) {
                Some(v) => {
                    assert_eq!(v, 7);
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert_eq!(q.dequeue(&mut h), None, "exact conservation");
    }

    #[test]
    fn concurrent_distinct_values_conserved_and_ordered() {
        let q = Arc::new(OptimalQueue::with_capacity_and_threads(8, 4));
        let per = 1_500u64;
        let producers = 3u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        let mut last_per_producer = vec![0u64; producers as usize];
        while (seen.len() as u64) < total {
            match q.dequeue(&mut h) {
                Some(v) => {
                    assert!(seen.insert(v), "duplicate {v}");
                    let p = ((v - 1) / per) as usize;
                    assert!(
                        v > last_per_producer[p],
                        "per-producer FIFO violated: {v} after {}",
                        last_per_producer[p]
                    );
                    last_per_producer[p] = v;
                }
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        for v in 1..=total {
            assert!(seen.contains(&v), "missing {v}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn packing_roundtrip() {
        for &(idx, seq) in &[(0usize, 1u64), (3, 7), (1000, 12345)] {
            let p = pack_ref(idx, seq);
            assert_ne!(p, 0);
            assert_eq!(unpack_index(p), idx);
            assert_eq!(unpack_seq(p), seq);
        }
    }
}
