//! # bq-baselines — related-work comparators (paper §4)
//!
//! The paper positions its bounds against the standard ways practitioners
//! build lock-free bounded queues. This crate implements those baselines
//! over the same [`bq_core::ConcurrentQueue`] token interface so that the
//! overhead table (experiment E9) and the throughput benches (E10) compare
//! like for like:
//!
//! | Type | Lineage | Overhead |
//! |------|---------|----------|
//! | [`MsQueue`] | Michael & Scott 1996 | Θ(n): one linked node per element |
//! | [`VyukovQueue`] | Vyukov's bounded MPMC | Θ(C): a sequence word per slot |
//! | [`ScqStyleQueue`] | Nikolaev's SCQ (DISC'19), structural model | Θ(C): a 2C index ring over C data slots |
//! | [`TwoNullQueue`] | Tsigas & Zhang 2001, two-null model | Θ(1), **unsound** after a two-round stall |
//! | [`MutexRingQueue`] | coarse-grained lock | Θ(1) + lock, blocking |
//! | [`CrossbeamArrayQueue`] | `crossbeam_queue::ArrayQueue` | Θ(C), industrial reference |
//!
//! Structural simplifications versus the original publications (faithful in
//! *memory shape*, the paper's metric, not in every fast-path detail) are
//! documented on each type and in DESIGN.md §3.

#![deny(missing_docs)]

pub mod cb;
pub mod ms;
pub mod mutex_ring;
pub mod scq;
pub mod two_null;
pub mod vyukov;

pub use cb::CrossbeamArrayQueue;
pub use ms::MsQueue;
pub use mutex_ring::MutexRingQueue;
pub use scq::ScqStyleQueue;
pub use two_null::TwoNullQueue;
pub use vyukov::VyukovQueue;
