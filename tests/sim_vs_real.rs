//! Cross-validation: the simulator ports in `bq-sim` and the real
//! implementations in `bq-core` are *the same algorithms*; an identical
//! sequential operation script must produce identical results on both.
//!
//! This ties the adversary experiments (run against the sim ports) to the
//! shipped library: a divergence here would mean the executions the
//! lower-bound experiment certifies are about a different algorithm than
//! the one users run.

use membq::bench_registry::QueueKind;
use membq::sim::algos::{dcss, distinct, naive, Flavor};
use membq::sim::{Op, Ret, Sim, SimMemory};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    Enq,
    Deq,
}

fn script() -> impl Strategy<Value = Vec<ScriptOp>> {
    prop::collection::vec(
        prop_oneof![Just(ScriptOp::Enq), Just(ScriptOp::Deq)],
        1..120,
    )
}

fn run_pair(flavor: Flavor, kind: QueueKind, cap: usize, ops: &[ScriptOp]) {
    let mut mem = SimMemory::new();
    let sq = match flavor {
        Flavor::Naive => naive(cap, &mut mem),
        Flavor::Distinct => distinct(cap, &mut mem),
        Flavor::Dcss => dcss(cap, &mut mem),
        Flavor::TwoNull => unreachable!("not paired here"),
    };
    let mut sim = Sim::new(sq, mem, 1);
    let real = kind.build(cap, 1);

    let mut next = 1u64;
    for (i, op) in ops.iter().enumerate() {
        match op {
            ScriptOp::Enq => {
                let v = next;
                next += 1;
                let sim_ret = sim.run_op(0, Op::Enqueue(v), 10_000);
                let real_ok = real.enqueue(0, v);
                assert_eq!(
                    matches!(sim_ret, Ret::EnqOk),
                    real_ok,
                    "{kind:?} step {i}: enqueue outcome diverged"
                );
            }
            ScriptOp::Deq => {
                let sim_ret = sim.run_op(0, Op::Dequeue, 10_000);
                let real_got = real.dequeue(0);
                let sim_got = match sim_ret {
                    Ret::DeqVal(v) => Some(v),
                    Ret::DeqEmpty => None,
                    _ => unreachable!(),
                };
                assert_eq!(sim_got, real_got, "{kind:?} step {i}: dequeue diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sim_ports_agree_with_real_implementations(ops in script(), cap in 1usize..6) {
        run_pair(Flavor::Naive, QueueKind::Naive, cap, &ops);
        run_pair(Flavor::Distinct, QueueKind::Distinct, cap, &ops);
        run_pair(Flavor::Dcss, QueueKind::Dcss, cap, &ops);
    }
}

#[test]
fn sim_ports_agree_on_wraparound() {
    let ops: Vec<ScriptOp> = (0..60)
        .map(|i| {
            if i % 2 == 0 {
                ScriptOp::Enq
            } else {
                ScriptOp::Deq
            }
        })
        .collect();
    for cap in [1usize, 2, 3] {
        run_pair(Flavor::Naive, QueueKind::Naive, cap, &ops);
        run_pair(Flavor::Distinct, QueueKind::Distinct, cap, &ops);
        run_pair(Flavor::Dcss, QueueKind::Dcss, cap, &ops);
    }
}
