//! Criterion bench for **E2**: Listing 1 throughput and construction cost
//! as a function of the segment size `K`.
//!
//! Beyond the memory U-curve (see the `k_sweep` binary), `K` also affects
//! speed: tiny segments allocate constantly, huge ones are cheap to cross
//! but waste memory. Run: `cargo bench -p bq-bench --bench segment_k`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bq_core::{ConcurrentQueue, SegmentQueue};

fn bench_segment_k(crit: &mut Criterion) {
    let c = 1 << 12;
    let mut group = crit.benchmark_group("segment_k_pairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for k in [4usize, 16, 64, 256, 1024, 4096] {
        let ops = 4_000u64;
        group.throughput(Throughput::Elements(2 * ops));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let q = SegmentQueue::with_capacity_and_segment_size(c, k);
            let mut h = q.register();
            b.iter(|| {
                for v in 1..=ops {
                    q.enqueue(&mut h, v).unwrap();
                }
                for _ in 0..ops {
                    q.dequeue(&mut h).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment_k);
criterion_main!(benches);
