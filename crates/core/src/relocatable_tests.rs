use super::*;

#[test]
fn seq_ring_basic_and_wraparound() {
    let buf = RelocBuf::zeroed(RelocSeqRing::layout(3));
    // SAFETY: buf satisfies layout(3), exclusively owned.
    let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 3) };
    for round in 0..50u64 {
        for i in 0..3 {
            r.enqueue(round * 3 + i).unwrap();
        }
        assert!(r.is_full());
        assert_eq!(r.enqueue(99), Err(Full(99)));
        for i in 0..3 {
            assert_eq!(r.dequeue(), Some(round * 3 + i));
        }
        assert!(r.is_empty());
    }
}

#[test]
fn seq_ring_survives_memcpy_relocation() {
    let buf = RelocBuf::zeroed(RelocSeqRing::layout(4));
    // SAFETY: buf satisfies layout(4).
    let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 4) };
    r.enqueue(10).unwrap();
    r.enqueue(20).unwrap();
    r.dequeue().unwrap();
    r.enqueue(30).unwrap();

    let copy = buf.duplicate();
    assert_ne!(copy.base(), buf.base(), "relocated to a new address");
    // SAFETY: copy holds a byte-identical initialized region.
    let mut r2 = unsafe { RelocSeqRing::from_raw(copy.base()) };
    assert_eq!(r2.len(), 2);
    assert_eq!(r2.dequeue(), Some(20));
    assert_eq!(r2.dequeue(), Some(30));
    assert_eq!(r2.dequeue(), None);
    // The original is untouched by operations on the copy.
    assert_eq!(r.len(), 2);
}

#[test]
#[should_panic(expected = "not a RelocSeqRing")]
fn seq_ring_rejects_uninitialized_memory() {
    let buf = RelocBuf::zeroed(RelocSeqRing::layout(2));
    // SAFETY: the pointer is valid; the magic check is the subject.
    let _ = unsafe { RelocSeqRing::from_raw(buf.base()) };
}

#[test]
fn seq_ring_write_grant_commit_and_abort() {
    let buf = RelocBuf::zeroed(RelocSeqRing::layout(4));
    // SAFETY: buf satisfies layout(4).
    let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 4) };

    // Reserve 3, fill, commit only 2.
    {
        let mut g = r.try_reserve(3).unwrap();
        assert_eq!(g.len(), 3);
        for (i, s) in g.uninit_slice().iter_mut().enumerate() {
            s.write(10 + i as u64);
        }
        g.commit(2);
    }
    assert_eq!(r.len(), 2);

    // Abort by drop: nothing published.
    {
        let _g = r.try_reserve(2).unwrap();
    }
    assert_eq!(r.len(), 2);
    assert_eq!(r.dequeue(), Some(10));
    assert_eq!(r.dequeue(), Some(11));
    assert_eq!(r.dequeue(), None);
}

#[test]
fn seq_ring_grants_never_wrap_and_read_releases_prefix() {
    let buf = RelocBuf::zeroed(RelocSeqRing::layout(4));
    // SAFETY: buf satisfies layout(4).
    let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 4) };
    // Advance to slot 3 so a 2-slot reservation must stop at the wrap.
    for v in 0..3 {
        r.enqueue(v).unwrap();
        r.dequeue().unwrap();
    }
    {
        let mut g = r.try_reserve(4).unwrap();
        assert_eq!(g.len(), 1, "run stops at the wrap point");
        g.uninit_slice()[0].write(7);
        g.commit(1);
    }
    {
        let mut g = r.try_reserve(4).unwrap();
        assert_eq!(g.len(), 3, "post-wrap run limited by free slots");
        for (i, s) in g.uninit_slice().iter_mut().enumerate() {
            s.write(8 + i as u64);
        }
        g.commit(3);
    }
    assert!(r.is_full());
    assert!(r.try_reserve(1).is_none());

    {
        let g = r.try_read(8).unwrap();
        assert_eq!(g.slice(), &[7], "read run also stops at the wrap");
        g.release(1);
    }
    {
        let g = r.try_read(2).unwrap();
        assert_eq!(&*g, &[8, 9]);
        g.release(1); // partial release keeps element 9 queued
    }
    assert_eq!(r.dequeue(), Some(9));
    assert_eq!(r.dequeue(), Some(10));
    assert!(r.is_empty());
    assert!(r.try_read(1).is_none());
}

#[test]
fn vy_ring_fifo_and_relaxed_full() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
    // SAFETY: buf satisfies layout(4).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
    for v in 1..=4 {
        r.vy_enqueue(v).unwrap();
    }
    assert_eq!(r.vy_enqueue(5), Err(5));
    for v in 1..=4 {
        assert_eq!(r.vy_dequeue(), Some(v));
    }
    assert_eq!(r.vy_dequeue(), None);
}

#[test]
fn vy_ring_batch_runs_wrap() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
    // SAFETY: buf satisfies layout(4).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
    assert_eq!(r.vy_enqueue_many(&[1, 2, 3, 4, 5]), 4);
    let mut out = Vec::new();
    assert_eq!(r.vy_dequeue_many(2, &mut out), 2);
    assert_eq!(r.vy_enqueue_many(&[5, 6]), 2);
    assert_eq!(r.vy_dequeue_many(10, &mut out), 4);
    assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
}

#[test]
fn vy_ring_survives_memcpy_relocation_mid_state() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(8));
    // SAFETY: buf satisfies layout(8).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 8) };
    for v in 1..=6 {
        r.vy_enqueue(v).unwrap();
    }
    r.vy_dequeue().unwrap();
    let copy = buf.duplicate();
    // SAFETY: byte-identical initialized region.
    let r2 = unsafe { RelocRing::<u64>::from_raw(copy.base()) };
    assert_eq!(r2.counter_len(), 5);
    let mut out = Vec::new();
    assert_eq!(r2.vy_dequeue_many(8, &mut out), 5);
    assert_eq!(out, vec![2, 3, 4, 5, 6]);
}

#[test]
fn vy_ring_nonword_pod_payload() {
    // A 3-word Pod payload exercises the generic SoA layout.
    let buf = RelocBuf::zeroed(RelocRing::<[u64; 3]>::layout(2));
    // SAFETY: buf satisfies layout(2).
    let r = unsafe { RelocRing::<[u64; 3]>::init_at(buf.base(), 2) };
    r.vy_enqueue([1, 2, 3]).unwrap();
    r.vy_enqueue([4, 5, 6]).unwrap();
    assert_eq!(r.vy_dequeue(), Some([1, 2, 3]));
    assert_eq!(r.vy_dequeue(), Some([4, 5, 6]));
    assert_eq!(r.vy_dequeue(), None);
}

#[test]
fn vy_ring_pow2_and_non_pow2_capacities_behave_identically() {
    // S1: the mask fast path (pow2) and the `%` path (non-pow2) must
    // produce exactly the same observable behaviour over several rounds
    // of wraparound, including relaxed-full and empty reports.
    for &(c_pow2, c_mod) in &[(4usize, 5usize), (8, 7), (2, 3)] {
        let run = |c: usize| -> Vec<Option<u64>> {
            let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(c));
            // SAFETY: buf satisfies layout(c).
            let r = unsafe { RelocRing::<u64>::init_at(buf.base(), c) };
            let mut log = Vec::new();
            let mut next = 0u64;
            // Same op sequence regardless of capacity: enqueue bursts
            // beyond capacity, drain fully, repeat across the wrap.
            for _ in 0..6 {
                loop {
                    match r.vy_enqueue(next) {
                        Ok(()) => {
                            log.push(Some(next));
                            next += 1;
                        }
                        Err(_) => {
                            log.push(None);
                            break;
                        }
                    }
                }
                while let Some(v) = r.vy_dequeue() {
                    log.push(Some(v));
                }
                log.push(None);
            }
            log
        };
        // Behaviour depends only on capacity, and the *shape* is FIFO
        // order both ways; compare each against a plain model.
        for &c in &[c_pow2, c_mod] {
            let log = run(c);
            // Reconstruct: every burst enqueues exactly c items then a
            // full report, then dequeues the same c items then empty.
            let mut iter = log.iter();
            let mut expect = 0u64;
            for _ in 0..6 {
                for _ in 0..c {
                    assert_eq!(iter.next(), Some(&Some(expect)));
                    expect += 1;
                }
                assert_eq!(iter.next(), Some(&None), "full at exactly C");
                for v in expect - c as u64..expect {
                    assert_eq!(iter.next(), Some(&Some(v)));
                }
                assert_eq!(iter.next(), Some(&None), "empty after drain");
            }
        }
    }
}

#[test]
fn vy_ring_write_grant_commit_publishes_in_place() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(8));
    // SAFETY: buf satisfies layout(8).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 8) };
    let mut g = r.try_reserve(3).unwrap();
    assert_eq!(g.len(), 3);
    for (i, s) in g.uninit_slice().iter_mut().enumerate() {
        s.write(100 + i as u64);
    }
    g.commit(3);
    assert_eq!(r.vy_dequeue(), Some(100));
    {
        let rg = r.try_read(8).unwrap();
        assert_eq!(rg.slice(), &[101, 102]);
    }
    assert_eq!(r.vy_dequeue(), None);
}

#[test]
fn vy_ring_partial_commit_aborts_the_tail_of_the_run() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
    // SAFETY: buf satisfies layout(4).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
    let mut g = r.try_reserve(4).unwrap();
    assert_eq!(g.len(), 4);
    g.uninit_slice()[0].write(1);
    g.commit(1); // slots 1..4 aborted
    assert_eq!(r.vy_dequeue(), Some(1));
    // The aborted slots are skipped, not delivered.
    assert_eq!(r.vy_dequeue(), None);
    // And the ring is usable for a full next round.
    for v in 10..14 {
        r.vy_enqueue(v).unwrap();
    }
    let mut out = Vec::new();
    assert_eq!(r.vy_dequeue_many(8, &mut out), 4);
    assert_eq!(out, vec![10, 11, 12, 13]);
}

#[test]
fn vy_ring_dropped_grant_aborts_and_batch_dequeue_skips() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
    // SAFETY: buf satisfies layout(4).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
    r.vy_enqueue(1).unwrap();
    {
        let _g = r.try_reserve(2).unwrap(); // dropped: rounds 1,2 aborted
    }
    r.vy_enqueue(2).unwrap(); // lands at round 3
    let mut out = Vec::new();
    // Batch dequeue must deliver 1 and 2, skipping the aborted rounds.
    assert_eq!(r.vy_dequeue_many(4, &mut out), 2);
    assert_eq!(out, vec![1, 2]);
    assert_eq!(r.counter_len(), 0);
}

#[test]
fn vy_ring_read_grant_frees_slots_on_drop() {
    let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(2));
    // SAFETY: buf satisfies layout(2).
    let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 2) };
    r.vy_enqueue(1).unwrap();
    r.vy_enqueue(2).unwrap();
    {
        let g = r.try_read(2).unwrap();
        assert_eq!(&*g, &[1, 2]);
        // While the grant lives the slots are not yet reusable.
        assert_eq!(r.vy_enqueue(3), Err(3));
    }
    // Dropped: both slots free again.
    r.vy_enqueue(3).unwrap();
    assert_eq!(r.vy_dequeue(), Some(3));
}

#[test]
fn byte_ring_round_trips_variable_sizes() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(256));
    // SAFETY: buf satisfies layout(256).
    let r = unsafe { RelocByteRing::init_at(buf.base(), 256, 64) };
    let msgs: &[&[u8]] = &[b"a", b"hello world", b"", &[0xAB; 64]];
    for m in msgs {
        // SAFETY: single-threaded test = unique producer.
        assert!(unsafe { r.producer_push(m) });
    }
    for m in msgs {
        // SAFETY: single-threaded test = unique consumer.
        let g = unsafe { r.consumer_read() }.unwrap();
        assert_eq!(g.msg(), *m);
    }
    // SAFETY: as above.
    assert!(unsafe { r.consumer_read() }.is_none());
    assert_eq!(r.bytes_used(), 0);
}

#[test]
fn byte_ring_pads_at_the_wrap_point() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(64));
    // SAFETY: buf satisfies layout(64).
    let r = unsafe { RelocByteRing::init_at(buf.base(), 64, 24) };
    // Fill/drain cycles force records across the wrap repeatedly; every
    // message must come back intact and in order.
    let mut sent = 0u8;
    let mut got = 0u8;
    for round in 0..40 {
        let len = (round % 24) + 1;
        let msg: Vec<u8> = (0..len)
            .map(|_| {
                sent = sent.wrapping_add(1);
                sent
            })
            .collect();
        // SAFETY: single-threaded SPSC.
        while !unsafe { r.producer_push(&msg) } {
            let g = unsafe { r.consumer_read() }.unwrap();
            for b in g.msg() {
                got = got.wrapping_add(1);
                assert_eq!(*b, got);
            }
        }
    }
    // SAFETY: single-threaded SPSC.
    while let Some(g) = unsafe { r.consumer_read() } {
        for b in g.msg() {
            got = got.wrapping_add(1);
            assert_eq!(*b, got);
        }
    }
    assert_eq!(got, sent, "every byte delivered exactly once, in order");
}

#[test]
fn byte_ring_grant_abort_and_short_commit() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(128));
    // SAFETY: buf satisfies layout(128).
    let r = unsafe { RelocByteRing::init_at(buf.base(), 128, 32) };
    {
        // SAFETY: single-threaded SPSC.
        let _g = unsafe { r.producer_grant(32) }.unwrap();
        // Dropped without commit: nothing published.
    }
    // SAFETY: as above.
    assert!(unsafe { r.consumer_read() }.is_none());
    {
        // SAFETY: as above.
        let mut g = unsafe { r.producer_grant(32) }.unwrap();
        g.buf()[..3].copy_from_slice(b"abc");
        g.commit(3); // short commit publishes a 3-byte record
    }
    // SAFETY: as above.
    let g = unsafe { r.consumer_read() }.unwrap();
    assert_eq!(&*g, b"abc");
}

#[test]
fn byte_ring_reports_full_exactly() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(64));
    // SAFETY: buf satisfies layout(64).
    let r = unsafe { RelocByteRing::init_at(buf.base(), 64, 24) };
    // 4 records of record_size(8) = 16 bytes fill the 64-byte ring.
    for i in 0..4u64 {
        // SAFETY: single-threaded SPSC.
        assert!(unsafe { r.producer_push(&i.to_le_bytes()) });
    }
    // SAFETY: as above.
    assert!(!unsafe { r.producer_push(&5u64.to_le_bytes()) });
    let g = unsafe { r.consumer_read() }.unwrap();
    assert_eq!(&*g, &0u64.to_le_bytes());
    g.release();
    // SAFETY: as above.
    assert!(unsafe { r.producer_push(&5u64.to_le_bytes()) });
}

#[test]
fn byte_ring_survives_memcpy_relocation() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(128));
    // SAFETY: buf satisfies layout(128).
    let r = unsafe { RelocByteRing::init_at(buf.base(), 128, 32) };
    // SAFETY: single-threaded SPSC.
    unsafe {
        assert!(r.producer_push(b"first"));
        assert!(r.producer_push(b"second"));
        r.consumer_read().unwrap().release();
    }
    let copy = buf.duplicate();
    // SAFETY: byte-identical initialized region.
    let r2 = unsafe { RelocByteRing::from_raw(copy.base()) };
    // SAFETY: single-threaded SPSC on the relocated copy.
    let g = unsafe { r2.consumer_read() }.unwrap();
    assert_eq!(&*g, b"second");
}

#[test]
#[should_panic(expected = "wrap-pad progress bound")]
fn byte_ring_rejects_too_small_capacity() {
    let buf = RelocBuf::zeroed(RelocByteRing::layout(32));
    // SAFETY: the pointer is valid; the geometry check is the subject.
    let _ = unsafe { RelocByteRing::init_at(buf.base(), 32, 32) };
}

#[test]
fn board_round_trips_and_relocates() {
    let buf = RelocBuf::zeroed(AnnounceBoard::layout(3));
    // SAFETY: buf satisfies layout(3).
    let b = unsafe { AnnounceBoard::init_at(buf.base(), 3) };
    assert_eq!(b.threads(), 3);
    assert_eq!(b.pool_len(), 6);
    b.op(1).store(77, Ordering::SeqCst);
    b.desc(4).unwrap().x.store(42, Ordering::SeqCst);
    assert!(b.desc(6).is_none());

    let copy = buf.duplicate();
    // SAFETY: byte-identical initialized region.
    let b2 = unsafe { AnnounceBoard::from_raw(copy.base()) };
    assert_eq!(b2.op(1).load(Ordering::SeqCst), 77);
    assert_eq!(b2.desc(4).unwrap().x.load(Ordering::SeqCst), 42);
    assert_eq!(b2.op(0).load(Ordering::SeqCst), 0);
    assert_eq!(b2.descs().count(), 6);
}

#[test]
fn layouts_are_contiguous_and_aligned() {
    assert_eq!(RelocSeqRing::layout(8).size(), 32 + 64);
    // SoA: 384-byte header, 8 seq words (64 B) padded to the 128-byte
    // payload boundary, then 8 u64 payloads.
    let l = RelocRing::<u64>::layout(8);
    assert_eq!(l.size(), 384 + 128 + 64);
    assert_eq!(l.align(), 128);
    let b = AnnounceBoard::layout(4);
    // hdr 128 + 4 ops (32 B) padded to 128, + 8 descriptors.
    assert_eq!(b.size(), 256 + 8 * 128);
    // Byte ring: 384-byte header + the data bytes.
    assert_eq!(RelocByteRing::layout(256).size(), 384 + 256);
}

#[test]
fn byte_record_sizes() {
    assert_eq!(byte_record_size(0), 8);
    assert_eq!(byte_record_size(1), 16);
    assert_eq!(byte_record_size(8), 16);
    assert_eq!(byte_record_size(9), 24);
    assert_eq!(byte_record_size(4096), 8 + 4096);
}

#[test]
fn align_up_rounds_correctly() {
    assert_eq!(align_up(0, 128), 0);
    assert_eq!(align_up(1, 128), 128);
    assert_eq!(align_up(128, 128), 128);
    assert_eq!(align_up(129, 64), 192);
}
