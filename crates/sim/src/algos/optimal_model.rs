//! A simulator model of **Listing 5**'s announcement/counter protocol,
//! built to exhibit — and regression-test — the pseudo-code issue
//! documented in DESIGN.md §7.
//!
//! ## What is modelled
//!
//! The protocol skeleton that the correctness of Listing 5 hinges on:
//! `EnqOp` descriptors with a `successful` verdict, a covered-cell
//! announcement slot, `completeOp`'s write-back/counter/clear sequence,
//! the previous-round *replacement* path, and the enqueue counter helping
//! discipline. Coarsenings (all documented):
//!
//! * **One announcement slot** (`T = 1` in the `ops` array): the
//!   interleaving of interest involves a single covered cell, and with one
//!   slot `findOp` is a single read — so the model stays small without
//!   hiding any of the relevant races.
//! * Descriptor *fields* (`e`, `x`, `i`) are immutable host-side data
//!   reached through the packed reference; only the locations the races
//!   run through (`a[]`, counters, `ops`) live in simulated memory.
//!   The `active_op` serialization is elided (vacuous with one slot).
//! * Descriptors are allocated per attempt instead of recycled —
//!   recycling affects memory bounds, not the logic under test.
//!
//! ## The two helping modes
//!
//! [`HelpMode::PaperFaithful`] — a failed `apply` still executes the
//! paper's line-40 `CAS(&enqueues, e, e+1)` unconditionally.
//! [`HelpMode::Evidence`] — the fix used by the real
//! `bq_core::OptimalQueue`: a failed attempt helps only after re-observing
//! a successful descriptor with `op.e ≥ e`.
//!
//! The adversary schedule in `adversary::run_lemma_a2_interleaving` drives
//! the model into the state where these differ: under `PaperFaithful` the
//! counter advances past a position that no successful descriptor ever
//! owned, a stale `completeOp` write-back resurfaces the previous round's
//! element, and the checker certifies the double-dequeue history
//! non-linearizable. Under `Evidence` the same schedule stays correct.

use std::cell::RefCell;
use std::rc::Rc;

use crate::machine::{Access, Op, OpMachine, Ret, SimQueue, Status};
use crate::mem::{Loc, LocKind, SimMemory};

/// Counter-helping discipline on a failed enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpMode {
    /// Unconditional help, exactly as printed in the paper's Listing 5.
    PaperFaithful,
    /// Help only with observed evidence (the DESIGN.md §7 fix).
    Evidence,
}

/// One `EnqOp` descriptor (host-side immutable fields + verdict).
#[derive(Debug, Clone)]
struct Desc {
    e: u64,
    x: u64,
    i: usize,
    successful: bool,
}

#[derive(Debug, Default)]
struct DescTable {
    descs: Vec<Desc>,
}

impl DescTable {
    /// Allocate; packed reference = index + 1 (0 is ⊥).
    fn alloc(&mut self, e: u64, x: u64, i: usize) -> u64 {
        self.descs.push(Desc {
            e,
            x,
            i,
            successful: false,
        });
        self.descs.len() as u64
    }

    fn get(&self, packed: u64) -> &Desc {
        &self.descs[(packed - 1) as usize]
    }

    fn set_successful(&mut self, packed: u64) {
        self.descs[(packed - 1) as usize].successful = true;
    }
}

/// The Listing 5 protocol model (see module docs for scope).
pub struct OptimalModel {
    mode: HelpMode,
    c: usize,
    slots: Loc,
    enqueues: Loc,
    dequeues: Loc,
    /// The single announcement slot.
    ops0: Loc,
    table: Rc<RefCell<DescTable>>,
}

impl OptimalModel {
    /// Lay the model out in `mem`.
    pub fn new(mode: HelpMode, c: usize, mem: &mut SimMemory) -> Self {
        assert!(c > 0);
        let slots = mem.alloc_array(LocKind::Value, c, 0);
        let enqueues = mem.alloc(LocKind::Metadata, 0);
        let dequeues = mem.alloc(LocKind::Metadata, 0);
        let ops0 = mem.alloc(LocKind::Metadata, 0);
        OptimalModel {
            mode,
            c,
            slots,
            enqueues,
            dequeues,
            ops0,
            table: Rc::new(RefCell::new(DescTable::default())),
        }
    }

    /// The announcement slot's location (for adversary poise predicates).
    pub fn ops_loc(&self) -> Loc {
        self.ops0
    }
}

impl SimQueue for OptimalModel {
    fn name(&self) -> &'static str {
        match self.mode {
            HelpMode::PaperFaithful => "listing5-model (paper-faithful help)",
            HelpMode::Evidence => "listing5-model (evidence help)",
        }
    }

    fn capacity(&self) -> usize {
        self.c
    }

    fn make(&self, op: Op) -> Box<dyn OpMachine> {
        match op {
            Op::Enqueue(x) => Box::new(EnqMachine {
                mode: self.mode,
                c: self.c as u64,
                slots: self.slots,
                enqueues: self.enqueues,
                dequeues: self.dequeues,
                ops0: self.ops0,
                table: Rc::clone(&self.table),
                x,
                state: EState::ReadE,
            }),
            Op::Dequeue => Box::new(DeqMachine {
                c: self.c as u64,
                slots: self.slots,
                enqueues: self.enqueues,
                dequeues: self.dequeues,
                ops0: self.ops0,
                table: Rc::clone(&self.table),
                state: DState::ReadD,
            }),
        }
    }

    fn value_locations(&self) -> Vec<Loc> {
        (0..self.c).map(|i| Loc(self.slots.0 + i)).collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum EState {
    ReadE,
    ReadD {
        e: u64,
    },
    ValE {
        e: u64,
        d: u64,
    },
    /// `findOp`: read the announcement slot.
    FindOp {
        e: u64,
        me: u64,
    },
    /// Previous-round replacement CAS.
    ReplaceCas {
        e: u64,
        me: u64,
        cur: u64,
    },
    /// Evidence mode: re-read `ops` after a failed replacement.
    ReFind {
        e: u64,
    },
    /// Claim the empty announcement slot.
    PutCas {
        e: u64,
        me: u64,
    },
    /// `tryPut`: re-read the counter to decide the verdict.
    TryPutReadE {
        e: u64,
        me: u64,
    },
    /// Clean the slot after a failed `tryPut`.
    ClearCas {
        e: u64,
        me: u64,
    },
    /// `completeOp`: read the (possibly replaced) current descriptor.
    CompRead {
        e: u64,
    },
    /// `completeOp`: write the element back to the array.
    CompWrite {
        e: u64,
        q: u64,
    },
    /// `completeOp`: help the counter for the completed descriptor.
    CompBump {
        e: u64,
        q: u64,
    },
    /// `completeOp`: release the cell.
    CompClear {
        e: u64,
        q: u64,
    },
    /// Line 40: help the counter, then finish successfully.
    BumpThenDone {
        e: u64,
    },
    /// Line 40 on the *failure* path (paper-faithful mode only).
    BumpThenRestart {
        e: u64,
    },
}

struct EnqMachine {
    mode: HelpMode,
    c: u64,
    slots: Loc,
    enqueues: Loc,
    dequeues: Loc,
    ops0: Loc,
    table: Rc<RefCell<DescTable>>,
    x: u64,
    state: EState,
}

impl EnqMachine {
    fn slot(&self, i: usize) -> Loc {
        Loc(self.slots.0 + i)
    }
}

impl OpMachine for EnqMachine {
    fn next_access(&self) -> Access {
        match self.state {
            EState::ReadE => Access::Read(self.enqueues),
            EState::ReadD { .. } => Access::Read(self.dequeues),
            EState::ValE { .. } => Access::Read(self.enqueues),
            EState::FindOp { .. } | EState::ReFind { .. } => Access::Read(self.ops0),
            EState::ReplaceCas { me, cur, .. } => Access::Cas {
                loc: self.ops0,
                exp: cur,
                new: me,
            },
            EState::PutCas { me, .. } => Access::Cas {
                loc: self.ops0,
                exp: 0,
                new: me,
            },
            EState::TryPutReadE { .. } => Access::Read(self.enqueues),
            EState::ClearCas { me, .. } => Access::Cas {
                loc: self.ops0,
                exp: me,
                new: 0,
            },
            EState::CompRead { .. } => Access::Read(self.ops0),
            EState::CompWrite { q, .. } => {
                let d = self.table.borrow();
                let desc = d.get(q);
                Access::Write(self.slot(desc.i), desc.x)
            }
            EState::CompBump { q, .. } => {
                let e = self.table.borrow().get(q).e;
                Access::Cas {
                    loc: self.enqueues,
                    exp: e,
                    new: e + 1,
                }
            }
            EState::CompClear { q, .. } => Access::Cas {
                loc: self.ops0,
                exp: q,
                new: 0,
            },
            EState::BumpThenDone { e } | EState::BumpThenRestart { e } => Access::Cas {
                loc: self.enqueues,
                exp: e,
                new: e + 1,
            },
        }
    }

    fn apply(&mut self, observed: u64) -> Status {
        match self.state {
            EState::ReadE => {
                self.state = EState::ReadD { e: observed };
                Status::Running
            }
            EState::ReadD { e } => {
                self.state = EState::ValE { e, d: observed };
                Status::Running
            }
            EState::ValE { e, d } => {
                if observed != e {
                    self.state = EState::ReadE;
                    return Status::Running;
                }
                if e == d + self.c {
                    return Status::Done(Ret::EnqFull);
                }
                let i = (e % self.c) as usize;
                let me = self.table.borrow_mut().alloc(e, self.x, i);
                self.state = EState::FindOp { e, me };
                Status::Running
            }
            EState::FindOp { e, me } => {
                let p = observed;
                let my_i = (e % self.c) as usize;
                let found = p != 0 && {
                    let t = self.table.borrow();
                    let d = t.get(p);
                    d.successful && d.i == my_i
                };
                if found {
                    let cur_e = self.table.borrow().get(p).e;
                    if cur_e >= e {
                        // A descriptor for this (or a later) round exists:
                        // helping is safe in both modes.
                        self.state = EState::BumpThenRestart { e };
                    } else {
                        // Previous round: replace it, pre-marked successful.
                        self.table.borrow_mut().set_successful(me);
                        self.state = EState::ReplaceCas { e, me, cur: p };
                    }
                } else {
                    // Not covered (or covered by an unsuccessful desc —
                    // the put CAS below fails then and we retry).
                    self.state = EState::PutCas { e, me };
                }
                Status::Running
            }
            EState::ReplaceCas { e, me: _, cur } => {
                if observed == cur {
                    // Replacement succeeded: the covering thread will
                    // complete us; help the counter and return.
                    self.state = EState::BumpThenDone { e };
                } else {
                    match self.mode {
                        // Paper line 40: unconditional help on the retry
                        // path — the unsound step.
                        HelpMode::PaperFaithful => {
                            self.state = EState::BumpThenRestart { e };
                        }
                        // Fix: help only with re-observed evidence.
                        HelpMode::Evidence => {
                            self.state = EState::ReFind { e };
                        }
                    }
                }
                Status::Running
            }
            EState::ReFind { e } => {
                let p = observed;
                let evidence = p != 0 && {
                    let t = self.table.borrow();
                    let d = t.get(p);
                    d.successful && d.e >= e
                };
                self.state = if evidence {
                    EState::BumpThenRestart { e }
                } else {
                    EState::ReadE
                };
                Status::Running
            }
            EState::PutCas { e, me } => {
                if observed == 0 {
                    self.state = EState::TryPutReadE { e, me };
                } else {
                    // Slot occupied by a racing descriptor; restart.
                    self.state = EState::ReadE;
                }
                Status::Running
            }
            EState::TryPutReadE { e, me } => {
                if observed == e {
                    self.table.borrow_mut().set_successful(me);
                    self.state = EState::CompRead { e };
                } else {
                    self.state = EState::ClearCas { e, me };
                }
                Status::Running
            }
            EState::ClearCas { e, me } => {
                debug_assert_eq!(observed, me, "only the owner clears a failed desc");
                // tryPut failed because the counter moved; the paper still
                // helps here (line 40) and so do we — the CAS from the old
                // `e` is harmless since `enqueues ≠ e` was just observed…
                // except it may have moved back? Counters are monotone, so
                // the help CAS simply fails. Keep modes symmetric here.
                self.state = EState::BumpThenRestart { e };
                Status::Running
            }
            EState::CompRead { e } => {
                let q = observed;
                debug_assert_ne!(q, 0, "covered slot emptied by someone else");
                self.state = EState::CompWrite { e, q };
                Status::Running
            }
            EState::CompWrite { e, q } => {
                self.state = EState::CompBump { e, q };
                Status::Running
            }
            EState::CompBump { e, q } => {
                self.state = EState::CompClear { e, q };
                Status::Running
            }
            EState::CompClear { e, q } => {
                if observed == q {
                    // Cleared; our own operation was successful.
                    self.state = EState::BumpThenDone { e };
                } else {
                    // Replaced mid-completion: complete the new one too.
                    self.state = EState::CompRead { e };
                }
                Status::Running
            }
            EState::BumpThenDone { .. } => Status::Done(Ret::EnqOk),
            EState::BumpThenRestart { .. } => {
                self.state = EState::ReadE;
                Status::Running
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DState {
    ReadD,
    ReadE {
        d: u64,
    },
    /// `readElem`: check the announcement slot first.
    ReadOps {
        d: u64,
        e: u64,
    },
    /// Fall back to the array.
    ReadSlot {
        d: u64,
        e: u64,
    },
    ValD {
        d: u64,
        e: u64,
        x: u64,
    },
    CasD {
        d: u64,
        x: u64,
    },
}

struct DeqMachine {
    c: u64,
    slots: Loc,
    enqueues: Loc,
    dequeues: Loc,
    ops0: Loc,
    table: Rc<RefCell<DescTable>>,
    state: DState,
}

impl OpMachine for DeqMachine {
    fn next_access(&self) -> Access {
        match self.state {
            DState::ReadD => Access::Read(self.dequeues),
            DState::ReadE { .. } => Access::Read(self.enqueues),
            DState::ReadOps { .. } => Access::Read(self.ops0),
            DState::ReadSlot { d, .. } => Access::Read(Loc(self.slots.0 + (d % self.c) as usize)),
            DState::ValD { .. } => Access::Read(self.dequeues),
            DState::CasD { d, .. } => Access::Cas {
                loc: self.dequeues,
                exp: d,
                new: d + 1,
            },
        }
    }

    fn apply(&mut self, observed: u64) -> Status {
        match self.state {
            DState::ReadD => {
                self.state = DState::ReadE { d: observed };
                Status::Running
            }
            DState::ReadE { d } => {
                self.state = DState::ReadOps { d, e: observed };
                Status::Running
            }
            DState::ReadOps { d, e } => {
                let p = observed;
                let i = (d % self.c) as usize;
                let hit = p != 0 && {
                    let t = self.table.borrow();
                    let desc = t.get(p);
                    desc.successful && desc.i == i
                };
                if hit {
                    let x = self.table.borrow().get(p).x;
                    self.state = DState::ValD { d, e, x };
                } else {
                    self.state = DState::ReadSlot { d, e };
                }
                Status::Running
            }
            DState::ReadSlot { d, e } => {
                self.state = DState::ValD { d, e, x: observed };
                Status::Running
            }
            DState::ValD { d, e, x } => {
                if observed != d {
                    self.state = DState::ReadD;
                    return Status::Running;
                }
                if e == d {
                    return Status::Done(Ret::DeqEmpty);
                }
                self.state = DState::CasD { d, x };
                Status::Running
            }
            DState::CasD { d, x } => {
                if observed == d {
                    Status::Done(Ret::DeqVal(x))
                } else {
                    self.state = DState::ReadD;
                    Status::Running
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Sim;
    use crate::lincheck::check_history;
    use crate::machine::Ret;

    fn sim_of(mode: HelpMode, c: usize, threads: usize) -> Sim<OptimalModel> {
        let mut mem = SimMemory::new();
        let q = OptimalModel::new(mode, c, &mut mem);
        Sim::new(q, mem, threads)
    }

    #[test]
    fn sequential_fifo_both_modes() {
        for mode in [HelpMode::PaperFaithful, HelpMode::Evidence] {
            let mut sim = sim_of(mode, 2, 1);
            assert_eq!(sim.fill(0, &[5, 6], 2000), vec![Ret::EnqOk; 2]);
            assert_eq!(sim.run_op(0, Op::Enqueue(7), 2000), Ret::EnqFull);
            assert_eq!(
                sim.empty(0, 3, 2000),
                vec![Ret::DeqVal(5), Ret::DeqVal(6), Ret::DeqEmpty]
            );
        }
    }

    #[test]
    fn wraparound_both_modes() {
        for mode in [HelpMode::PaperFaithful, HelpMode::Evidence] {
            let mut sim = sim_of(mode, 1, 1);
            for v in 1..=30u64 {
                assert_eq!(sim.run_op(0, Op::Enqueue(v), 2000), Ret::EnqOk);
                assert_eq!(sim.run_op(0, Op::Dequeue, 2000), Ret::DeqVal(v));
            }
            assert!(check_history(sim.history(), 1).is_linearizable());
        }
    }

    #[test]
    fn dequeue_reads_through_announcement() {
        // An enqueue paused inside completeOp (element announced, not yet
        // written back) must still be visible to dequeuers — the paper's
        // readElem. Counter must be advanced by a helper first.
        let mut sim = sim_of(HelpMode::Evidence, 1, 3);
        sim.invoke(1, Op::Enqueue(10));
        // Pause right before the completeOp write-back to the array.
        let out = sim.run_until(1, 2000, |a, m| {
            a.is_update() && m.kind(a.target()) == crate::mem::LocKind::Value
        });
        assert!(matches!(out, crate::controller::RunOutcome::Poised(_)));
        // A rival enqueue finds the successful descriptor (queue full at
        // C=1) and helps the counter along the way.
        assert_eq!(sim.run_op(2, Op::Enqueue(99), 2000), Ret::EnqFull);
        // The dequeuer now sees the element *through the descriptor*.
        assert_eq!(sim.run_op(0, Op::Dequeue, 2000), Ret::DeqVal(10));
        sim.run_to_completion(1, 2000);
        assert!(
            check_history(sim.history(), 1).is_linearizable(),
            "{}",
            sim.history().render()
        );
    }
}
