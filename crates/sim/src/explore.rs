//! The **schedule explorer** (DESIGN.md §11): bounded enumeration of
//! thread interleavings with replayable failure artifacts.
//!
//! Two layers live here:
//!
//! * **Unconditional** (always compiled): the serializable [`Schedule`]
//!   artifact, the token-domain invariant
//!   ([`token_domain_violations`]), and a deterministic
//!   [`run_machine_schedule`] runner that drives the step-machine models
//!   (`Sim`) from a pinned `Schedule` — this is what the regression
//!   fixtures in `tests/regressions.rs` replay in tier-1 runs.
//! * **Feature `explore`**: the loom/CHESS-style engine that runs the
//!   *real* `bq-core` algorithms on cooperative OS threads, enumerating
//!   interleavings by iterative preemption bounding with state-hash
//!   pruning. Every shared access in `bq-core` (under its `sim-explore`
//!   feature) calls back through the `simyield` seam, which is where the
//!   engine suspends and resumes threads.
//!
//! ## The schedule artifact
//!
//! A [`Schedule`] is the full choice list of an execution: entry `k` is
//! the thread granted the `k`-th scheduling point. Any failing execution
//! prints its schedule; feeding the same string back (via
//! [`Schedule::from_str`](std::str::FromStr) + `replay`) re-runs that
//! exact interleaving and must reproduce the same history byte for byte
//! — asserted by the replay-determinism test.
//!
//! ## Bounds and honesty
//!
//! The engine explores *sequentially consistent* interleavings only: it
//! cannot reorder the effects of a single thread the way real weak
//! memory can (every `bq-core` shared access is `SeqCst`, so for these
//! algorithms SC exploration is the right model). Preemption bounding
//! (Musuvathi & Qadeer's iterative context bounding) is exhaustive *up
//! to the bound*; state-hash pruning is a heuristic on top — hash
//! collisions can in principle drop distinct states, so `prune: false`
//! exists for when you want the unpruned (slower) sweep. Spin loops of
//! lock-free (not wait-free) operations are cut by a large grant slice:
//! a forced round-robin switch that keeps enumeration finite and is
//! *not* charged to the preemption budget (reported per execution
//! instead).

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use crate::controller::Sim;
use crate::lincheck::History;
use crate::machine::{Op, SimQueue};

// ---------------------------------------------------------------------------
// Schedule — the replayable artifact
// ---------------------------------------------------------------------------

/// A serialized interleaving: the thread id chosen at every scheduling
/// point, in order. `Display` renders the replay artifact; `FromStr`
/// parses it back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(pub Vec<usize>);

/// Version tag of the artifact text format.
const SCHED_TAG: &str = "sched:v1:";

impl Schedule {
    /// Empty schedule (pure default-policy execution).
    pub fn new() -> Self {
        Schedule(Vec::new())
    }

    /// Number of pinned choices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff no choices are pinned.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{SCHED_TAG}")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let body = s
            .trim()
            .strip_prefix(SCHED_TAG)
            .ok_or_else(|| format!("schedule artifact must start with {SCHED_TAG:?}"))?;
        if body.is_empty() {
            return Ok(Schedule::new());
        }
        body.split(',')
            .map(|t| t.trim().parse::<usize>().map_err(|e| format!("{t:?}: {e}")))
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

// ---------------------------------------------------------------------------
// Token-domain invariant (the PR-2 bit-63 class)
// ---------------------------------------------------------------------------

/// Check every value flowing through a history against the queue token
/// domain (non-zero 63-bit words, `bq_core::token`): returns one
/// description per violation. This is the invariant the PR-2 bit-63
/// collision broke — a 16-bit checksum field packed at bit 48 could set
/// bit 63, colliding with the DCSS descriptor mark and escaping the
/// token domain.
pub fn token_domain_violations(h: &History) -> Vec<String> {
    use crate::lincheck::HistoryEvent;
    use crate::machine::Ret;
    let ok = |v: u64| v != 0 && v < (1u64 << 63);
    let mut out = Vec::new();
    for e in h.events() {
        match e {
            HistoryEvent::Invoke {
                id,
                op: Op::Enqueue(v),
                ..
            } if !ok(*v) => {
                out.push(format!(
                    "op #{}: enqueue value {v:#x} outside 1..2^63",
                    id.0
                ));
            }
            HistoryEvent::Return {
                id,
                ret: Ret::DeqVal(v),
            } if !ok(*v) => {
                out.push(format!(
                    "op #{}: dequeued value {v:#x} outside 1..2^63",
                    id.0
                ));
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Machine-level schedule runner (unconditional; used by regressions)
// ---------------------------------------------------------------------------

/// Per-thread operation plan for [`run_machine_schedule`]: thread `t`
/// performs `plan[t]` in order, invoking the next operation lazily at its
/// first scheduled step after going idle.
pub type MachinePlan = Vec<VecDeque<Op>>;

/// Drive a step-machine simulation from a pinned [`Schedule`].
///
/// Entry `k` of the schedule executes one primitive of that thread,
/// invoking its next planned operation first if it is idle. Schedule
/// entries for threads that are idle with an exhausted plan are skipped.
/// After the schedule is consumed, every thread is run to completion in
/// thread-id order (the deterministic completion tail), so the returned
/// history is complete. Panics if a thread fails to finish within
/// `max_tail_steps` — machine models are obstruction-free, so that marks
/// a progress bug, not a long schedule.
pub fn run_machine_schedule<Q: SimQueue>(
    queue: Q,
    mem: crate::mem::SimMemory,
    threads: usize,
    schedule: &Schedule,
    plan: &MachinePlan,
    max_tail_steps: usize,
) -> History {
    assert_eq!(plan.len(), threads, "one op list per thread");
    let mut sim = Sim::new(queue, mem, threads);
    let mut plan: MachinePlan = plan.clone();
    for &tid in &schedule.0 {
        assert!(tid < threads, "schedule names thread {tid} of {threads}");
        if !sim.is_busy(tid) {
            match plan[tid].pop_front() {
                Some(op) => {
                    sim.invoke(tid, op);
                }
                None => continue, // plan exhausted: nothing to step
            }
        }
        sim.step(tid);
    }
    // Deterministic completion tail.
    for (tid, ops) in plan.iter_mut().enumerate() {
        loop {
            if sim.is_busy(tid) {
                sim.run_to_completion(tid, max_tail_steps);
            }
            match ops.pop_front() {
                Some(op) => {
                    sim.invoke(tid, op);
                }
                None => break,
            }
        }
    }
    sim.history().clone()
}

// ---------------------------------------------------------------------------
// The real-code exploration engine (feature `explore`)
// ---------------------------------------------------------------------------

#[cfg(feature = "explore")]
pub use engine::{
    explore, replay, Ctx, ExploreConfig, Failure, Recorder, Report, RunOutcomeKind, RunResult,
    RunSpec,
};

#[cfg(feature = "explore")]
mod engine {
    use super::Schedule;
    use crate::controller::OpId;
    use crate::lincheck::{History, HistoryEvent};
    use crate::machine::{Op, Ret};
    use std::collections::{HashMap, HashSet};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::rc::Rc;
    use std::sync::mpsc;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

    /// Exploration bounds and switches.
    #[derive(Debug, Clone)]
    pub struct ExploreConfig {
        /// Maximum number of *preemptions* per execution (switching away
        /// from a thread that could have continued). Forced switches —
        /// the previous thread blocked or finished — are free, as in
        /// iterative context bounding.
        pub preemption_bound: usize,
        /// Maximum scheduling points per execution; beyond it the
        /// execution is truncated (counted, never checked).
        pub depth_bound: usize,
        /// Forced round-robin switch after this many consecutive steps
        /// of one thread under the default policy (spin-loop cutter;
        /// free of budget, reported honestly).
        pub grant_slice: usize,
        /// Use the state-hash visited set. Heuristic: collisions can
        /// drop distinct states; disable for the exhaustive sweep.
        pub prune: bool,
        /// Persistent-set-style conflict filter: only branch to `alt` at
        /// a step whose executed access *conflicts* (same location, at
        /// least one write) with `alt`'s announced pending access.
        /// Threads whose pending access is unknown (not yet scheduled,
        /// or just woken from a condvar) branch unconditionally.
        /// Heuristic — independent-access commutation with the default
        /// policy tail is not a full DPOR proof; disable together with
        /// `prune` for the pure bounded-exhaustive sweep.
        pub por: bool,
        /// Hard cap on executions (honest truncation: the report says
        /// whether it was hit).
        pub max_executions: u64,
    }

    impl Default for ExploreConfig {
        fn default() -> Self {
            ExploreConfig {
                preemption_bound: 2,
                depth_bound: 5_000,
                grant_slice: 300,
                prune: true,
                por: true,
                max_executions: 1_000_000,
            }
        }
    }

    /// Records the concurrent history of one explored execution. Bodies
    /// log invocations/returns through [`Ctx`]; the oracle reads the
    /// result. Event order is schedule-deterministic because a body only
    /// runs between its grant and its next yield point.
    #[derive(Clone, Default)]
    pub struct Recorder(Arc<Mutex<RecInner>>);

    #[derive(Default)]
    struct RecInner {
        hist: History,
        next: usize,
    }

    impl Recorder {
        fn lock(&self) -> MutexGuard<'_, RecInner> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Snapshot the recorded history.
        pub fn history(&self) -> History {
            self.lock().hist.clone()
        }
    }

    /// Per-thread context handed to an explored body.
    pub struct Ctx {
        /// This body's thread id (index into the schedule's choices).
        pub tid: usize,
        rec: Recorder,
    }

    impl Ctx {
        /// Record an operation invocation.
        pub fn invoke(&mut self, op: Op) -> OpId {
            let mut r = self.rec.lock();
            let id = OpId(r.next);
            r.next += 1;
            let tid = self.tid;
            r.hist.push(HistoryEvent::Invoke { id, tid, op });
            id
        }

        /// Record an operation response.
        pub fn ret(&mut self, id: OpId, ret: Ret) {
            self.rec.lock().hist.push(HistoryEvent::Return { id, ret });
        }
    }

    /// A thread body run under the explorer's control.
    pub type Body = Box<dyn FnOnce(&mut Ctx) + Send>;
    /// A post-execution oracle over the recorded history.
    pub type Check = Box<dyn FnOnce(&History) -> Result<(), String>>;

    /// One execution's worth of world + bodies + oracle, built fresh per
    /// execution by the `mk` closure passed to [`explore`]/[`replay`].
    pub struct RunSpec {
        /// One body per thread; bodies capture their own handles and an
        /// `Arc` of the world.
        pub bodies: Vec<Body>,
        /// Post-execution oracle over the recorded history (runs on the
        /// controller thread after all bodies finished; typically closes
        /// over the world `Arc` for invariant checks — conservation,
        /// waiter counts — beyond the history itself).
        pub check: Check,
    }

    /// A failing interleaving, replayable from `schedule`.
    #[derive(Debug, Clone)]
    pub struct Failure {
        /// The full choice list of the failing execution — the artifact.
        pub schedule: Schedule,
        /// What went wrong (oracle message, deadlock description, panic).
        pub reason: String,
        /// The recorded history, rendered.
        pub history: String,
    }

    impl Failure {
        /// The printable artifact block CI greps for.
        pub fn render(&self) -> String {
            format!(
                "=== EXPLORER FAILURE ===\nreason: {}\nschedule artifact (replayable):\n{}\nhistory:\n{}=== END FAILURE ===\n",
                self.reason, self.schedule, self.history
            )
        }
    }

    /// Exploration summary.
    #[derive(Debug, Default)]
    pub struct Report {
        /// Executions actually run.
        pub executions: u64,
        /// Children skipped by the visited-state heuristic.
        pub pruned: u64,
        /// Children skipped by the conflict (persistent-set) filter.
        pub por_skipped: u64,
        /// Executions cut by the depth bound (not oracle-checked).
        pub truncated: u64,
        /// Executions in which the grant slice forced at least one free
        /// switch (spin cutting happened; those interleavings carry
        /// uncharged switches).
        pub sliced: u64,
        /// `true` iff `max_executions` stopped the sweep early.
        pub hit_execution_cap: bool,
        /// First failing interleaving, if any.
        pub failure: Option<Failure>,
    }

    impl Report {
        /// `true` iff no failing interleaving was found.
        pub fn passed(&self) -> bool {
            self.failure.is_none()
        }
    }

    /// How a single (replayed) execution ended.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum RunOutcomeKind {
        /// All bodies finished; oracle ran.
        Completed,
        /// Some threads were permanently blocked (lost wake / deadlock).
        Deadlock(String),
        /// Depth bound cut the execution.
        DepthExceeded,
        /// A body (or queue code) panicked.
        Panicked(String),
        /// A pinned choice named a thread that was not runnable —
        /// nondeterminism or a foreign schedule.
        Diverged(String),
    }

    /// Result of [`replay`].
    #[derive(Debug)]
    pub struct RunResult {
        /// How the execution ended.
        pub outcome: RunOutcomeKind,
        /// Full choice list actually taken (equals the requested prefix
        /// followed by default-policy choices).
        pub schedule: Schedule,
        /// Rendered history (byte-comparable across replays).
        pub history: String,
        /// Oracle verdict (`None` when the oracle did not run).
        pub check: Option<Result<(), String>>,
    }

    // -- engine internals --------------------------------------------------

    /// Panic payload used to unwind explored threads on abort.
    struct AbortExecution;

    fn install_quiet_abort_hook() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<AbortExecution>().is_some() {
                    return; // expected unwind of an explored thread
                }
                prev(info);
            }));
        });
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TStatus {
        NotStarted,
        Ready,
        BlockedMutex(u32),
        BlockedCv(u32),
        Finished,
    }

    /// One scheduling point of the recorded trace.
    #[derive(Debug, Clone)]
    struct TraceStep {
        tid: usize,
        /// Bitmask of threads that were runnable at this point.
        enabled: u64,
        /// Thread that ran the previous step (`usize::MAX` at step 0).
        prev: usize,
        /// State hash before this step executed (visited-set key).
        hash_before: u64,
        /// Cumulative preemptions through this choice inclusive.
        cum_cost: usize,
        /// Snapshot of every thread's announced pending access — `(loc,
        /// is_write)`, `None` when unknown — taken at choice time. Index
        /// `tid` is the access this step executed; the others feed the
        /// conflict filter during child generation.
        pend: Vec<Option<(u32, bool)>>,
    }

    struct Inner {
        cfg: ExploreConfig,
        prefix: Vec<usize>,
        statuses: Vec<TStatus>,
        /// Pending grant per thread: set by the chooser, consumed by the
        /// grantee right before it executes one access.
        grant: Vec<bool>,
        trace: Vec<TraceStep>,
        last: usize,
        slice_run: usize,
        cum_cost: usize,
        sliced: bool,
        abort: bool,
        outcome: Option<RunOutcomeKind>,
        /// Address → dense location id, by first touch.
        locs: HashMap<usize, u32>,
        /// Last written value per location id (shadow memory).
        shadow: Vec<u64>,
        shadow_hash: u64,
        /// Per-thread executed-access counts — a program-counter proxy.
        /// The state hash folds these *instead of* observation digests so
        /// that different histories reaching the same (memory, thread
        /// positions) point collide and prune each other, CHESS-style.
        pcs: Vec<u64>,
        /// Notify epoch per condvar location id.
        cv_epoch: HashMap<u32, u64>,
        /// Per-thread announced (loc, epoch) between cv_announce and
        /// cv_block.
        cv_ann: Vec<Option<(u32, u64)>>,
        /// Per-thread announced next access (loc, is_write); `None`
        /// while unknown (start gate, or freshly woken from a condvar).
        pending: Vec<Option<(u32, bool)>>,
    }

    impl Inner {
        fn new(cfg: ExploreConfig, threads: usize, prefix: Vec<usize>) -> Self {
            Inner {
                cfg,
                prefix,
                statuses: vec![TStatus::NotStarted; threads],
                grant: vec![false; threads],
                trace: Vec::new(),
                last: usize::MAX,
                slice_run: 0,
                cum_cost: 0,
                sliced: false,
                abort: false,
                outcome: None,
                locs: HashMap::new(),
                shadow: Vec::new(),
                shadow_hash: 0,
                pcs: vec![0; threads],
                cv_epoch: HashMap::new(),
                cv_ann: vec![None; threads],
                pending: vec![None; threads],
            }
        }

        fn intern(&mut self, addr: usize) -> u32 {
            let next = self.locs.len() as u32;
            let id = *self.locs.entry(addr).or_insert(next);
            if id as usize >= self.shadow.len() {
                self.shadow.resize(id as usize + 1, 0);
            }
            id
        }

        fn enabled_mask(&self) -> u64 {
            let mut m = 0u64;
            for (t, s) in self.statuses.iter().enumerate() {
                if *s == TStatus::Ready {
                    m |= 1 << t;
                }
            }
            m
        }

        fn all_finished(&self) -> bool {
            self.statuses.iter().all(|s| *s == TStatus::Finished)
        }

        fn state_hash(&self) -> u64 {
            let mut h = self.shadow_hash;
            for (t, pc) in self.pcs.iter().enumerate() {
                h = mix(h, mix(t as u64 + 1, *pc));
            }
            for (t, s) in self.statuses.iter().enumerate() {
                let tag = match s {
                    TStatus::NotStarted => 1,
                    TStatus::Ready => 2,
                    TStatus::BlockedMutex(l) => 3 | ((*l as u64) << 8),
                    TStatus::BlockedCv(l) => 4 | ((*l as u64) << 8),
                    TStatus::Finished => 5,
                };
                h = mix(h, mix(t as u64 + 101, tag));
            }
            h
        }

        fn set_abort(&mut self, outcome: RunOutcomeKind) {
            if !self.abort {
                self.abort = true;
                self.outcome = Some(outcome);
            }
        }

        /// Pick and grant the next runner. Caller notifies the condvar.
        fn choose_and_grant(&mut self) {
            if self.abort {
                return;
            }
            let pos = self.trace.len();
            if pos >= self.cfg.depth_bound {
                self.set_abort(RunOutcomeKind::DepthExceeded);
                return;
            }
            let enabled = self.enabled_mask();
            if enabled == 0 {
                if !self.all_finished() {
                    let stuck: Vec<String> = self
                        .statuses
                        .iter()
                        .enumerate()
                        .filter_map(|(t, s)| match s {
                            TStatus::BlockedMutex(l) => Some(format!("T{t} on mutex loc{l}")),
                            TStatus::BlockedCv(l) => Some(format!("T{t} on condvar loc{l}")),
                            _ => None,
                        })
                        .collect();
                    self.set_abort(RunOutcomeKind::Deadlock(format!(
                        "no runnable thread; parked past a missed wake: [{}]",
                        stuck.join(", ")
                    )));
                }
                return;
            }
            let prev = self.last;
            let prev_enabled = prev != usize::MAX && (enabled >> prev) & 1 == 1;
            let chosen = if pos < self.prefix.len() {
                let p = self.prefix[pos];
                if (enabled >> p) & 1 != 1 {
                    self.set_abort(RunOutcomeKind::Diverged(format!(
                        "schedule names T{p} at step {pos}, but it is not runnable \
                         (status {:?})",
                        self.statuses.get(p)
                    )));
                    return;
                }
                p
            } else if prev_enabled && self.slice_run < self.cfg.grant_slice {
                prev
            } else {
                // Round-robin: first enabled thread after `prev`.
                if prev_enabled {
                    self.sliced = true; // slice fired: free forced switch
                }
                let n = self.statuses.len();
                let start = if prev == usize::MAX {
                    0
                } else {
                    (prev + 1) % n
                };
                (0..n)
                    .map(|i| (start + i) % n)
                    .find(|t| (enabled >> t) & 1 == 1)
                    .expect("enabled mask is non-empty")
            };
            let forced_by_slice = pos >= self.prefix.len() && prev_enabled && chosen != prev;
            let cost = if pos == 0 || chosen == prev || !prev_enabled || forced_by_slice {
                0
            } else {
                1
            };
            self.cum_cost += cost;
            let hash_before = self.state_hash();
            let pend = self.pending.clone();
            self.trace.push(TraceStep {
                tid: chosen,
                enabled,
                prev,
                hash_before,
                cum_cost: self.cum_cost,
                pend,
            });
            self.slice_run = if chosen == prev {
                self.slice_run + 1
            } else {
                1
            };
            self.last = chosen;
            self.grant[chosen] = true;
        }
    }

    struct Exec {
        m: Mutex<Inner>,
        cv: Condvar,
    }

    impl Exec {
        fn lock(&self) -> MutexGuard<'_, Inner> {
            self.m.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    fn mix(a: u64, b: u64) -> u64 {
        // splitmix64 finalizer over the pair.
        let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn abort_panic() -> ! {
        std::panic::panic_any(AbortExecution)
    }

    /// The per-thread simyield hook: every method runs on the explored
    /// thread itself.
    struct ExploreHook {
        exec: Arc<Exec>,
        tid: usize,
    }

    impl ExploreHook {
        /// Wait inside `g` until this thread holds a grant (or abort).
        /// Returns with the grant still set.
        fn wait_for_grant<'a>(
            &self,
            exec: &'a Exec,
            mut g: MutexGuard<'a, Inner>,
        ) -> MutexGuard<'a, Inner> {
            loop {
                if g.abort {
                    drop(g);
                    abort_panic();
                }
                if g.grant[self.tid] {
                    return g;
                }
                g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl simyield::Hook for ExploreHook {
        fn before(&self, a: &simyield::Access) {
            if std::thread::panicking() {
                return;
            }
            let exec = Arc::clone(&self.exec);
            let mut g = exec.lock();
            if g.abort {
                drop(g);
                abort_panic();
            }
            let lid = g.intern(a.loc);
            g.pending[self.tid] = Some((lid, !matches!(a.kind, simyield::Kind::Load)));
            if g.grant[self.tid] {
                // Pending grant from the start gate or a block wake-up:
                // consume it and execute without a new choice.
                g.grant[self.tid] = false;
                return;
            }
            g.choose_and_grant();
            exec.cv.notify_all();
            let mut g = self.wait_for_grant(&exec, g);
            g.grant[self.tid] = false;
        }

        fn after(&self, a: &simyield::Access, observed: u64) {
            if std::thread::panicking() {
                return;
            }
            let mut g = self.exec.lock();
            let lid = g.intern(a.loc);
            let old = g.shadow[lid as usize];
            let new = match a.kind {
                simyield::Kind::Load => old,
                simyield::Kind::Store => a.operand,
                simyield::Kind::Cas => {
                    if observed == a.operand {
                        a.operand2
                    } else {
                        old
                    }
                }
                simyield::Kind::FetchAdd => observed.wrapping_add(a.operand),
                simyield::Kind::LockAcq => old,
            };
            if new != old {
                g.shadow_hash ^= mix(lid as u64 + 1, old) ^ mix(lid as u64 + 1, new);
                g.shadow[lid as usize] = new;
            }
            g.pcs[self.tid] += 1;
        }

        fn block_mutex(&self, loc: usize) {
            if std::thread::panicking() {
                return;
            }
            let exec = Arc::clone(&self.exec);
            let mut g = exec.lock();
            if g.abort {
                drop(g);
                abort_panic();
            }
            let lid = g.intern(loc);
            g.statuses[self.tid] = TStatus::BlockedMutex(lid);
            // Next access on wake-up is the lock retry.
            g.pending[self.tid] = Some((lid, true));
            g.choose_and_grant();
            exec.cv.notify_all();
            // Keep the grant set: it is consumed at the retry's before().
            let _g = self.wait_for_grant(&exec, g);
        }

        fn mutex_released(&self, loc: usize) {
            // Runs inside guard drop, possibly during unwind: must not
            // suspend and must not panic. It must still wake blocked
            // contenders (so they can observe an abort and unwind too).
            let mut g = self.exec.lock();
            let lid = g.intern(loc);
            for s in g.statuses.iter_mut() {
                if *s == TStatus::BlockedMutex(lid) {
                    *s = TStatus::Ready;
                }
            }
            self.exec.cv.notify_all();
        }

        fn cv_announce(&self, loc: usize) {
            if std::thread::panicking() {
                return;
            }
            let mut g = self.exec.lock();
            let lid = g.intern(loc);
            let ep = *g.cv_epoch.get(&lid).unwrap_or(&0);
            g.cv_ann[self.tid] = Some((lid, ep));
        }

        fn cv_block(&self, loc: usize) {
            if std::thread::panicking() {
                return;
            }
            let exec = Arc::clone(&self.exec);
            let mut g = exec.lock();
            if g.abort {
                drop(g);
                abort_panic();
            }
            let (lid, ep) = g.cv_ann[self.tid].take().unwrap_or_else(|| {
                let lid = g.intern(loc);
                let ep = *g.cv_epoch.get(&lid).unwrap_or(&0);
                (lid, ep)
            });
            if *g.cv_epoch.get(&lid).unwrap_or(&0) != ep {
                // A notify landed in the unlock→wait window: the announce
                // recorded us, so we are not allowed to sleep through it.
                return;
            }
            g.statuses[self.tid] = TStatus::BlockedCv(lid);
            // What runs on wake-up is the cooperative re-lock of the
            // associated mutex, whose location this hook cannot know yet.
            g.pending[self.tid] = None;
            g.choose_and_grant();
            exec.cv.notify_all();
            let _g = self.wait_for_grant(&exec, g);
            // Grant stays set; the cooperative re-lock's before() uses it.
        }

        fn cv_block_timed(&self, loc: usize) -> bool {
            if std::thread::panicking() {
                return true;
            }
            let exec = Arc::clone(&self.exec);
            let mut g = exec.lock();
            if g.abort {
                drop(g);
                abort_panic();
            }
            let (lid, ep) = g.cv_ann[self.tid].take().unwrap_or_else(|| {
                let lid = g.intern(loc);
                let ep = *g.cv_epoch.get(&lid).unwrap_or(&0);
                (lid, ep)
            });
            if *g.cv_epoch.get(&lid).unwrap_or(&0) != ep {
                // A notify landed in the unlock→wait window: as in
                // cv_block, the announce recorded us, so this counts as
                // a wake — never a timeout.
                return true;
            }
            // Unlike cv_block the thread STAYS Ready: its deadline makes
            // it runnable at any moment, so suspending it would
            // manufacture deadlocks the wall clock would break in a real
            // run. This is just a scheduling point; when the scheduler
            // next grants us, the epoch decides the outcome — advanced
            // means some notify woke us first, unchanged means the
            // scheduler chose to fire the timeout. Both orders of a
            // timeout-vs-wake race are thus enumerated as ordinary
            // scheduling choices.
            g.pending[self.tid] = None;
            g.choose_and_grant();
            exec.cv.notify_all();
            let g = self.wait_for_grant(&exec, g);
            let woke = *g.cv_epoch.get(&lid).unwrap_or(&0) != ep;
            drop(g);
            // Grant stays set; the cooperative re-lock's before() uses it.
            woke
        }

        fn cv_notify(&self, loc: usize) {
            if std::thread::panicking() {
                return;
            }
            let mut g = self.exec.lock();
            let lid = g.intern(loc);
            *g.cv_epoch.entry(lid).or_insert(0) += 1;
            for s in g.statuses.iter_mut() {
                if *s == TStatus::BlockedCv(lid) {
                    *s = TStatus::Ready;
                }
            }
            self.exec.cv.notify_all();
        }
    }

    // -- worker pool -------------------------------------------------------

    type Job = Box<dyn FnOnce() + Send>;

    struct Pool {
        txs: Vec<mpsc::Sender<Job>>,
        handles: Vec<std::thread::JoinHandle<()>>,
    }

    impl Pool {
        fn new(n: usize) -> Pool {
            let mut txs = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for i in 0..n {
                let (tx, rx) = mpsc::channel::<Job>();
                txs.push(tx);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("explore-w{i}"))
                        .spawn(move || {
                            while let Ok(job) = rx.recv() {
                                job();
                            }
                        })
                        .expect("spawn explorer worker"),
                );
            }
            Pool { txs, handles }
        }

        fn submit(&self, i: usize, job: Job) {
            self.txs[i].send(job).expect("explorer worker alive");
        }
    }

    impl Drop for Pool {
        fn drop(&mut self) {
            self.txs.clear();
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }

    // -- one execution -----------------------------------------------------

    struct ExecResult {
        outcome: RunOutcomeKind,
        trace: Vec<TraceStep>,
        history: History,
        sliced: bool,
        check: Option<Result<(), String>>,
    }

    fn run_one(pool: &Pool, cfg: &ExploreConfig, prefix: &[usize], spec: RunSpec) -> ExecResult {
        install_quiet_abort_hook();
        let threads = spec.bodies.len();
        assert!((1..=64).contains(&threads), "1..=64 explored threads");
        let rec = Recorder::default();
        let exec = Arc::new(Exec {
            m: Mutex::new(Inner::new(cfg.clone(), threads, prefix.to_vec())),
            cv: Condvar::new(),
        });
        for (tid, body) in spec.bodies.into_iter().enumerate() {
            let exec = Arc::clone(&exec);
            let rec = rec.clone();
            pool.submit(
                tid,
                Box::new(move || {
                    let hook = Rc::new(ExploreHook {
                        exec: Arc::clone(&exec),
                        tid,
                    });
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        simyield::with_hook(hook, || {
                            // Start gate: arrive, wait for the first grant
                            // (consumed by the body's first yield point).
                            {
                                let mut g = exec.lock();
                                g.statuses[tid] = TStatus::Ready;
                                exec.cv.notify_all();
                                loop {
                                    if g.abort {
                                        drop(g);
                                        abort_panic();
                                    }
                                    if g.grant[tid] {
                                        break;
                                    }
                                    g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                                }
                            }
                            let mut ctx = Ctx { tid, rec };
                            body(&mut ctx);
                        })
                    }));
                    let mut g = exec.lock();
                    g.statuses[tid] = TStatus::Finished;
                    g.grant[tid] = false;
                    if let Err(payload) = result {
                        if payload.downcast_ref::<AbortExecution>().is_none() {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".into());
                            g.set_abort(RunOutcomeKind::Panicked(msg));
                        }
                    }
                    if !g.abort && !g.all_finished() {
                        g.choose_and_grant();
                    }
                    exec.cv.notify_all();
                }),
            );
        }

        // Kick-off: wait for all arrivals, then make the initial choice.
        {
            let mut g = exec.lock();
            while g.statuses.contains(&TStatus::NotStarted) {
                g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            g.choose_and_grant();
            exec.cv.notify_all();
        }
        // Wait for the execution to finish.
        let (outcome, trace, sliced) = {
            let mut g = exec.lock();
            while !g.all_finished() {
                g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            (
                g.outcome.take().unwrap_or(RunOutcomeKind::Completed),
                std::mem::take(&mut g.trace),
                g.sliced,
            )
        };
        let history = rec.history();
        let check = if outcome == RunOutcomeKind::Completed {
            Some((spec.check)(&history))
        } else {
            None
        };
        ExecResult {
            outcome,
            trace,
            history,
            sliced,
            check,
        }
    }

    // -- the DFS over schedule prefixes ------------------------------------

    /// Enumerate interleavings of the scenario produced by `mk`, up to
    /// the configured preemption bound, feeding every completed
    /// execution's history to the spec's oracle. Stops at the first
    /// failure (deadlock, oracle rejection, panic, divergence) and
    /// returns its replayable [`Failure`] artifact in the report.
    pub fn explore(cfg: &ExploreConfig, mut mk: impl FnMut() -> RunSpec) -> Report {
        let mut report = Report::default();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut visited: HashSet<(u64, usize, usize)> = HashSet::new();
        let mut pool: Option<Pool> = None;

        while let Some(prefix) = stack.pop() {
            if report.executions >= cfg.max_executions {
                report.hit_execution_cap = true;
                break;
            }
            let spec = mk();
            let pool = pool.get_or_insert_with(|| Pool::new(spec.bodies.len()));
            let r = run_one(pool, cfg, &prefix, spec);
            report.executions += 1;
            if r.sliced {
                report.sliced += 1;
            }
            let schedule = Schedule(r.trace.iter().map(|s| s.tid).collect());
            let fail_reason = match &r.outcome {
                RunOutcomeKind::Completed => match r.check.as_ref() {
                    Some(Err(msg)) => Some(format!("oracle rejected the execution: {msg}")),
                    _ => None,
                },
                RunOutcomeKind::Deadlock(d) => Some(format!("deadlock: {d}")),
                RunOutcomeKind::Panicked(m) => Some(format!("panic in explored code: {m}")),
                RunOutcomeKind::Diverged(m) => Some(format!("schedule divergence: {m}")),
                RunOutcomeKind::DepthExceeded => {
                    report.truncated += 1;
                    None
                }
            };
            if let Some(reason) = fail_reason {
                report.failure = Some(Failure {
                    schedule,
                    reason,
                    history: r.history.render(),
                });
                break;
            }
            // Children: insert one more preemption at each later position.
            for k in prefix.len()..r.trace.len() {
                let step = &r.trace[k];
                let cum_before = if k == 0 { 0 } else { r.trace[k - 1].cum_cost };
                for alt in 0..64usize {
                    if (step.enabled >> alt) & 1 != 1 || alt == step.tid {
                        continue;
                    }
                    let prev_enabled =
                        step.prev != usize::MAX && (step.enabled >> step.prev) & 1 == 1;
                    let cost = if k == 0 || alt == step.prev || !prev_enabled {
                        0
                    } else {
                        1
                    };
                    let c = cum_before + cost;
                    if c > cfg.preemption_bound {
                        continue;
                    }
                    if cfg.por {
                        // Branch only where the executed access and the
                        // alternative's announced next access conflict;
                        // unknown pendings branch conservatively.
                        let independent = match (step.pend[step.tid], step.pend[alt]) {
                            (Some((l1, w1)), Some((l2, w2))) => l1 != l2 || !(w1 || w2),
                            _ => false,
                        };
                        if independent {
                            report.por_skipped += 1;
                            continue;
                        }
                    }
                    if cfg.prune && !visited.insert((step.hash_before, alt, c)) {
                        report.pruned += 1;
                        continue;
                    }
                    let mut child: Vec<usize> = r.trace[..k].iter().map(|s| s.tid).collect();
                    child.push(alt);
                    stack.push(child);
                }
            }
        }
        report
    }

    /// Re-run one pinned interleaving (e.g. a printed failure artifact)
    /// and report how it ended, with the rendered history for
    /// byte-for-byte comparison.
    pub fn replay(cfg: &ExploreConfig, schedule: &Schedule, spec: RunSpec) -> RunResult {
        let pool = Pool::new(spec.bodies.len());
        let r = run_one(&pool, cfg, &schedule.0, spec);
        RunResult {
            outcome: r.outcome,
            schedule: Schedule(r.trace.iter().map(|s| s.tid).collect()),
            history: r.history.render(),
            check: r.check,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::counter_queue::naive;
    use crate::lincheck::check_history;
    use crate::machine::Ret;
    use crate::mem::SimMemory;

    #[test]
    fn schedule_round_trips_through_text() {
        let s = Schedule(vec![0, 1, 2, 0, 1]);
        let text = s.to_string();
        assert_eq!(text, "sched:v1:0,1,2,0,1");
        assert_eq!(text.parse::<Schedule>().unwrap(), s);
        let empty = Schedule::new();
        assert_eq!(empty.to_string().parse::<Schedule>().unwrap(), empty);
        assert!("bogus".parse::<Schedule>().is_err());
        assert!("sched:v1:1,x".parse::<Schedule>().is_err());
    }

    #[test]
    fn token_domain_flags_bit63_and_zero() {
        use crate::controller::OpId;
        use crate::lincheck::HistoryEvent;
        let mut h = History::new();
        h.push(HistoryEvent::Invoke {
            id: OpId(0),
            tid: 0,
            op: Op::Enqueue(1 << 63),
        });
        h.push(HistoryEvent::Return {
            id: OpId(0),
            ret: Ret::EnqOk,
        });
        h.push(HistoryEvent::Invoke {
            id: OpId(1),
            tid: 1,
            op: Op::Dequeue,
        });
        h.push(HistoryEvent::Return {
            id: OpId(1),
            ret: Ret::DeqVal(0),
        });
        let v = token_domain_violations(&h);
        assert_eq!(v.len(), 2, "{v:?}");
        let mut ok = History::new();
        ok.push(HistoryEvent::Invoke {
            id: OpId(0),
            tid: 0,
            op: Op::Enqueue((1 << 63) - 1),
        });
        assert!(token_domain_violations(&ok).is_empty());
    }

    #[test]
    fn machine_schedule_runner_is_deterministic_and_complete() {
        let mk = || {
            let mut mem = SimMemory::new();
            let q = naive(2, &mut mem);
            (q, mem)
        };
        let plan: MachinePlan = vec![
            VecDeque::from([Op::Enqueue(1), Op::Dequeue]),
            VecDeque::from([Op::Enqueue(2)]),
        ];
        let sched = Schedule(vec![0, 0, 1, 0, 1, 1, 0, 0]);
        let (q1, m1) = mk();
        let h1 = run_machine_schedule(q1, m1, 2, &sched, &plan, 10_000);
        let (q2, m2) = mk();
        let h2 = run_machine_schedule(q2, m2, 2, &sched, &plan, 10_000);
        assert_eq!(
            h1.render(),
            h2.render(),
            "identical schedule, identical history"
        );
        // Complete: every op invoked and returned.
        assert_eq!(h1.events().len(), 6);
        assert!(check_history(&h1, 2).is_linearizable());
    }

    #[test]
    fn machine_schedule_skips_idle_threads_with_empty_plans() {
        let mut mem = SimMemory::new();
        let q = naive(2, &mut mem);
        // Thread 1 has no ops; scheduling it is a harmless skip.
        let plan: MachinePlan = vec![VecDeque::from([Op::Enqueue(5)]), VecDeque::new()];
        let sched = Schedule(vec![1, 1, 0, 1, 0]);
        let h = run_machine_schedule(q, mem, 2, &sched, &plan, 10_000);
        assert_eq!(h.events().len(), 2);
        assert!(check_history(&h, 2).is_linearizable());
    }
}
