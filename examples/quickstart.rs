//! Quickstart: the memory-optimal bounded queue in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three ways to use the library:
//! 1. token queues (`u64` payloads — ids, indices, packed data);
//! 2. typed queues via `BoxedQueue` (any `Send` type);
//! 3. picking an algorithm by its memory/assumption trade-off.

use membq::prelude::*;

fn main() {
    // ── 1. The headline structure: Listing 5, Θ(T) overhead ─────────────
    // Capacity 1024, up to 4 threads. Overhead is independent of capacity:
    // an announcement slot per thread + 2T recyclable descriptors.
    let q = OptimalQueue::with_capacity_and_threads(1024, 4);
    println!(
        "OptimalQueue(C=1024, T=4): element bytes = {}, overhead bytes = {}",
        q.element_bytes(),
        q.overhead_bytes()
    );

    let mut h = q.register();
    q.enqueue(&mut h, 42).unwrap();
    q.enqueue(&mut h, 43).unwrap();
    assert_eq!(q.dequeue(&mut h), Some(42));
    assert_eq!(q.dequeue(&mut h), Some(43));
    assert_eq!(q.dequeue(&mut h), None);
    println!("FIFO round-trip OK");

    // Full queues reject politely, handing the value back.
    let tiny = OptimalQueue::with_capacity_and_threads(2, 1);
    let mut th = tiny.register();
    tiny.enqueue(&mut th, 1).unwrap();
    tiny.enqueue(&mut th, 2).unwrap();
    assert_eq!(tiny.enqueue(&mut th, 3), Err(Full(3)));
    println!("bounded semantics OK (Full(3) returned)");

    // ── 2. Typed payloads ────────────────────────────────────────────────
    #[derive(Debug, PartialEq)]
    struct Job {
        id: u32,
        payload: String,
    }
    let jobs: BoxedQueue<Job, OptimalQueue> =
        BoxedQueue::new(OptimalQueue::with_capacity_and_threads(64, 4));
    let mut jh = jobs.register();
    jobs.enqueue(
        &mut jh,
        Job {
            id: 7,
            payload: "compact my memory".into(),
        },
    )
    .ok()
    .unwrap();
    let job = jobs.dequeue(&mut jh).unwrap();
    println!("typed payload OK: {job:?}");

    // ── 3. Picking by trade-off ──────────────────────────────────────────
    // Distinct elements (e.g. unique request ids)? Listing 2 gives Θ(1).
    let ids = DistinctQueue::with_capacity(1024);
    println!(
        "DistinctQueue overhead: {} bytes — constant, but YOU must guarantee distinctness",
        ids.overhead_bytes()
    );

    // Tunable memory-friendliness? Listing 1 with K = √C.
    let seg = SegmentQueue::with_capacity(1024);
    println!(
        "SegmentQueue (K = {}): overhead currently {} bytes (grows/shrinks with occupancy)",
        seg.segment_size(),
        seg.overhead_bytes()
    );

    // And the impossibility the paper proves: don't reach for a Θ(1)
    // CAS queue without assumptions — `NaiveQueue` exists only to be
    // broken by the adversary experiment (`--bin adversary`).
    println!("done — see EXPERIMENTS.md for the full reproduction story");
}
