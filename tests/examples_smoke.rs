//! Smoke-run every example with tiny parameters (`MEMBQ_SMOKE=1`) so the
//! examples cannot silently rot: `cargo test` builds all example targets
//! before running integration tests, and this test executes each produced
//! binary and requires a clean exit.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// Every example under `examples/` (kept in sync by the count assertion
/// against the source directory below).
const EXAMPLES: &[&str] = &[
    "quickstart",
    "io_ring",
    "overhead_report",
    "pipeline",
    "async_pipeline",
    "task_scheduler",
    "adversary_demo",
    "multi_process",
    "observatory",
];

/// `target/<profile>/examples`, derived from this test binary's own path
/// (`target/<profile>/deps/<name>-<hash>`).
fn examples_dir() -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop(); // strip test binary name -> deps/
    p.pop(); // strip deps/ -> profile dir
    p.push("examples");
    p
}

#[test]
fn example_list_is_complete() {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(src)
        .expect("examples dir")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "tests/examples_smoke.rs EXAMPLES list is out of sync with examples/"
    );
}

#[test]
fn every_example_runs_clean_with_tiny_parameters() {
    let dir = examples_dir();
    for name in EXAMPLES {
        let path = dir.join(name);
        assert!(
            path.exists(),
            "example binary {name} not found at {} — run through `cargo test`, \
             which builds example targets first",
            path.display()
        );
        let start = Instant::now();
        let out = Command::new(&path)
            .env("MEMBQ_SMOKE", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        println!(
            "example {name}: ok in {:.2}s",
            start.elapsed().as_secs_f64()
        );
    }
}
