//! Multi-process bounded queue: several **processes** (not threads) share
//! one `ShmQueue` through an anonymous `mmap` segment, and the queue
//! survives one of them being `SIGKILL`ed mid-enqueue.
//!
//! ```text
//! cargo run --release --example multi_process
//! ```
//!
//! Three acts:
//! 1. producer and consumer processes stream values through a shared
//!    ring, with element conservation checked by the parent;
//! 2. a producer is killed between two shared writes of its enqueue, and
//!    the survivors reclaim the orphaned slot and drain to empty;
//! 3. the same layout placed in a *file*-backed segment and reopened at
//!    a different base address — the relocatable layout at work.
//!
//! `MEMBQ_SMOKE=1` shrinks the stream for CI.

use std::sync::atomic::Ordering;

use membq::shm::{fork_child, ChildExit, ShmQueue};

fn yield_now() {
    // SAFETY: sched_yield has no preconditions; forked children of this
    // process must stay allocation-free (see bq_shm::harness docs).
    unsafe {
        libc::sched_yield();
    }
}

fn main() {
    let smoke = std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let per: u64 = if smoke { 500 } else { 20_000 };

    // ── 1. Producer/consumer across fork ────────────────────────────────
    let q = ShmQueue::<u64>::create_anon(64).expect("anonymous shared segment");
    println!(
        "ShmQueue(C=64) in an anonymous MAP_SHARED segment; streaming {} values\n\
         through 2 producer + 2 consumer processes ...",
        2 * per
    );

    let mut children = Vec::new();
    for p in 0..2u64 {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                for i in 0..per {
                    while q.enqueue(&mut h, 1 + p * per + i).is_err() {
                        yield_now();
                    }
                }
            })
            .expect("fork"),
        );
    }
    for _ in 0..2 {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                let seg = q.segment();
                for _ in 0..per {
                    let v = loop {
                        if let Some(v) = q.dequeue(&mut h) {
                            break v;
                        }
                        yield_now();
                    };
                    seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                }
            })
            .expect("fork"),
        );
    }
    for child in children {
        assert_eq!(child.wait().expect("waitpid"), ChildExit::Exited(0));
    }
    let n = 2 * per;
    assert_eq!(
        q.segment().scratch(0).load(Ordering::SeqCst),
        n * (n + 1) / 2,
        "conservation"
    );
    println!("  conservation holds: sum of consumed values = n(n+1)/2\n");

    // ── 2. Crash consistency ────────────────────────────────────────────
    println!("killing a producer after 12 shared writes (inside its 3rd enqueue) ...");
    let q = ShmQueue::<u64>::create_anon(8).expect("segment");
    let seg = q.segment().clone();
    let qp = q.clone();
    let victim = fork_child(move || {
        let mut h = qp.register();
        qp.segment()
            .scratch(7)
            .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
        h.arm_crash_after_writes(12);
        for v in 1..=100u64 {
            while qp.enqueue(&mut h, v).is_err() {
                yield_now();
            }
        }
    })
    .expect("fork");
    assert_eq!(
        victim.wait().expect("waitpid"),
        ChildExit::Signaled(libc::SIGKILL)
    );
    // The parent reaped the victim, so it may authoritatively flag the
    // liveness slot; helpers then reclaim the orphaned claim.
    seg.mark_dead(seg.scratch(7).load(Ordering::SeqCst) as usize - 1);

    let mut h = q.register();
    let mut drained = Vec::new();
    while let Some(v) = q.dequeue(&mut h) {
        drained.push(v);
    }
    println!(
        "  survivors drained {:?} — the killed enqueue (value 3) died before\n\
         its publish CAS, so it never linearized; the queue is empty and usable",
        drained
    );
    assert_eq!(drained, vec![1, 2]);
    q.enqueue(&mut h, 77)
        .expect("queue still fully operational");
    assert_eq!(q.dequeue(&mut h), Some(77));

    // ── 3. File-backed relocation ───────────────────────────────────────
    let path = std::env::temp_dir().join(format!("membq_example_{}.shm", std::process::id()));
    {
        let q = ShmQueue::<u64>::create_file(&path, 16).expect("file-backed segment");
        let mut h = q.register();
        for v in [10, 20, 30] {
            q.enqueue(&mut h, v).unwrap();
        }
    } // unmapped: only the file holds the queue now
    let q = ShmQueue::<u64>::open_file(&path).expect("reopen validates magic/version/tag");
    let mut h = q.register();
    println!(
        "\nreopened the file-backed queue at a different base: len = {}, head = {:?}",
        q.len(),
        q.dequeue(&mut h)
    );
    assert_eq!(q.dequeue(&mut h), Some(20));
    assert_eq!(q.dequeue(&mut h), Some(30));
    let _ = std::fs::remove_file(&path);
    println!("\nall good: conservation, crash recovery, and relocation each verified");
}
