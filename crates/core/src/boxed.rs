//! A typed adapter: store arbitrary `T` through a token queue by boxing.
//!
//! The paper's model stores opaque *values* in value-locations; in a systems
//! language the natural value is a pointer. [`BoxedQueue`] heap-allocates
//! each element and passes the pointer (a non-zero, 48-bit-on-x86-64 word,
//! hence a valid 63-bit token) through an underlying token queue.
//!
//! Only **value-independent** queues may carry pointers: the allocator can
//! hand the same address out twice (free → malloc), so the underlying queue
//! must tolerate repeated values. [`PointerCapable`] marks the queues for
//! which that holds: [`SegmentQueue`](crate::SegmentQueue) (unique absolute
//! positions), [`DcssQueue`](crate::DcssQueue) (counter-guarded updates) and
//! [`OptimalQueue`](crate::OptimalQueue) (announcement protocol). Notably it
//! excludes [`DistinctQueue`](crate::DistinctQueue): recycled addresses
//! violate its distinct-elements assumption — exactly the trap the paper
//! warns practitioners about.

use std::marker::PhantomData;

use crate::dcss_queue::DcssQueue;
use crate::optimal::OptimalQueue;
use crate::queue::ConcurrentQueue;
use crate::segment::SegmentQueue;
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Marker for token queues that tolerate repeated token values and can hold
/// pointer-width (≤ 2⁶²) tokens. See module docs.
pub trait PointerCapable: ConcurrentQueue {
    /// Handle creation that bypasses thread-bound accounting, used only
    /// while holding exclusive access (`Drop`).
    #[doc(hidden)]
    fn drop_handle(&self) -> Self::Handle;
}

impl PointerCapable for SegmentQueue {
    fn drop_handle(&self) -> Self::Handle {
        crate::segment::SegmentHandle
    }
}

impl PointerCapable for DcssQueue {
    fn drop_handle(&self) -> Self::Handle {
        // Reusing tid 0 is safe: Drop has exclusive access, so no live
        // thread shares the descriptor pair.
        crate::dcss_queue::DcssHandle::exclusive()
    }
}

impl PointerCapable for OptimalQueue {
    fn drop_handle(&self) -> Self::Handle {
        crate::optimal::OptimalHandle::exclusive()
    }
}

/// A bounded queue of owned `T` values over a pointer-capable token queue.
pub struct BoxedQueue<T, Q: PointerCapable> {
    inner: Q,
    _marker: PhantomData<fn(T) -> T>,
}

/// Per-thread handle wrapping the inner queue's handle.
pub struct BoxedHandle<Q: PointerCapable> {
    inner: Q::Handle,
}

impl<T: Send, Q: PointerCapable> BoxedQueue<T, Q> {
    /// Wrap an (empty) token queue.
    ///
    /// # Panics
    /// If the inner queue is not empty — tokens already inside would not be
    /// valid `Box<T>` pointers.
    pub fn new(inner: Q) -> Self {
        assert!(inner.is_empty(), "inner queue must start empty");
        BoxedQueue {
            inner,
            _marker: PhantomData,
        }
    }

    /// Obtain a per-thread handle.
    pub fn register(&self) -> BoxedHandle<Q> {
        BoxedHandle {
            inner: self.inner.register(),
        }
    }

    /// Borrow the underlying token queue (footprint accounting,
    /// shard-count introspection — anything that does not move tokens;
    /// the element-typed API above is the only safe transfer path).
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Fold this handle's observability deltas into the inner queue's
    /// shared counter block, making them visible to `metrics()` reads
    /// while the handle stays live (DESIGN.md §14.1).
    pub fn flush_metrics(&self, h: &mut BoxedHandle<Q>) {
        self.inner.flush_metrics(&mut h.inner);
    }

    /// Enqueue an owned value; returns it back when the queue is full.
    pub fn enqueue(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), T> {
        let ptr = Box::into_raw(Box::new(value));
        let token = ptr as u64;
        debug_assert!(token != 0 && token <= self.inner.max_token());
        match self.inner.enqueue(&mut h.inner, token) {
            Ok(()) => Ok(()),
            Err(_) => {
                // SAFETY: the token was rejected, so we still own the box.
                Err(*unsafe { Box::from_raw(ptr) })
            }
        }
    }

    /// Dequeue the oldest value.
    pub fn dequeue(&self, h: &mut BoxedHandle<Q>) -> Option<T> {
        let token = self.inner.dequeue(&mut h.inner)?;
        // SAFETY: every token in the queue came from Box::into_raw above and
        // is dequeued exactly once (the inner queue conserves tokens).
        Some(*unsafe { Box::from_raw(token as *mut T) })
    }

    /// Batch enqueue passthrough: boxes every item, hands the token run to
    /// the inner queue's (possibly native) `enqueue_many`, and returns the
    /// rejected suffix unboxed. An empty return vector means everything
    /// was accepted.
    pub fn enqueue_many(&self, h: &mut BoxedHandle<Q>, items: Vec<T>) -> Vec<T> {
        let tokens: Vec<u64> = items
            .into_iter()
            .map(|item| Box::into_raw(Box::new(item)) as u64)
            .collect();
        let n = self.inner.enqueue_many(&mut h.inner, &tokens);
        tokens[n..]
            .iter()
            // SAFETY: tokens beyond the accepted prefix were rejected, so
            // we still own their boxes.
            .map(|&t| *unsafe { Box::from_raw(t as *mut T) })
            .collect()
    }

    /// Box a value into its token form. Internal: pairs with
    /// [`enqueue_tokens`](Self::enqueue_tokens) so the blocking façade can
    /// retry a parked batch without re-boxing it on every wake.
    pub(crate) fn box_token(value: T) -> u64 {
        Box::into_raw(Box::new(value)) as u64
    }

    /// Enqueue already-boxed tokens (prefix accepted); returns the count.
    /// The caller retains ownership of — and responsibility for — the
    /// rejected suffix.
    pub(crate) fn enqueue_tokens(&self, h: &mut BoxedHandle<Q>, tokens: &[u64]) -> usize {
        self.inner.enqueue_many(&mut h.inner, tokens)
    }

    /// Reclaim a value from a token produced by [`box_token`](Self::box_token)
    /// that was **not** accepted by the queue. Pairs with `box_token` so
    /// the blocking façade's `send_all` can hand the unsent suffix back on
    /// close.
    pub(crate) fn unbox_token(token: u64) -> T {
        // SAFETY: only called on tokens from `box_token` that the inner
        // queue rejected or that were never offered, so ownership of the
        // box never left the caller.
        *unsafe { Box::from_raw(token as *mut T) }
    }

    /// Batch dequeue passthrough: drains up to `max` values through the
    /// inner queue's `dequeue_many`, appending to `out`; returns the count.
    pub fn dequeue_many(&self, h: &mut BoxedHandle<Q>, max: usize, out: &mut Vec<T>) -> usize {
        // Grows on demand rather than pre-sizing: a miss (empty queue)
        // then allocates nothing, which matters in parked retry loops.
        let mut tokens = Vec::new();
        let n = self.inner.dequeue_many(&mut h.inner, max, &mut tokens);
        out.extend(
            tokens
                .into_iter()
                // SAFETY: as in `dequeue` — each token is surrendered by
                // the inner queue exactly once.
                .map(|t| *unsafe { Box::from_raw(t as *mut T) }),
        );
        n
    }

    /// Capacity of the underlying queue.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Approximate emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<T, Q: PointerCapable + MemoryFootprint> MemoryFootprint for BoxedQueue<T, Q> {
    fn footprint(&self) -> FootprintBreakdown {
        let mut b = self.inner.footprint();
        // The boxed payloads are element storage held outside the slots;
        // the slots themselves carry the pointers.
        b.element_bytes += self.inner.len() * std::mem::size_of::<T>();
        b.overhead.push(bq_memtrack::FootprintEntry::new(
            "per-element Box allocation headers (allocator-dependent)",
            0,
            OverheadClass::Other,
        ));
        b
    }
}

impl<T, Q: PointerCapable> Drop for BoxedQueue<T, Q> {
    fn drop(&mut self) {
        // Drain remaining boxes so elements are not leaked.
        let mut h = self.inner.drop_handle();
        while let Some(token) = self.inner.dequeue(&mut h) {
            // SAFETY: as in `dequeue`.
            drop(unsafe { Box::from_raw(token as *mut T) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn boxed_roundtrip_strings() {
        let q: BoxedQueue<String, SegmentQueue> =
            BoxedQueue::new(SegmentQueue::with_capacity_and_segment_size(4, 2));
        let mut h = q.register();
        q.enqueue(&mut h, "hello".to_string()).unwrap();
        q.enqueue(&mut h, "world".to_string()).unwrap();
        assert_eq!(q.dequeue(&mut h).as_deref(), Some("hello"));
        assert_eq!(q.dequeue(&mut h).as_deref(), Some("world"));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn full_returns_value_unboxed() {
        let q: BoxedQueue<Vec<u8>, OptimalQueue> =
            BoxedQueue::new(OptimalQueue::with_capacity_and_threads(1, 2));
        let mut h = q.register();
        q.enqueue(&mut h, vec![1]).unwrap();
        let back = q.enqueue(&mut h, vec![2, 3]).unwrap_err();
        assert_eq!(back, vec![2, 3]);
        assert_eq!(q.dequeue(&mut h), Some(vec![1]));
    }

    #[test]
    fn drop_drains_without_leak() {
        // Run under the conservation logic: dropping a non-empty queue must
        // free the boxes (verified by Miri-style logic: Drop impl of the
        // payload runs).
        struct Counter(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counter {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let q: BoxedQueue<Counter, DcssQueue> =
                BoxedQueue::new(DcssQueue::with_capacity_and_threads(8, 2));
            let mut h = q.register();
            for _ in 0..5 {
                assert!(q.enqueue(&mut h, Counter(Arc::clone(&drops))).is_ok());
            }
            assert!(q.dequeue(&mut h).is_some());
            // 4 left inside.
        }
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 5);
    }

    #[test]
    fn batch_passthrough_roundtrip_and_rejection() {
        let q: BoxedQueue<String, OptimalQueue> =
            BoxedQueue::new(OptimalQueue::with_capacity_and_threads(3, 1));
        let mut h = q.register();
        let rejected = q.enqueue_many(
            &mut h,
            vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        );
        assert_eq!(rejected, vec!["d".to_string(), "e".to_string()]);
        let mut out: Vec<String> = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 10, &mut out), 3);
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(q.dequeue_many(&mut h, 1, &mut out), 0);
    }

    #[test]
    fn concurrent_boxed_transfer() {
        let q: Arc<BoxedQueue<u64, OptimalQueue>> = Arc::new(BoxedQueue::new(
            OptimalQueue::with_capacity_and_threads(8, 3),
        ));
        let n = 2_000u64;
        let q2 = Arc::clone(&q);
        let p = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 0..n {
                let mut item = v;
                loop {
                    match q2.enqueue(&mut h, item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut h = q.register();
        let mut got = Vec::new();
        while got.len() < n as usize {
            match q.dequeue(&mut h) {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        p.join().unwrap();
        let expected: Vec<u64> = (0..n).collect();
        assert_eq!(got, expected, "single producer order preserved");
    }
}
