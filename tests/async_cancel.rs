//! Cancellation safety for the async façade (DESIGN.md §9): dropping a
//! pending future mid-wait must not lose wakeups, must not leak waiter
//! registrations in the [`EventCount`] lists, and must leave element
//! conservation intact. The stress half reuses the element-wise
//! pool-spec recording technique of `tests/linearizability_stress.rs`:
//! every async operation (including cancelled ones, recorded as
//! refusals) becomes an individually linearizable op in a history the
//! Wing–Gong pool checker certifies.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use std::time::{Duration, Instant};

use membq::core::{
    AsyncQueue, BlockingQueue, EventCount, OptimalQueue, RecvTimeoutError, SendTimeoutError,
    ShardedQueue,
};
use membq::sim::{check_history_pool, History, HistoryEvent, Op, OpId, Ret};
use parking_lot::Mutex;

// ---------------------------------------------------------------------------
// Manual-poll harness: a flag waker plus a bounded poll-then-cancel loop.
// ---------------------------------------------------------------------------

struct Flag(AtomicBool);

impl Wake for Flag {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::SeqCst);
    }
}

fn flag_waker() -> (Arc<Flag>, Waker) {
    let f = Arc::new(Flag(AtomicBool::new(false)));
    (Arc::clone(&f), Waker::from(Arc::clone(&f)))
}

/// Poll `fut` at most `attempts` times (yielding between polls so other
/// threads can transition the queue); `None` means it was still pending
/// and has been dropped — a cancellation.
fn poll_bounded<F: Future + Unpin>(mut fut: F, attempts: usize) -> Option<F::Output> {
    let (_flag, waker) = flag_waker();
    let mut cx = Context::from_waker(&waker);
    for i in 0..attempts {
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(v) => return Some(v),
            Poll::Pending => {
                if i + 1 < attempts {
                    std::thread::yield_now();
                }
            }
        }
    }
    drop(fut); // cancel mid-wait
    None
}

fn ec_quiescent(ec: &EventCount, what: &str) {
    assert_eq!(
        ec.registered_wakers(),
        0,
        "{what}: leaked waker registrations"
    );
    assert_eq!(ec.waiter_count(), 0, "{what}: leaked waiter count");
}

// ---------------------------------------------------------------------------
// Deterministic cancellation properties
// ---------------------------------------------------------------------------

/// Dropping a pending `recv` future removes its registration from the
/// eventcount list — no leaked waiters.
#[test]
fn dropped_recv_future_releases_its_waiter() {
    let q: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(4, 1));
    let mut h = q.register();
    let (_flag, waker) = flag_waker();
    let mut cx = Context::from_waker(&waker);
    let mut fut = q.recv(&mut h);
    assert!(
        Pin::new(&mut fut).poll(&mut cx).is_pending(),
        "queue is empty"
    );
    assert_eq!(
        q.blocking().not_empty_event().registered_wakers(),
        1,
        "pending recv holds exactly one registration"
    );
    drop(fut);
    ec_quiescent(q.blocking().not_empty_event(), "after recv cancel");
}

/// Dropping a pending `send` future releases its waiter AND its value
/// never entered the queue: conservation is exact.
#[test]
fn dropped_send_future_releases_waiter_and_loses_nothing() {
    let q: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(2, 1));
    let mut h = q.register();
    q.try_send(&mut h, 1).unwrap();
    q.try_send(&mut h, 2).unwrap();
    {
        let (_flag, waker) = flag_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = q.send(&mut h, 3);
        assert!(
            Pin::new(&mut fut).poll(&mut cx).is_pending(),
            "queue is full"
        );
        assert_eq!(q.blocking().not_full_event().registered_wakers(), 1);
    } // fut dropped here: cancelled
    ec_quiescent(q.blocking().not_full_event(), "after send cancel");
    assert_eq!(q.len(), 2, "cancelled send deposited nothing");
    assert_eq!(q.try_recv(&mut h), Ok(1));
    assert_eq!(q.try_recv(&mut h), Ok(2));
    assert!(q.is_empty(), "exactly the two accepted values existed");
}

/// The lost-wakeup case the broadcast design exists for: two pending
/// receivers, one cancels, then a value arrives — the survivor must be
/// woken (a cancelled waiter never swallows a wake).
#[test]
fn cancelled_recv_does_not_swallow_the_wake() {
    let q: Arc<AsyncQueue<u64, OptimalQueue>> = Arc::new(AsyncQueue::new(
        OptimalQueue::with_capacity_and_threads(4, 3),
    ));
    // Survivor: a real blocked task on its own thread.
    let q2 = Arc::clone(&q);
    let survivor = std::thread::spawn(move || {
        let mut h = q2.register();
        pollster::block_on(q2.recv(&mut h))
    });
    // Give the survivor time to park, then add a second pending recv
    // and cancel it.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let mut h = q.register();
    {
        let (_flag, waker) = flag_waker();
        let mut cx = Context::from_waker(&waker);
        let mut doomed = q.recv(&mut h);
        assert!(Pin::new(&mut doomed).poll(&mut cx).is_pending());
    } // cancelled
      // One value: the survivor — not the cancelled future — must get it.
    q.try_send(&mut h, 77).unwrap();
    assert_eq!(
        survivor.join().unwrap(),
        Some(77),
        "wake reached the surviving waiter"
    );
    ec_quiescent(q.blocking().not_empty_event(), "after transfer");
}

/// A woken-then-cancelled future (wake drained its registration before
/// the drop) must not corrupt the waiter count via double-deregister.
#[test]
fn cancel_after_wake_is_a_clean_noop() {
    let q: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(4, 2));
    let mut h = q.register();
    let mut h2 = q.register();
    let (flag, waker) = flag_waker();
    let mut cx = Context::from_waker(&waker);
    // Register (pending recv on the empty queue), wake (the send drains
    // the registration and fires the waker), then drop without re-polling.
    let mut fut = q.recv(&mut h);
    assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
    q.try_send(&mut h2, 5).unwrap(); // wake drains the registration
    assert!(flag.0.load(Ordering::SeqCst), "waker fired");
    assert_eq!(q.blocking().not_empty_event().registered_wakers(), 0);
    drop(fut); // its WaiterId is stale: deregister must be a no-op
    ec_quiescent(q.blocking().not_empty_event(), "after stale cancel");
    assert_eq!(
        q.try_recv(&mut h),
        Ok(5),
        "value survived the cancelled waiter"
    );
}

/// Cancelled batch futures: a pending `recv_many` holds no elements, a
/// pending `send_all`'s already-accepted prefix stays queued (and only
/// the unsent suffix vanishes with the future).
#[test]
fn cancelled_batch_futures_conserve_elements() {
    let q: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(2, 1));
    let mut h = q.register();
    // send_all of 4 into capacity 2: accepts 2, parks, gets cancelled.
    assert!(
        poll_bounded(q.send_all(&mut h, vec![1, 2, 3, 4]), 2).is_none(),
        "cannot complete: capacity 2"
    );
    ec_quiescent(q.blocking().not_full_event(), "after send_all cancel");
    assert_eq!(q.len(), 2, "accepted prefix stays queued");
    assert_eq!(q.try_recv(&mut h), Ok(1));
    assert_eq!(q.try_recv(&mut h), Ok(2));
    // recv_many on the now-empty queue: pending, cancelled, nothing held.
    assert!(poll_bounded(q.recv_many(&mut h, 3), 2).is_none());
    ec_quiescent(q.blocking().not_empty_event(), "after recv_many cancel");
    assert!(q.is_empty());
}

// ---------------------------------------------------------------------------
// Timed waits: deadlines across cancellation (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// The timer wheel is process-global, so the tests that assert on
/// `timerwheel::armed_count` are serialized against each other.
static TIMER_LOCK: Mutex<()> = Mutex::new(());

/// Zero and past deadlines return `Timeout` immediately — without
/// parking, in both façades. The elapsed bound is generous (one
/// scheduling quantum), but a real park would be unbounded here: nothing
/// ever sends, so only the deadline path can return at all.
#[test]
fn past_deadline_timed_ops_return_immediately() {
    let _serial = TIMER_LOCK.lock();
    let bq: BlockingQueue<u64, OptimalQueue> =
        BlockingQueue::new(OptimalQueue::with_capacity_and_threads(2, 1));
    let mut h = bq.register();
    let start = Instant::now();
    assert_eq!(
        bq.recv_deadline(&mut h, Instant::now()),
        Err(RecvTimeoutError::Timeout),
        "empty queue, due deadline"
    );
    assert_eq!(
        bq.recv_timeout(&mut h, Duration::ZERO),
        Err(RecvTimeoutError::Timeout),
        "zero timeout"
    );
    bq.try_send(&mut h, 1).unwrap();
    bq.try_send(&mut h, 2).unwrap();
    assert_eq!(
        bq.send_deadline(&mut h, 3, Instant::now() - Duration::from_secs(1)),
        Err(SendTimeoutError::Timeout(3)),
        "full queue, past deadline hands the value back"
    );
    ec_quiescent(bq.not_empty_event(), "blocking past-deadline recv");
    ec_quiescent(bq.not_full_event(), "blocking past-deadline send");

    let aq: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(2, 1));
    let mut ah = aq.register();
    assert_eq!(
        pollster::block_on(aq.recv_deadline(&mut ah, Instant::now())),
        Err(RecvTimeoutError::Timeout)
    );
    aq.try_send(&mut ah, 1).unwrap();
    aq.try_send(&mut ah, 2).unwrap();
    assert_eq!(
        pollster::block_on(aq.send_timeout(&mut ah, 3, Duration::ZERO)),
        Err(SendTimeoutError::Timeout(3))
    );
    ec_quiescent(aq.blocking().not_empty_event(), "async past-deadline recv");
    ec_quiescent(aq.blocking().not_full_event(), "async past-deadline send");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "a due deadline parked: {:?}",
        start.elapsed()
    );
}

/// Cancelling a pending timed future must disarm its wheel timer and
/// release its waker registration — a leaked timer would wake a stranger
/// an hour later; a leaked registration would miscount waiters forever.
#[test]
fn cancelled_timed_futures_disarm_their_timers() {
    let _serial = TIMER_LOCK.lock();
    let q: AsyncQueue<u64, OptimalQueue> =
        AsyncQueue::new(OptimalQueue::with_capacity_and_threads(2, 1));
    let mut h = q.register();
    let far = Duration::from_secs(3600);
    let baseline = timerwheel::armed_count();

    // Pending timed recv: one registration, one armed timer.
    {
        let (_flag, waker) = flag_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = q.recv_timeout(&mut h, far);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending(), "empty");
        assert_eq!(q.blocking().not_empty_event().registered_wakers(), 1);
        assert_eq!(timerwheel::armed_count(), baseline + 1, "timer armed");
    } // dropped: cancelled mid-wait
    assert_eq!(timerwheel::armed_count(), baseline, "recv timer disarmed");
    ec_quiescent(q.blocking().not_empty_event(), "after timed recv cancel");

    // Same for a pending timed send on a full queue.
    q.try_send(&mut h, 1).unwrap();
    q.try_send(&mut h, 2).unwrap();
    {
        let (_flag, waker) = flag_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = q.send_timeout(&mut h, 9, far);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending(), "full");
        assert_eq!(timerwheel::armed_count(), baseline + 1);
    }
    assert_eq!(timerwheel::armed_count(), baseline, "send timer disarmed");
    ec_quiescent(q.blocking().not_full_event(), "after timed send cancel");
    assert_eq!(q.len(), 2, "cancelled timed send deposited nothing");
}

/// Spurious wakes neither satisfy nor break a timed wait: a receiver
/// bombarded with content-free `wake_all`s keeps waiting, takes a late
/// value over its (not yet due) deadline, and — when no value ever
/// arrives — still times out rather than hanging.
#[test]
fn timed_recv_survives_spurious_wakes() {
    // Thread bound 4: two successive receiver threads plus the main
    // handle (registrations are permanent slots, not leases).
    let q: Arc<BlockingQueue<u64, OptimalQueue>> = Arc::new(BlockingQueue::new(
        OptimalQueue::with_capacity_and_threads(2, 4),
    ));
    // Phase 1: spurious wakes, then a real value — the value wins.
    let q2 = Arc::clone(&q);
    let rx = std::thread::spawn(move || {
        let mut h = q2.register();
        q2.recv_timeout(&mut h, Duration::from_secs(30))
    });
    let mut h = q.register();
    for _ in 0..50 {
        q.not_empty_event().wake_all(); // generation bump, no publish
        std::thread::yield_now();
    }
    q.try_send(&mut h, 41).unwrap();
    assert_eq!(rx.join().unwrap(), Ok(41), "value beats a far deadline");

    // Phase 2: only spurious wakes — the deadline must still fire.
    let q2 = Arc::clone(&q);
    let rx = std::thread::spawn(move || {
        let mut h = q2.register();
        let start = Instant::now();
        let r = q2.recv_timeout(&mut h, Duration::from_millis(40));
        (r, start.elapsed())
    });
    for _ in 0..50 {
        q.not_empty_event().wake_all();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (r, waited) = rx.join().unwrap();
    assert_eq!(r, Err(RecvTimeoutError::Timeout));
    assert!(
        waited >= Duration::from_millis(40),
        "timed out early at {waited:?}: a spurious wake was mistaken for a deadline"
    );
    ec_quiescent(q.not_empty_event(), "after spurious-wake rounds");
}

// ---------------------------------------------------------------------------
// Element-wise pool-spec stress under cancellation
// ---------------------------------------------------------------------------

/// Shared history recorder assigning operation ids in logged-invoke
/// order (the `check_history_pool` convention), as in
/// `tests/linearizability_stress.rs`.
struct Recorder {
    inner: Mutex<History>,
    next: Mutex<usize>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            inner: Mutex::new(History::new()),
            next: Mutex::new(0),
        }
    }

    fn invoke(&self, tid: usize, op: Op) -> OpId {
        let mut h = self.inner.lock();
        let mut n = self.next.lock();
        let id = OpId(*n);
        *n += 1;
        h.push(HistoryEvent::Invoke { id, tid, op });
        id
    }

    fn ret(&self, id: OpId, ret: Ret) {
        self.inner.lock().push(HistoryEvent::Return { id, ret });
    }
}

/// Tiny deterministic per-seed generator (split-mix), as in the
/// linearizability stress.
struct SeedMix(u64);

impl SeedMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Three threads hammer one sharded async queue with bounded-poll
/// send/recv futures — cancelling whatever stays pending — while every
/// element-op lands in a history. Asserts, per round:
///
/// * the history satisfies the pool spec (cancelled ops recorded as
///   refusals, which are always admissible);
/// * conservation: successful sends = successful receives + drain;
/// * no leaked waiters on either eventcount at quiescence.
#[test]
fn cancellation_stress_pool_spec_and_conservation() {
    let rounds = if std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0") {
        5
    } else {
        25
    };
    for seed in [1u64, 2, 3] {
        for round in 0..rounds {
            // Thread bound 4: the three stress threads plus the final
            // drain handle.
            let q: Arc<AsyncQueue<u64, ShardedQueue<OptimalQueue>>> = Arc::new(AsyncQueue::new(
                ShardedQueue::<OptimalQueue>::optimal(4, 2, 4),
            ));
            let rec = Arc::new(Recorder::new());
            let sent = Arc::new(Mutex::new(Vec::<u64>::new()));
            let got = Arc::new(Mutex::new(Vec::<u64>::new()));
            let base = 1 + round as u64 * 1_000 + seed * 1_000_000;

            std::thread::scope(|s| {
                for tid in 0..3usize {
                    let q = Arc::clone(&q);
                    let rec = Arc::clone(&rec);
                    let sent = Arc::clone(&sent);
                    let got = Arc::clone(&got);
                    s.spawn(move || {
                        let mut h = q.register();
                        let mut mix = SeedMix(seed ^ ((tid as u64) << 32) ^ round as u64);
                        for i in 0..6u64 {
                            let attempts = 1 + (mix.next() % 3) as usize;
                            if mix.next().is_multiple_of(2) {
                                let v = base + tid as u64 * 100 + i;
                                let id = rec.invoke(tid, Op::Enqueue(v));
                                match poll_bounded(q.send(&mut h, v), attempts) {
                                    Some(Ok(())) => {
                                        sent.lock().push(v);
                                        rec.ret(id, Ret::EnqOk);
                                    }
                                    Some(Err(_)) => unreachable!("never closed"),
                                    // Cancelled pending send: the value
                                    // never entered the queue — a refusal.
                                    None => rec.ret(id, Ret::EnqFull),
                                }
                            } else {
                                let id = rec.invoke(tid, Op::Dequeue);
                                match poll_bounded(q.recv(&mut h), attempts) {
                                    Some(Some(v)) => {
                                        got.lock().push(v);
                                        rec.ret(id, Ret::DeqVal(v));
                                    }
                                    Some(None) => unreachable!("never closed"),
                                    // Cancelled pending recv: took nothing.
                                    None => rec.ret(id, Ret::DeqEmpty),
                                }
                            }
                            std::thread::yield_now();
                        }
                    });
                }
            });

            // Quiescence: drain the queue through the sync view and check
            // conservation element-wise.
            let mut h = q.register();
            let mut drained = Vec::new();
            while let Ok(v) = q.try_recv(&mut h) {
                drained.push(v);
            }
            let mut sent = Arc::try_unwrap(sent).unwrap().into_inner();
            let mut received = Arc::try_unwrap(got).unwrap().into_inner();
            received.extend(drained);
            sent.sort_unstable();
            received.sort_unstable();
            assert_eq!(
                sent, received,
                "conservation under cancellation (seed {seed}, round {round})"
            );

            // No leaked waiters on either side.
            ec_quiescent(q.blocking().not_full_event(), "stress not_full");
            ec_quiescent(q.blocking().not_empty_event(), "stress not_empty");

            // The recorded history satisfies the pool spec.
            let history = rec.inner.lock().clone();
            assert!(
                check_history_pool(&history, 4).is_linearizable(),
                "async cancellation history broke the pool spec \
                 (seed {seed}, round {round}):\n{}",
                history.render()
            );
        }
    }
}
