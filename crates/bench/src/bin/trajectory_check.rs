//! **Trajectory sanity check** — scans `BENCH_trajectory.jsonl` for
//! headline numbers that violate their experiments' stated bars, so a
//! regression (or an over-claim) is flagged the moment the line lands
//! instead of months later when someone plots the file.
//!
//! The bars, from the experiments' own claims:
//!
//! * `E15-payload-4k`: `grant_speedup_vs_move ≥ 1.0` — the grant path is
//!   the move path minus two payload copies, so it must not lose;
//! * `E16-timed-pairs`: `uncontended_overhead_pct ≤ 5` — a timed op that
//!   never parks never reads the clock (DESIGN.md §13);
//! * `E17-obs-overhead`: `overhead_pct ≤ 5` — the always-on counters are
//!   relaxed increments on pre-owned cache lines (DESIGN.md §14).
//!
//! **Smoke rows are non-binding**: `MEMBQ_SMOKE=1` workloads are sized to
//! check plumbing, not performance, and percent-level comparisons drown
//! in their noise (the archived trajectory demonstrates this — smoke
//! E15 rows report speedups of ~0.45x that full-size runs do not
//! reproduce). A smoke-row violation is therefore a *warning* (exit 0);
//! only a full-size violation fails the check (exit 1).
//!
//! **Superseded rows are non-binding too**: the trajectory is an
//! append-only log and re-measurement supersedes — the E17 side files
//! deliberately converge on per-lane peaks across runs, so early rows of
//! a session can violate a bar the settled comparison meets. Only the
//! *last* row of each experiment is binding; earlier violations warn.
//!
//! Run: `cargo run -p bq-bench --bin trajectory_check [path]`

use bq_bench::meta::{json_bool, json_f64, json_str};

/// One flagged line.
#[derive(Debug, PartialEq)]
struct Flag {
    line_no: usize,
    experiment: String,
    detail: String,
    /// Smoke rows warn; full-size rows fail.
    binding: bool,
}

/// Check one trajectory line against its experiment's bar.
fn check_line(line_no: usize, line: &str) -> Option<Flag> {
    let experiment = json_str(line, "experiment")?;
    let smoke = json_bool(line, "smoke").unwrap_or(false);
    let violation = match experiment {
        "E15-payload-4k" => {
            let v = json_f64(line, "grant_speedup_vs_move")?;
            (v < 1.0).then(|| format!("grant_speedup_vs_move {v:.3} < 1.0"))
        }
        "E16-timed-pairs" => {
            let v = json_f64(line, "uncontended_overhead_pct")?;
            (v > 5.0).then(|| format!("uncontended_overhead_pct {v:.1} > 5"))
        }
        "E17-obs-overhead" => {
            let v = json_f64(line, "overhead_pct")?;
            (v > 5.0).then(|| format!("overhead_pct {v:.1} > 5"))
        }
        _ => None,
    }?;
    Some(Flag {
        line_no,
        experiment: experiment.to_string(),
        detail: violation,
        binding: !smoke,
    })
}

/// Scan a whole trajectory file: per-line bar checks, then demote
/// binding violations that a later row of the same experiment
/// supersedes. Returns (lines checked, flags).
fn evaluate(text: &str) -> (usize, Vec<Flag>) {
    let mut checked = 0usize;
    let mut flags = Vec::new();
    // Last row per experiment: later rows supersede earlier ones (the
    // log is append-only; re-measurement is the fix for a bad number).
    let mut last_row: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        checked += 1;
        if let Some(exp) = json_str(line, "experiment") {
            last_row.insert(exp.to_string(), i + 1);
        }
        if let Some(f) = check_line(i + 1, line) {
            flags.push(f);
        }
    }
    for f in &mut flags {
        if f.binding && last_row.get(&f.experiment) != Some(&f.line_no) {
            f.binding = false;
            f.detail.push_str(" [superseded by a later row]");
        }
    }
    (checked, flags)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trajectory.jsonl".to_string());
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("trajectory_check: no {path} — nothing to check");
        return;
    };
    let (checked, flags) = evaluate(&text);
    let binding = flags.iter().filter(|f| f.binding).count();
    for f in &flags {
        println!(
            "{}: {path}:{} {}: {}",
            if f.binding {
                "FAIL"
            } else {
                "warn (non-binding)"
            },
            f.line_no,
            f.experiment,
            f.detail
        );
    }
    println!(
        "trajectory_check: {checked} lines, {} flagged ({} binding)",
        flags.len(),
        binding
    );
    if binding > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_outliers_warn_and_full_size_outliers_fail() {
        // The shapes actually present in the archived trajectory: smoke
        // E15 grant speedups far below 1x, smoke E16 overheads past the
        // 5% bar. Both must flag as non-binding.
        let smoke_e15 = "{\"git_sha\":\"a\",\"smoke\":true,\"host_cores\":1,\
             \"experiment\":\"E15-payload-4k\",\"grant_speedup_vs_move\":0.4541911270226061}";
        let f = check_line(6, smoke_e15).expect("flagged");
        assert!(!f.binding, "smoke rows warn only");
        assert!(f.detail.contains("0.454"));

        let smoke_e16 = "{\"git_sha\":\"a\",\"smoke\":true,\"host_cores\":1,\
             \"experiment\":\"E16-timed-pairs\",\"uncontended_overhead_pct\":6.579}";
        assert!(!check_line(5, smoke_e16).unwrap().binding);

        let full_e17 = "{\"git_sha\":\"a\",\"smoke\":false,\"host_cores\":8,\
             \"experiment\":\"E17-obs-overhead\",\"overhead_pct\":9.1}";
        assert!(check_line(1, full_e17).unwrap().binding, "full-size fails");
    }

    #[test]
    fn in_bar_lines_and_unknown_experiments_pass() {
        let good_e15 = "{\"smoke\":false,\"experiment\":\"E15-payload-4k\",\
             \"grant_speedup_vs_move\":2.61}";
        assert_eq!(check_line(3, good_e15), None);
        let good_e17 = "{\"smoke\":true,\"experiment\":\"E17-obs-overhead\",\
             \"overhead_pct\":-0.3}";
        assert_eq!(check_line(4, good_e17), None);
        let other = "{\"smoke\":false,\"experiment\":\"E10a-pairs\",\"mops\":1.0}";
        assert_eq!(check_line(9, other), None);
        assert_eq!(check_line(1, "not json"), None);
    }

    #[test]
    fn later_rows_supersede_earlier_violations() {
        // The E17 converging protocol in action: an early full-size row
        // violates the bar, the settled re-measurement meets it. Only
        // the last row per experiment binds; a violating last row still
        // fails.
        let log = "{\"smoke\":false,\"experiment\":\"E17-obs-overhead\",\"overhead_pct\":23.8}\n\
             {\"smoke\":false,\"experiment\":\"E16-timed-pairs\",\"uncontended_overhead_pct\":16.7}\n\
             {\"smoke\":false,\"experiment\":\"E17-obs-overhead\",\"overhead_pct\":-3.0}\n";
        let (checked, flags) = evaluate(log);
        assert_eq!(checked, 3);
        assert_eq!(flags.len(), 2);
        let e17 = flags.iter().find(|f| f.experiment.contains("E17")).unwrap();
        assert!(!e17.binding, "superseded by the in-bar re-measurement");
        assert!(e17.detail.contains("superseded"), "{:?}", e17.detail);
        let e16 = flags.iter().find(|f| f.experiment.contains("E16")).unwrap();
        assert!(e16.binding, "a violating last row still fails");
    }
}
