//! Multi-**process** pairs workload: 2 producer and 2 consumer processes
//! share one `ShmQueue` through `fork`, logging every operation to a
//! shared [`OpLog`]. The parent then checks
//!
//! 1. **element conservation** — every value enqueued is dequeued exactly
//!    once, and nothing else ever comes out, and
//! 2. **pool linearizability** — the reconstructed history passes the
//!    Wing–Gong checker against the bounded-queue *pool* specification
//!    (`bq_sim::lincheck::check_history_pool`).
//!
//! Blocking retries are logged as **one** operation (invoke before the
//! first attempt, return after the successful one), which only *widens*
//! the operation's interval — the sound direction for a linearizability
//! check (see `bq_shm::oplog` docs).

use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Duration;

use bq_shm::{fork_child, ChildExit, OpKind, OpLog, RetKind, ShmQueue};
use bq_sim::controller::OpId;
use bq_sim::lincheck::{check_history_pool, History, HistoryEvent};
use bq_sim::machine::{Op, Ret};

/// Forky tests share a binary with the std test harness's threads, so
/// they are serialized (see `bq_shm::harness` docs on fork discipline).
static FORK_LOCK: Mutex<()> = Mutex::new(());

const PRODUCERS: u64 = 2;
const CONSUMERS: u64 = 2;
/// Per-producer element count. Total ops = 2·P·PER + 2·C·PER = 32 events
/// over 16 operations — comfortably inside the checker's 63-op budget.
const PER: u64 = 4;

fn yield_now() {
    // SAFETY: sched_yield has no preconditions; allocation-free (a child
    // of a threaded parent must not touch the allocator).
    unsafe {
        libc::sched_yield();
    }
}

#[test]
fn two_producer_two_consumer_processes_conserve_and_linearize() {
    let _g = FORK_LOCK.lock().unwrap();
    let q = ShmQueue::<u64>::create_anon(4).unwrap();
    let log = OpLog::create_anon(256).unwrap();

    let mut children = Vec::new();
    for p in 0..PRODUCERS {
        let q = q.clone();
        let log = log.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                for i in 0..PER {
                    let v = 1 + p * PER + i; // globally distinct, non-zero
                    let rec = log.log_invoke(p, OpKind::Enqueue, v);
                    while q.enqueue(&mut h, v).is_err() {
                        yield_now();
                    }
                    if let Some(rec) = rec {
                        log.log_return(rec, RetKind::EnqOk, 0);
                    }
                }
            })
            .unwrap(),
        );
    }
    for c in 0..CONSUMERS {
        let q = q.clone();
        let log = log.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                for _ in 0..PER {
                    let rec = log.log_invoke(PRODUCERS + c, OpKind::Dequeue, 0);
                    let v = loop {
                        if let Some(v) = q.dequeue(&mut h) {
                            break v;
                        }
                        yield_now();
                    };
                    if let Some(rec) = rec {
                        log.log_return(rec, RetKind::DeqVal, v);
                    }
                }
            })
            .unwrap(),
        );
    }

    for mut child in children {
        let end = child
            .wait_deadline(Duration::from_secs(30))
            .unwrap()
            .expect("child wedged: queue or log stopped making progress");
        assert_eq!(end, ChildExit::Exited(0));
    }

    let (events, pending) = log.reconstruct();
    assert!(pending.is_empty(), "no process died: no pending ops");
    assert_eq!(
        events.len(),
        2 * (PRODUCERS + CONSUMERS) as usize * PER as usize
    );

    // Conservation straight off the log: multiset in == multiset out.
    let mut enqueued = Vec::new();
    let mut dequeued = Vec::new();
    let mut history = History::new();
    for e in &events {
        match *e {
            bq_shm::LoggedEvent::Invoke {
                rec,
                tid,
                kind,
                value,
            } => {
                let op = match kind {
                    OpKind::Enqueue => {
                        enqueued.push(value);
                        Op::Enqueue(value)
                    }
                    OpKind::Dequeue => Op::Dequeue,
                };
                history.push(HistoryEvent::Invoke {
                    id: OpId(rec),
                    tid: tid as usize,
                    op,
                });
            }
            bq_shm::LoggedEvent::Return { rec, ret, ret_val } => {
                let ret = match ret {
                    RetKind::EnqOk => Ret::EnqOk,
                    RetKind::EnqFull => Ret::EnqFull,
                    RetKind::DeqVal => {
                        dequeued.push(ret_val);
                        Ret::DeqVal(ret_val)
                    }
                    RetKind::DeqEmpty => Ret::DeqEmpty,
                };
                history.push(HistoryEvent::Return { id: OpId(rec), ret });
            }
        }
    }

    enqueued.sort_unstable();
    dequeued.sort_unstable();
    assert_eq!(
        enqueued,
        (1..=PRODUCERS * PER).collect::<Vec<_>>(),
        "producers enqueued exactly the planned distinct values"
    );
    assert_eq!(enqueued, dequeued, "element conservation across processes");
    assert!(q.is_empty(), "all published elements were drained");

    assert!(
        check_history_pool(&history, q.capacity()).is_linearizable(),
        "cross-process history must linearize as a bounded pool:\n{}",
        history.render()
    );
}

/// A longer run past the log's usefulness: conservation via the segment's
/// scratch counters (sum + count accumulated with `fetch_add`), no
/// checker. Exercises many wrap-arounds of a tiny ring under 4 processes.
#[test]
fn long_pairs_run_conserves_sums() {
    let _g = FORK_LOCK.lock().unwrap();
    let q = ShmQueue::<u64>::create_anon(8).unwrap();
    let per: u64 = if std::env::var_os("MEMBQ_SMOKE").is_some() {
        200
    } else {
        2_000
    };

    let mut children = Vec::new();
    for p in 0..PRODUCERS {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        yield_now();
                    }
                }
            })
            .unwrap(),
        );
    }
    for _ in 0..CONSUMERS {
        let q = q.clone();
        children.push(
            fork_child(move || {
                let mut h = q.register();
                let seg = q.segment();
                // Quota: consumers split the stream evenly.
                for _ in 0..(PRODUCERS * per / CONSUMERS) {
                    let v = loop {
                        if let Some(v) = q.dequeue(&mut h) {
                            break v;
                        }
                        yield_now();
                    };
                    seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                    seg.scratch(1).fetch_add(1, Ordering::SeqCst);
                }
            })
            .unwrap(),
        );
    }
    for mut child in children {
        let end = child
            .wait_deadline(Duration::from_secs(60))
            .unwrap()
            .expect("child wedged");
        assert_eq!(end, ChildExit::Exited(0));
    }

    let n = PRODUCERS * per;
    let seg = q.segment();
    assert_eq!(seg.scratch(1).load(Ordering::SeqCst), n);
    assert_eq!(
        seg.scratch(0).load(Ordering::SeqCst),
        n * (n + 1) / 2,
        "sum of 1..=n: every element came out exactly once"
    );
    assert!(q.is_empty());
}
