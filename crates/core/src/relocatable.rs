//! **Relocatable queue layouts** — the pointer/offset split (DESIGN.md §10).
//!
//! Every hot structure in this module is `#[repr(C)]`, contains **no
//! pointers** (no `Box`, no `Vec`, no `AtomicPtr`), and addresses its own
//! parts purely by *offsets from a base address*. A structure placed into
//! caller-provided memory at one address is therefore byte-for-byte valid
//! at any other address — in particular inside an `mmap`-shared segment
//! that different processes map at different virtual addresses (`bq-shm`),
//! or memcpy'd wholesale (how [`SeqRingQueue`](crate::SeqRingQueue) now
//! implements `Clone`).
//!
//! The split is: **shared state** (the `#[repr(C)]` header + trailing
//! arrays, all offset-addressed) vs **view** (a per-process accessor like
//! [`RelocRing`] holding the locally-mapped base pointer). Views are cheap
//! `Copy` values reconstructed by each process from its own mapping; only
//! views hold pointers, and views are never stored in shared memory.
//!
//! Three layouts are provided, each with a [`Layout`]-computing
//! constructor pair (`layout` / `init_at` / `from_raw`):
//!
//! * [`RelocSeqRing`] — the Figure 1 sequential ring
//!   ([`SeqRingQueue`](crate::SeqRingQueue) is now a thin heap-backed
//!   wrapper over it);
//! * [`RelocRing<T>`] — the Vyukov-style sequenced MPMC ring
//!   (`bq-baselines`' `VyukovQueue` wraps `RelocRing<u64>`; `bq-shm`'s
//!   `ShmQueue<T>` reuses the identical slot layout under a
//!   crash-consistent publication protocol);
//! * [`AnnounceBoard`] — the Listing 5 announcement array + the 2·T
//!   reusable [`RelocEnqOp`] descriptor pool
//!   ([`OptimalQueue`](crate::OptimalQueue) serves its helping machinery
//!   out of it).
//!
//! ## Layout rules (stability contract)
//!
//! 1. `#[repr(C)]` on every shared struct; field order is ABI.
//! 2. No pointer-sized-dependent fields: everything is `u64`/`AtomicU64`
//!    or a `Pod` payload, so 32-/64-bit layouts agree.
//! 3. Contended words are isolated with `#[repr(C, align(128))]`
//!    ([`PadAtomicU64`]) — two cache lines, matching `CachePadded`.
//! 4. Each layout starts with a magic word; `from_raw` refuses memory
//!    that does not carry it.
//! 5. Compile-time `size_of`/`align_of`/`offset_of` assertions pin every
//!    struct (this module, bottom); an accidental field reorder is a
//!    compile error, not a live-segment corruption.
//!
//! Element types crossing a segment boundary must be [`Pod`]: `Copy`
//! (hence no `Drop` — a crashed process cannot run destructors, so a
//! type that *needs* dropping can never be crash-safe in shared memory)
//! and free of pointers/references (a pointer is only meaningful in the
//! address space that created it).

use std::alloc::Layout;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::queue::Full;
use crate::simx::SimAtomicU64;

/// Marker for **plain-old-data** element types that may live in
/// relocatable / shared memory.
///
/// # Safety
///
/// Implementors must guarantee:
///
/// * no pointers, references, or other address-space-local values —
///   the bytes must mean the same thing in every process;
/// * any bit pattern obtained from a *published* slot is a value the
///   type can hold (the protocols never read unpublished slots, so
///   torn writes by a crashed process are never observed);
/// * `Copy` (statically enforced), which also rules out `Drop`: shared
///   segments are reclaimed by `munmap`, never by running destructors,
///   and a process can die between any two instructions.
pub unsafe trait Pod: Copy + Send + 'static {}

// SAFETY: primitive integers/floats have no pointers, no Drop, and
// accept any bit pattern (floats: every pattern is some float).
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for u128 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for i128 {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
// SAFETY: an array of Pod is Pod (no padding between elements).
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Round `n` up to the next multiple of `align` (a power of two).
pub const fn align_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

/// An `AtomicU64` alone on (a pair of) cache lines — the relocatable,
/// `#[repr(C)]` equivalent of `crossbeam_utils::CachePadded<AtomicU64>`.
#[repr(C, align(128))]
pub struct PadAtomicU64(pub AtomicU64);

impl PadAtomicU64 {
    /// A padded atomic starting at `v`.
    pub const fn new(v: u64) -> Self {
        PadAtomicU64(AtomicU64::new(v))
    }
}

// ---------------------------------------------------------------------------
// RelocBuf — an owned, aligned, zeroed allocation for heap-backed wrappers
// ---------------------------------------------------------------------------

/// An owned, zero-initialized, aligned raw allocation that heap-backed
/// wrappers place relocatable layouts into. This is the *local* half of
/// the pointer/offset split: `RelocBuf` owns the bytes, a view type
/// ([`RelocRing`], [`AnnounceBoard`], …) addresses into them.
pub struct RelocBuf {
    ptr: NonNull<u8>,
    layout: Layout,
}

impl RelocBuf {
    /// Allocate `layout` zeroed. Panics on allocation failure (parity
    /// with `Box`/`Vec`).
    pub fn zeroed(layout: Layout) -> RelocBuf {
        assert!(layout.size() > 0, "zero-sized relocatable layout");
        // SAFETY: size checked non-zero above.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(ptr) else {
            std::alloc::handle_alloc_error(layout);
        };
        RelocBuf { ptr, layout }
    }

    /// Base address of the allocation.
    pub fn base(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Allocation size in bytes.
    pub fn len(&self) -> usize {
        self.layout.size()
    }

    /// `true` iff the allocation is zero bytes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.layout.size() == 0
    }

    /// Byte-for-byte copy into a fresh allocation at a (generally)
    /// different address — the memcpy-relocation primitive. Only sound
    /// for relocatable layouts, which is everything this module defines.
    pub fn duplicate(&self) -> RelocBuf {
        let dup = RelocBuf::zeroed(self.layout);
        // SAFETY: same layout, distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), dup.ptr.as_ptr(), self.layout.size())
        };
        dup
    }
}

impl Drop for RelocBuf {
    fn drop(&mut self) {
        // SAFETY: allocated with exactly this layout in `zeroed`.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) };
    }
}

// SAFETY: RelocBuf is a uniquely-owned byte allocation; sending it (or
// sharing references to it) is as safe as the access discipline of the
// layout placed inside, which each wrapper type vouches for with its own
// Send/Sync impls.
unsafe impl Send for RelocBuf {}
unsafe impl Sync for RelocBuf {}

// ---------------------------------------------------------------------------
// RelocSeqRing — the Figure 1 sequential ring, relocatable
// ---------------------------------------------------------------------------

/// Header of the sequential ring: magic + capacity + the two Figure 1
/// positioning counters. `C` value slots (`u64`) follow immediately.
#[repr(C)]
pub struct SeqRingHdr {
    /// [`SEQ_RING_MAGIC`].
    pub magic: u64,
    /// Capacity `C`.
    pub capacity: u64,
    /// Total successful enqueues.
    pub tail: u64,
    /// Total successful dequeues.
    pub head: u64,
}

/// Magic word identifying an initialized [`RelocSeqRing`] region.
pub const SEQ_RING_MAGIC: u64 = 0x4d42_5153_4551_5231; // "MBQSEQR1"

/// View over a Figure 1 sequential bounded ring placed in caller-provided
/// memory. Single-owner (`&mut` API); the heap-backed owner is
/// [`SeqRingQueue`](crate::SeqRingQueue).
#[derive(Clone, Copy)]
pub struct RelocSeqRing {
    hdr: NonNull<SeqRingHdr>,
}

impl RelocSeqRing {
    /// Memory layout for capacity `c`.
    pub fn layout(c: usize) -> Layout {
        assert!(c > 0, "capacity must be positive");
        Layout::from_size_align(
            std::mem::size_of::<SeqRingHdr>() + c * std::mem::size_of::<u64>(),
            std::mem::align_of::<SeqRingHdr>(),
        )
        .expect("seq ring layout")
    }

    /// Initialize an empty ring of capacity `c` at `base` and return its
    /// view.
    ///
    /// # Safety
    ///
    /// `base` must be valid for writes of [`Self::layout`]`(c)` bytes,
    /// aligned to that layout, and exclusively owned by the caller.
    pub unsafe fn init_at(base: *mut u8, c: usize) -> RelocSeqRing {
        let _ = Self::layout(c); // validates c > 0
        let hdr = base.cast::<SeqRingHdr>();
        hdr.write(SeqRingHdr {
            magic: SEQ_RING_MAGIC,
            capacity: c as u64,
            tail: 0,
            head: 0,
        });
        // Slots: zeroed by convention (callers hand over zeroed memory or
        // accept stale values — the counters make them unreachable).
        RelocSeqRing {
            hdr: NonNull::new_unchecked(hdr),
        }
    }

    /// Re-attach to a previously initialized ring at `base` (e.g. after a
    /// memcpy relocation). Panics if the magic word is absent.
    ///
    /// # Safety
    ///
    /// `base` must point to memory initialized by [`Self::init_at`] (or a
    /// byte-for-byte copy of it) and stay valid and exclusively owned for
    /// the view's lifetime.
    pub unsafe fn from_raw(base: *mut u8) -> RelocSeqRing {
        let hdr = base.cast::<SeqRingHdr>();
        assert_eq!((*hdr).magic, SEQ_RING_MAGIC, "not a RelocSeqRing region");
        RelocSeqRing {
            hdr: NonNull::new_unchecked(hdr),
        }
    }

    fn hdr(&self) -> &SeqRingHdr {
        // SAFETY: view invariant — hdr points at an initialized header.
        unsafe { self.hdr.as_ref() }
    }

    fn hdr_mut(&mut self) -> &mut SeqRingHdr {
        // SAFETY: &mut self — the single-owner discipline gives
        // exclusive access.
        unsafe { self.hdr.as_mut() }
    }

    fn slots(&self) -> *mut u64 {
        // SAFETY: slots follow the header per `layout`.
        unsafe { self.hdr.as_ptr().add(1).cast::<u64>() }
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> usize {
        self.hdr().capacity as usize
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        (self.hdr().tail - self.hdr().head) as usize
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.hdr().head == self.hdr().tail
    }

    /// Is the ring full?
    pub fn is_full(&self) -> bool {
        self.hdr().tail == self.hdr().head + self.hdr().capacity
    }

    /// The value at absolute position `pos` (`head ≤ pos < tail`).
    pub fn get_abs(&self, pos: u64) -> u64 {
        debug_assert!(self.hdr().head <= pos && pos < self.hdr().tail);
        // SAFETY: pos % C is in bounds.
        unsafe {
            self.slots()
                .add((pos % self.hdr().capacity) as usize)
                .read()
        }
    }

    /// Total successful enqueues (the Figure 1 `tail` counter).
    pub fn tail(&self) -> u64 {
        self.hdr().tail
    }

    /// Total successful dequeues (the Figure 1 `head` counter).
    pub fn head(&self) -> u64 {
        self.hdr().head
    }

    /// Enqueue; hands the value back when full.
    pub fn enqueue(&mut self, v: u64) -> Result<(), Full> {
        if self.is_full() {
            return Err(Full(v));
        }
        let c = self.hdr().capacity;
        let tail = self.hdr().tail;
        // SAFETY: tail % C is in bounds; &mut self gives exclusivity.
        unsafe { self.slots().add((tail % c) as usize).write(v) };
        self.hdr_mut().tail += 1;
        Ok(())
    }

    /// Dequeue the oldest element.
    pub fn dequeue(&mut self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let c = self.hdr().capacity;
        let head = self.hdr().head;
        // SAFETY: head % C is in bounds.
        let v = unsafe { self.slots().add((head % c) as usize).read() };
        self.hdr_mut().head += 1;
        Some(v)
    }

    /// Peek at the oldest element without removing it.
    pub fn peek(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.get_abs(self.hdr().head))
        }
    }
}

// ---------------------------------------------------------------------------
// RelocRing<T> — the Vyukov-style sequenced MPMC ring, relocatable
// ---------------------------------------------------------------------------

/// Header of the sequenced ring: magic + capacity, then the two
/// cache-padded positioning counters. `C` [`RelocSlot<T>`]s follow at the
/// next `RelocSlot<T>`-aligned offset.
#[repr(C, align(128))]
pub struct RingHdr {
    /// [`RING_MAGIC`].
    pub magic: u64,
    /// Capacity `C`.
    pub capacity: u64,
    /// Producer counter (cache-padded).
    pub tail: PadAtomicU64,
    /// Consumer counter (cache-padded).
    pub head: PadAtomicU64,
}

/// Magic word identifying an initialized [`RelocRing`] region.
pub const RING_MAGIC: u64 = 0x4d42_5153_4551_5232; // "MBQSEQR2"

/// One sequenced slot: the per-slot round word (exactly the Θ(C)
/// metadata the paper's lower bound prices) and the payload.
#[repr(C)]
pub struct RelocSlot<T> {
    /// The sequence/round word. Encoding is protocol-defined: plain
    /// Vyukov rounds here, the packed round/state/owner word in
    /// `bq-shm`'s crash-consistent protocol.
    pub seq: AtomicU64,
    /// The payload; written only by the slot's unique round-owner.
    pub val: UnsafeCell<T>,
}

/// View over a sequenced MPMC ring placed in caller-provided memory.
///
/// The view is `Copy` and per-process: each process (or each heap owner)
/// reconstructs it from its own mapping of the shared bytes via
/// [`from_raw`](Self::from_raw). The plain Vyukov protocol is provided as
/// the `vy_*` methods; `bq-shm` drives the same layout under its
/// crash-consistent protocol through the raw accessors.
pub struct RelocRing<T: Pod> {
    hdr: NonNull<RingHdr>,
    slots: NonNull<RelocSlot<T>>,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for RelocRing<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Pod> Copy for RelocRing<T> {}

impl<T: Pod> RelocRing<T> {
    const fn slots_offset() -> usize {
        align_up(
            std::mem::size_of::<RingHdr>(),
            std::mem::align_of::<RelocSlot<T>>(),
        )
    }

    /// Memory layout for capacity `c ≥ 2` (the sequence encoding needs
    /// at least two slots; see `VyukovQueue::with_capacity`).
    pub fn layout(c: usize) -> Layout {
        assert!(c >= 2, "sequenced rings require capacity >= 2");
        let align = std::mem::align_of::<RingHdr>().max(std::mem::align_of::<RelocSlot<T>>());
        Layout::from_size_align(
            Self::slots_offset() + c * std::mem::size_of::<RelocSlot<T>>(),
            align,
        )
        .expect("ring layout")
    }

    /// Initialize an empty ring of capacity `c` at `base` and return its
    /// view: slot `i` gets sequence word `i` (Vyukov's "free for round
    /// `i`"), payloads zeroed.
    ///
    /// # Safety
    ///
    /// `base` must be valid for writes of [`Self::layout`]`(c)` bytes and
    /// aligned to that layout; no other view may be concurrently
    /// initializing the same region.
    pub unsafe fn init_at(base: *mut u8, c: usize) -> RelocRing<T> {
        let _ = Self::layout(c);
        let hdr = base.cast::<RingHdr>();
        hdr.write(RingHdr {
            magic: RING_MAGIC,
            capacity: c as u64,
            tail: PadAtomicU64::new(0),
            head: PadAtomicU64::new(0),
        });
        let slots = base.add(Self::slots_offset()).cast::<RelocSlot<T>>();
        for i in 0..c {
            let s = slots.add(i);
            (*s).seq = AtomicU64::new(i as u64);
            std::ptr::write_bytes((*s).val.get(), 0, 1);
        }
        RelocRing {
            hdr: NonNull::new_unchecked(hdr),
            slots: NonNull::new_unchecked(slots),
            _pd: PhantomData,
        }
    }

    /// Re-attach to an initialized ring at `base` (this process's mapping
    /// of it). Panics if the magic word is absent.
    ///
    /// # Safety
    ///
    /// `base` must point to memory initialized by [`Self::init_at`] for
    /// the same `T` (or a byte copy / shared mapping of it) and stay
    /// valid for the view's lifetime.
    pub unsafe fn from_raw(base: *mut u8) -> RelocRing<T> {
        let hdr = base.cast::<RingHdr>();
        assert_eq!((*hdr).magic, RING_MAGIC, "not a RelocRing region");
        let slots = base.add(Self::slots_offset()).cast::<RelocSlot<T>>();
        RelocRing {
            hdr: NonNull::new_unchecked(hdr),
            slots: NonNull::new_unchecked(slots),
            _pd: PhantomData,
        }
    }

    fn hdr(&self) -> &RingHdr {
        // SAFETY: view invariant.
        unsafe { self.hdr.as_ref() }
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> usize {
        self.hdr().capacity as usize
    }

    /// The producer counter.
    pub fn tail(&self) -> &AtomicU64 {
        &self.hdr().tail.0
    }

    /// The consumer counter.
    pub fn head(&self) -> &AtomicU64 {
        &self.hdr().head.0
    }

    /// The sequence word of slot `i` (`i < C`).
    pub fn seq(&self, i: usize) -> &AtomicU64 {
        debug_assert!(i < self.capacity());
        // SAFETY: bounds checked above; slots array is C entries.
        unsafe { &(*self.slots.as_ptr().add(i)).seq }
    }

    /// Write slot `i`'s payload.
    ///
    /// # Safety
    ///
    /// Caller must hold exclusive round-ownership of slot `i` per the
    /// governing protocol (e.g. won the claiming CAS for this round).
    pub unsafe fn val_write(&self, i: usize, v: T) {
        debug_assert!(i < self.capacity());
        (*self.slots.as_ptr().add(i)).val.get().write(v);
    }

    /// Read slot `i`'s payload.
    ///
    /// # Safety
    ///
    /// Caller must hold round-ownership of slot `i` and the payload must
    /// have been published per the governing protocol.
    pub unsafe fn val_read(&self, i: usize) -> T {
        debug_assert!(i < self.capacity());
        (*self.slots.as_ptr().add(i)).val.get().read()
    }

    /// Occupancy estimate from the counters (exact when quiescent).
    pub fn counter_len(&self) -> usize {
        let t = self.tail().load(Ordering::SeqCst);
        let h = self.head().load(Ordering::SeqCst);
        t.saturating_sub(h) as usize
    }

    // -- the plain Vyukov protocol over this layout ------------------------

    /// Vyukov `enqueue`: claim the tail round with a CAS, write the
    /// payload, release the slot's sequence word. May report full
    /// spuriously under concurrency (the design's documented relaxation).
    pub fn vy_enqueue(&self, v: T) -> Result<(), T> {
        let c = self.capacity() as u64;
        let mut pos = self.tail().load(Ordering::Relaxed);
        loop {
            let slot = (pos % c) as usize;
            let seq = self.seq(slot).load(Ordering::Acquire);
            if seq == pos {
                if self
                    .tail()
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: winning the tail CAS grants exclusive write
                    // access to this slot for this round.
                    unsafe { self.val_write(slot, v) };
                    self.seq(slot).store(pos + 1, Ordering::Release);
                    return Ok(());
                }
                pos = self.tail().load(Ordering::Relaxed);
            } else if seq < pos {
                // The slot still carries last round's element: full.
                return Err(v);
            } else {
                pos = self.tail().load(Ordering::Relaxed);
            }
        }
    }

    /// Vyukov `dequeue`: the mirror of [`vy_enqueue`](Self::vy_enqueue).
    pub fn vy_dequeue(&self) -> Option<T> {
        let c = self.capacity() as u64;
        let mut pos = self.head().load(Ordering::Relaxed);
        loop {
            let slot = (pos % c) as usize;
            let seq = self.seq(slot).load(Ordering::Acquire);
            if seq == pos + 1 {
                if self
                    .head()
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: winning the head CAS grants exclusive read
                    // access for this round.
                    let v = unsafe { self.val_read(slot) };
                    self.seq(slot).store(pos + c, Ordering::Release);
                    return Some(v);
                }
                pos = self.head().load(Ordering::Relaxed);
            } else if seq < pos + 1 {
                return None;
            } else {
                pos = self.head().load(Ordering::Relaxed);
            }
        }
    }

    /// Native batch enqueue: scan a run of free slots, claim the whole
    /// run with one tail CAS, fill and release in order (DESIGN.md §8.1's
    /// slot-run fast path, verbatim on the relocatable layout).
    pub fn vy_enqueue_many(&self, vs: &[T]) -> usize {
        let c = self.capacity() as u64;
        let cap = self.capacity();
        let mut done = 0usize;
        while done < vs.len() {
            let pos = self.tail().load(Ordering::Relaxed);
            let want = (vs.len() - done).min(cap);
            let mut m = 0usize;
            while m < want {
                let slot = ((pos + m as u64) % c) as usize;
                if self.seq(slot).load(Ordering::Acquire) != pos + m as u64 {
                    break;
                }
                m += 1;
            }
            if m == 0 {
                let slot = (pos % c) as usize;
                let seq = self.seq(slot).load(Ordering::Acquire);
                if seq < pos {
                    // Same (relaxed) full report as the single-element op.
                    return done;
                }
                continue; // raced with another producer; re-read the tail
            }
            if self
                .tail()
                .compare_exchange(pos, pos + m as u64, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                for i in 0..m {
                    let slot = ((pos + i as u64) % c) as usize;
                    // SAFETY: the tail CAS claimed rounds pos..pos+m; each
                    // claimed slot has exactly one writer this round.
                    unsafe { self.val_write(slot, vs[done + i]) };
                    self.seq(slot).store(pos + i as u64 + 1, Ordering::Release);
                }
                done += m;
            }
        }
        done
    }

    /// Native batch dequeue: the mirror slot-run claim over the head
    /// counter (`seq == pos + i + 1` marks a filled slot).
    pub fn vy_dequeue_many(&self, max: usize, out: &mut Vec<T>) -> usize {
        let c = self.capacity() as u64;
        let cap = self.capacity();
        let mut done = 0usize;
        while done < max {
            let pos = self.head().load(Ordering::Relaxed);
            let want = (max - done).min(cap);
            let mut m = 0usize;
            while m < want {
                let slot = ((pos + m as u64) % c) as usize;
                if self.seq(slot).load(Ordering::Acquire) != pos + m as u64 + 1 {
                    break;
                }
                m += 1;
            }
            if m == 0 {
                let slot = (pos % c) as usize;
                let seq = self.seq(slot).load(Ordering::Acquire);
                if seq < pos + 1 {
                    return done; // empty (same relaxed report as vy_dequeue)
                }
                continue;
            }
            if self
                .head()
                .compare_exchange(pos, pos + m as u64, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                for i in 0..m {
                    let slot = ((pos + i as u64) % c) as usize;
                    // SAFETY: the head CAS claimed rounds pos..pos+m.
                    out.push(unsafe { self.val_read(slot) });
                    self.seq(slot).store(pos + i as u64 + c, Ordering::Release);
                }
                done += m;
            }
        }
        done
    }
}

// ---------------------------------------------------------------------------
// AnnounceBoard — the Listing 5 announcement array + descriptor pool
// ---------------------------------------------------------------------------

/// Header of the announcement board: magic + thread bound `T`. The `T`
/// announcement words follow, then (at the next 128-byte boundary) the
/// `2T` reusable descriptors.
#[repr(C, align(128))]
pub struct BoardHdr {
    /// [`BOARD_MAGIC`].
    pub magic: u64,
    /// Thread bound `T`.
    pub threads: u64,
}

/// Magic word identifying an initialized [`AnnounceBoard`] region.
pub const BOARD_MAGIC: u64 = 0x4d42_5141_4e4e_4f31; // "MBQANNO1"

/// One reusable `EnqOp` descriptor (paper Listing 5, lines 1–21) in
/// relocatable form: five atomics, no pointers — descriptor *references*
/// are packed `(index, seq)` words, so they too are position-independent.
///
/// `seq` parity: even = free, odd = claimed/published. Fields are written
/// only between claim and publication, so a reader that re-validates
/// `seq` after reading the fields observes a consistent incarnation.
#[repr(C, align(128))]
pub struct RelocEnqOp {
    /// Incarnation counter (even = free, odd = live).
    pub seq: SimAtomicU64,
    /// The paper's `successful: Bool?` — `(seq << 2) | state` so stale
    /// helpers' verdict CASes fail harmlessly after reuse.
    pub status: SimAtomicU64,
    /// The `enqueues` value this operation is bound to.
    pub e: SimAtomicU64,
    /// The element being inserted.
    pub x: SimAtomicU64,
    /// Target cell, `e % C` (cached, as in the paper).
    pub i: SimAtomicU64,
}

/// View over the Listing 5 helping machinery — the `T`-slot announcement
/// array and the `2T`-descriptor pool — placed in caller-provided memory.
/// [`OptimalQueue`](crate::OptimalQueue) owns one in a [`RelocBuf`]; a
/// future shared-memory optimal queue places the same bytes in a segment.
#[derive(Clone, Copy)]
pub struct AnnounceBoard {
    hdr: NonNull<BoardHdr>,
    ops: NonNull<SimAtomicU64>,
    pool: NonNull<RelocEnqOp>,
}

impl AnnounceBoard {
    const fn ops_offset() -> usize {
        std::mem::size_of::<BoardHdr>()
    }

    fn pool_offset(t: usize) -> usize {
        align_up(
            Self::ops_offset() + t * std::mem::size_of::<AtomicU64>(),
            std::mem::align_of::<RelocEnqOp>(),
        )
    }

    /// Memory layout for thread bound `t`.
    pub fn layout(t: usize) -> Layout {
        assert!(t > 0, "thread bound must be positive");
        Layout::from_size_align(
            Self::pool_offset(t) + 2 * t * std::mem::size_of::<RelocEnqOp>(),
            std::mem::align_of::<BoardHdr>().max(std::mem::align_of::<RelocEnqOp>()),
        )
        .expect("board layout")
    }

    /// Initialize an empty board for `t` threads at `base`: announcement
    /// slots ⊥ (0), all descriptors free (even `seq`).
    ///
    /// # Safety
    ///
    /// `base` must be valid for writes of [`Self::layout`]`(t)` bytes and
    /// aligned to that layout; no other view may concurrently initialize
    /// the same region.
    pub unsafe fn init_at(base: *mut u8, t: usize) -> AnnounceBoard {
        let _ = Self::layout(t);
        let hdr = base.cast::<BoardHdr>();
        hdr.write(BoardHdr {
            magic: BOARD_MAGIC,
            threads: t as u64,
        });
        let ops = base.add(Self::ops_offset()).cast::<SimAtomicU64>();
        for i in 0..t {
            ops.add(i).write(SimAtomicU64::new(0));
        }
        let pool = base.add(Self::pool_offset(t)).cast::<RelocEnqOp>();
        for i in 0..2 * t {
            pool.add(i).write(RelocEnqOp {
                seq: SimAtomicU64::new(0),
                status: SimAtomicU64::new(0),
                e: SimAtomicU64::new(0),
                x: SimAtomicU64::new(0),
                i: SimAtomicU64::new(0),
            });
        }
        AnnounceBoard {
            hdr: NonNull::new_unchecked(hdr),
            ops: NonNull::new_unchecked(ops),
            pool: NonNull::new_unchecked(pool),
        }
    }

    /// Re-attach to an initialized board at `base`. Panics if the magic
    /// word is absent.
    ///
    /// # Safety
    ///
    /// `base` must point to memory initialized by [`Self::init_at`] (or a
    /// copy / shared mapping of it) and stay valid for the view's
    /// lifetime.
    pub unsafe fn from_raw(base: *mut u8) -> AnnounceBoard {
        let hdr = base.cast::<BoardHdr>();
        assert_eq!((*hdr).magic, BOARD_MAGIC, "not an AnnounceBoard region");
        let t = (*hdr).threads as usize;
        AnnounceBoard {
            hdr: NonNull::new_unchecked(hdr),
            ops: NonNull::new_unchecked(base.add(Self::ops_offset()).cast::<SimAtomicU64>()),
            pool: NonNull::new_unchecked(base.add(Self::pool_offset(t)).cast::<RelocEnqOp>()),
        }
    }

    /// Thread bound `T` (= announcement slot count).
    pub fn threads(&self) -> usize {
        // SAFETY: view invariant.
        unsafe { self.hdr.as_ref().threads as usize }
    }

    /// Descriptor pool size (`2T`).
    pub fn pool_len(&self) -> usize {
        2 * self.threads()
    }

    /// Announcement slot `i` (`i < T`), holding a packed descriptor
    /// reference or 0 = ⊥.
    pub fn op(&self, i: usize) -> &SimAtomicU64 {
        debug_assert!(i < self.threads());
        // SAFETY: bounds checked above.
        unsafe { &*self.ops.as_ptr().add(i) }
    }

    /// Descriptor `i` of the pool (`i < 2T`).
    pub fn desc(&self, i: usize) -> Option<&RelocEnqOp> {
        if i < self.pool_len() {
            // SAFETY: bounds checked above.
            Some(unsafe { &*self.pool.as_ptr().add(i) })
        } else {
            None
        }
    }

    /// Iterate over the descriptor pool.
    pub fn descs(&self) -> impl Iterator<Item = &RelocEnqOp> + '_ {
        (0..self.pool_len()).map(move |i| self.desc(i).expect("in bounds"))
    }
}

// ---------------------------------------------------------------------------
// Layout stability: compile-time pins (DESIGN.md §10 rule 5)
// ---------------------------------------------------------------------------

const _: () = {
    use std::mem::{align_of, offset_of, size_of};

    // PadAtomicU64: one unit of contention isolation.
    assert!(size_of::<PadAtomicU64>() == 128);
    assert!(align_of::<PadAtomicU64>() == 128);

    // SeqRingHdr: four plain u64 words, in order.
    assert!(size_of::<SeqRingHdr>() == 32);
    assert!(align_of::<SeqRingHdr>() == 8);
    assert!(offset_of!(SeqRingHdr, magic) == 0);
    assert!(offset_of!(SeqRingHdr, capacity) == 8);
    assert!(offset_of!(SeqRingHdr, tail) == 16);
    assert!(offset_of!(SeqRingHdr, head) == 24);

    // RingHdr: magic+capacity share the first padded unit; the counters
    // get one each.
    assert!(size_of::<RingHdr>() == 384);
    assert!(align_of::<RingHdr>() == 128);
    assert!(offset_of!(RingHdr, magic) == 0);
    assert!(offset_of!(RingHdr, capacity) == 8);
    assert!(offset_of!(RingHdr, tail) == 128);
    assert!(offset_of!(RingHdr, head) == 256);

    // Sequenced slots for the element types the queues instantiate.
    assert!(size_of::<RelocSlot<u64>>() == 16);
    assert!(offset_of!(RelocSlot<u64>, seq) == 0);
    assert!(size_of::<RelocSlot<[u8; 24]>>() == 32);

    // BoardHdr + descriptors.
    assert!(size_of::<BoardHdr>() == 128);
    assert!(align_of::<BoardHdr>() == 128);
    assert!(size_of::<RelocEnqOp>() == 128);
    assert!(align_of::<RelocEnqOp>() == 128);
    assert!(offset_of!(RelocEnqOp, seq) == 0);
    assert!(offset_of!(RelocEnqOp, status) == 8);
    assert!(offset_of!(RelocEnqOp, e) == 16);
    assert!(offset_of!(RelocEnqOp, x) == 24);
    assert!(offset_of!(RelocEnqOp, i) == 32);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_ring_basic_and_wraparound() {
        let buf = RelocBuf::zeroed(RelocSeqRing::layout(3));
        // SAFETY: buf satisfies layout(3), exclusively owned.
        let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 3) };
        for round in 0..50u64 {
            for i in 0..3 {
                r.enqueue(round * 3 + i).unwrap();
            }
            assert!(r.is_full());
            assert_eq!(r.enqueue(99), Err(Full(99)));
            for i in 0..3 {
                assert_eq!(r.dequeue(), Some(round * 3 + i));
            }
            assert!(r.is_empty());
        }
    }

    #[test]
    fn seq_ring_survives_memcpy_relocation() {
        let buf = RelocBuf::zeroed(RelocSeqRing::layout(4));
        // SAFETY: buf satisfies layout(4).
        let mut r = unsafe { RelocSeqRing::init_at(buf.base(), 4) };
        r.enqueue(10).unwrap();
        r.enqueue(20).unwrap();
        r.dequeue().unwrap();
        r.enqueue(30).unwrap();

        let copy = buf.duplicate();
        assert_ne!(copy.base(), buf.base(), "relocated to a new address");
        // SAFETY: copy holds a byte-identical initialized region.
        let mut r2 = unsafe { RelocSeqRing::from_raw(copy.base()) };
        assert_eq!(r2.len(), 2);
        assert_eq!(r2.dequeue(), Some(20));
        assert_eq!(r2.dequeue(), Some(30));
        assert_eq!(r2.dequeue(), None);
        // The original is untouched by operations on the copy.
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a RelocSeqRing")]
    fn seq_ring_rejects_uninitialized_memory() {
        let buf = RelocBuf::zeroed(RelocSeqRing::layout(2));
        // SAFETY: the pointer is valid; the magic check is the subject.
        let _ = unsafe { RelocSeqRing::from_raw(buf.base()) };
    }

    #[test]
    fn vy_ring_fifo_and_relaxed_full() {
        let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
        // SAFETY: buf satisfies layout(4).
        let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
        for v in 1..=4 {
            r.vy_enqueue(v).unwrap();
        }
        assert_eq!(r.vy_enqueue(5), Err(5));
        for v in 1..=4 {
            assert_eq!(r.vy_dequeue(), Some(v));
        }
        assert_eq!(r.vy_dequeue(), None);
    }

    #[test]
    fn vy_ring_batch_runs_wrap() {
        let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(4));
        // SAFETY: buf satisfies layout(4).
        let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 4) };
        assert_eq!(r.vy_enqueue_many(&[1, 2, 3, 4, 5]), 4);
        let mut out = Vec::new();
        assert_eq!(r.vy_dequeue_many(2, &mut out), 2);
        assert_eq!(r.vy_enqueue_many(&[5, 6]), 2);
        assert_eq!(r.vy_dequeue_many(10, &mut out), 4);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn vy_ring_survives_memcpy_relocation_mid_state() {
        let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(8));
        // SAFETY: buf satisfies layout(8).
        let r = unsafe { RelocRing::<u64>::init_at(buf.base(), 8) };
        for v in 1..=6 {
            r.vy_enqueue(v).unwrap();
        }
        r.vy_dequeue().unwrap();
        let copy = buf.duplicate();
        // SAFETY: byte-identical initialized region.
        let r2 = unsafe { RelocRing::<u64>::from_raw(copy.base()) };
        assert_eq!(r2.counter_len(), 5);
        let mut out = Vec::new();
        assert_eq!(r2.vy_dequeue_many(8, &mut out), 5);
        assert_eq!(out, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn vy_ring_nonword_pod_payload() {
        // A 3-word Pod payload exercises the generic slot layout.
        let buf = RelocBuf::zeroed(RelocRing::<[u64; 3]>::layout(2));
        // SAFETY: buf satisfies layout(2).
        let r = unsafe { RelocRing::<[u64; 3]>::init_at(buf.base(), 2) };
        r.vy_enqueue([1, 2, 3]).unwrap();
        r.vy_enqueue([4, 5, 6]).unwrap();
        assert_eq!(r.vy_dequeue(), Some([1, 2, 3]));
        assert_eq!(r.vy_dequeue(), Some([4, 5, 6]));
        assert_eq!(r.vy_dequeue(), None);
    }

    #[test]
    fn board_round_trips_and_relocates() {
        let buf = RelocBuf::zeroed(AnnounceBoard::layout(3));
        // SAFETY: buf satisfies layout(3).
        let b = unsafe { AnnounceBoard::init_at(buf.base(), 3) };
        assert_eq!(b.threads(), 3);
        assert_eq!(b.pool_len(), 6);
        b.op(1).store(77, Ordering::SeqCst);
        b.desc(4).unwrap().x.store(42, Ordering::SeqCst);
        assert!(b.desc(6).is_none());

        let copy = buf.duplicate();
        // SAFETY: byte-identical initialized region.
        let b2 = unsafe { AnnounceBoard::from_raw(copy.base()) };
        assert_eq!(b2.op(1).load(Ordering::SeqCst), 77);
        assert_eq!(b2.desc(4).unwrap().x.load(Ordering::SeqCst), 42);
        assert_eq!(b2.op(0).load(Ordering::SeqCst), 0);
        assert_eq!(b2.descs().count(), 6);
    }

    #[test]
    fn layouts_are_contiguous_and_aligned() {
        assert_eq!(RelocSeqRing::layout(8).size(), 32 + 64);
        let l = RelocRing::<u64>::layout(8);
        assert_eq!(l.size(), 384 + 8 * 16);
        assert_eq!(l.align(), 128);
        let b = AnnounceBoard::layout(4);
        // hdr 128 + 4 ops (32 B) padded to 128, + 8 descriptors.
        assert_eq!(b.size(), 256 + 8 * 128);
    }

    #[test]
    fn align_up_rounds_correctly() {
        assert_eq!(align_up(0, 128), 0);
        assert_eq!(align_up(1, 128), 128);
        assert_eq!(align_up(128, 128), 128);
        assert_eq!(align_up(129, 64), 192);
    }
}
