//! Cross-**process** byte-ring tests: a forked producer streams
//! variable-length checksummed messages to the parent consumer through a
//! [`ShmByteRing`], and a claim-stealing test shows the producer role of
//! a killed process is reclaimable by its successor (DESIGN.md §12.3).

use std::sync::atomic::Ordering::SeqCst;
use std::sync::Mutex;
use std::time::Duration;

use bq_shm::{fork_child, ShmByteRing};

/// Forky tests share a binary with the std test harness's threads, so
/// they are serialized (see `bq_shm::harness` docs on fork discipline).
static FORK_LOCK: Mutex<()> = Mutex::new(());

fn yield_now() {
    // SAFETY: sched_yield has no preconditions; allocation-free (a child
    // of a threaded parent must not touch the allocator).
    unsafe {
        libc::sched_yield();
    }
}

/// Deterministic body byte for message `i` at offset `j` — lets the
/// consumer verify content without any side channel.
fn body_byte(i: u64, j: usize) -> u8 {
    (i as u8).wrapping_mul(31).wrapping_add(j as u8)
}

/// Message `i`'s length: sweeps 1..=max and hits the wrap pad often.
fn msg_len(i: u64, max: usize) -> usize {
    (i as usize * 7 + 1) % max + 1
}

#[test]
fn forked_producer_streams_variable_messages() {
    let _serial = FORK_LOCK.lock().unwrap();
    const MSGS: u64 = 400;
    const MAX: usize = 96;

    let ring = ShmByteRing::create_anon(1024, MAX).unwrap();
    let child_ring = ring.clone();
    let child = fork_child(move || {
        // Claim strictly inside the child: the grant/commit stores all
        // happen in shared memory, no allocator needed after this point.
        let mut tx = child_ring.producer().expect("child claims producer");
        for i in 0..MSGS {
            let len = msg_len(i, MAX);
            loop {
                if let Some(mut g) = tx.try_grant(len) {
                    for (j, b) in g.buf()[..len].iter_mut().enumerate() {
                        *b = body_byte(i, j);
                    }
                    g.commit(len);
                    break;
                }
                yield_now();
            }
        }
    })
    .unwrap();

    let mut rx = ring.consumer().unwrap();
    let mut seen = 0u64;
    while seen < MSGS {
        if let Some(g) = rx.try_read() {
            let want = msg_len(seen, MAX);
            assert_eq!(g.len(), want, "message {seen} length");
            for (j, &b) in g.iter().enumerate() {
                assert_eq!(b, body_byte(seen, j), "message {seen} byte {j}");
            }
            seen += 1;
        } else {
            yield_now();
        }
    }
    assert!(rx.try_read().is_none(), "ring drained exactly");
    assert!(child.wait().unwrap().success());
}

#[test]
fn producer_claim_of_killed_process_is_stolen() {
    let _serial = FORK_LOCK.lock().unwrap();
    let ring = ShmByteRing::create_anon(256, 32).unwrap();

    let child_ring = ring.clone();
    let mut child = fork_child(move || {
        let mut tx = child_ring.producer().expect("child claims producer");
        assert!(tx.push(b"last words"));
        // Hold the claim forever; the parent kills us mid-hold. The
        // endpoint's Drop (claim release) never runs — that is the point.
        loop {
            yield_now();
        }
    })
    .unwrap();

    // Wait until the child's claim + message are visible, then kill it
    // while it still holds the producer role.
    let mut rx = ring.consumer().unwrap();
    let mut out = Vec::new();
    while !rx.pop(&mut out) {
        yield_now();
    }
    assert_eq!(out, b"last words");
    child.kill();
    // Reap so the pid goes away entirely (a zombie still "exists" for
    // kill(pid, 0), so stealing must wait for the reap).
    let exit = child
        .wait_deadline(Duration::from_secs(5))
        .unwrap()
        .expect("killed child reaped");
    assert!(!exit.success());

    // The dead holder's claim is stolen and the ring keeps working.
    let mut tx2 = ring.producer().expect("steal claim from dead process");
    assert!(tx2.push(b"successor"));
    let g = rx.try_read().unwrap();
    assert_eq!(&*g, b"successor");
}

/// Is `pid` currently a zombie (dead but unreaped)? Field 3 of
/// `/proc/<pid>/stat` is the state letter; it sits right after the
/// parenthesized comm, which may itself contain spaces — hence the
/// rsplit on ')'.
fn is_zombie(pid: u32) -> bool {
    match std::fs::read_to_string(format!("/proc/{pid}/stat")) {
        Ok(stat) => stat
            .rsplit_once(')')
            .map(|(_, rest)| rest.trim_start().starts_with('Z'))
            .unwrap_or(false),
        Err(_) => false,
    }
}

/// The zombie-holder pitfall (DESIGN.md §13.2): `kill(pid, 0)` succeeds
/// for a dead-but-unreaped child, so neither the steal path nor a
/// `recover` sweep may fire until the harness has reaped it via
/// `waitpid`. This pins both halves — refusal while the zombie lingers,
/// successful steal immediately after the reap.
#[test]
fn zombie_holder_blocks_steal_until_reaped() {
    let _serial = FORK_LOCK.lock().unwrap();
    let ring = ShmByteRing::create_anon(256, 32).unwrap();

    let child_ring = ring.clone();
    let child = fork_child(move || {
        let _tx = child_ring.producer().expect("child claims producer");
        child_ring.segment().scratch(0).store(1, SeqCst);
        loop {
            yield_now();
        }
    })
    .unwrap();
    let pid = child.pid();

    // Wait for the claim to land, then kill WITHOUT reaping.
    while ring.segment().scratch(0).load(SeqCst) == 0 {
        yield_now();
    }
    child.kill();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !is_zombie(pid) {
        assert!(std::time::Instant::now() < deadline, "child never died");
        yield_now();
    }

    // Dead — but unreaped, so the existence probe still says alive: the
    // claim must be refused and the sweep must free nothing. Treating
    // the zombie as dead here would be wrong the other way for a *live*
    // holder, which is the asymmetry the one-sided oracle is built on.
    let refused = match ring.producer() {
        Err(e) => e,
        Ok(_) => panic!("zombie holder must block the steal"),
    };
    assert_eq!(
        refused,
        bq_shm::RoleHeld { pid },
        "kill(pid, 0) reports the unreaped child alive"
    );
    assert_eq!(ring.recover(), 0, "sweep respects the zombie too");

    // Reap via waitpid — the harness step that must precede steal
    // checks — and the very same claim now succeeds by stealing.
    assert_eq!(
        child.wait().unwrap(),
        bq_shm::ChildExit::Signaled(libc::SIGKILL)
    );
    let mut tx = ring
        .producer()
        .expect("steal succeeds once the zombie is reaped");
    assert!(tx.push(b"after reap"));
    let mut rx = ring.consumer().unwrap();
    let mut out = Vec::new();
    assert!(rx.pop(&mut out));
    assert_eq!(out, b"after reap");
}
