//! An industrial reference point: `crossbeam_queue::ArrayQueue`, the
//! bounded MPMC queue shipped by the Rust ecosystem's standard concurrency
//! suite. Its design is Vyukov-lineage — one sequence/stamp word per slot —
//! so its overhead is Θ(C), which is exactly the class of "memory-friendly
//! but not memory-optimal" implementations the paper's §1 describes.

use crossbeam_queue::ArrayQueue;

use bq_core::queue::{ConcurrentQueue, Full};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Wrapper implementing the workspace queue interface over
/// `crossbeam_queue::ArrayQueue<u64>`.
pub struct CrossbeamArrayQueue {
    inner: ArrayQueue<u64>,
}

/// `CrossbeamArrayQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrossbeamHandle;

impl CrossbeamArrayQueue {
    /// Create a queue of capacity `c > 0`.
    pub fn with_capacity(c: usize) -> Self {
        CrossbeamArrayQueue {
            inner: ArrayQueue::new(c),
        }
    }
}

impl ConcurrentQueue for CrossbeamArrayQueue {
    type Handle = CrossbeamHandle;

    fn register(&self) -> CrossbeamHandle {
        CrossbeamHandle
    }

    fn enqueue(&self, _h: &mut CrossbeamHandle, v: u64) -> Result<(), Full> {
        self.inner.push(v).map_err(Full)
    }

    fn dequeue(&self, _h: &mut CrossbeamHandle) -> Option<u64> {
        self.inner.pop()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn max_token(&self) -> u64 {
        u64::MAX
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl MemoryFootprint for CrossbeamArrayQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let c = self.inner.capacity();
        // ArrayQueue<u64> stores (stamp: AtomicUsize, value: u64) per slot
        // plus two cache-padded counters; we account the documented layout.
        FootprintBreakdown::with_elements(c * 8)
            .add(
                "per-slot stamps (8 B × C)",
                c * 8,
                OverheadClass::PerSlotMetadata,
            )
            .add(
                "head + tail counters (cache-padded)",
                2 * 128,
                OverheadClass::Counters,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = CrossbeamArrayQueue::with_capacity(2);
        let mut h = q.register();
        q.enqueue(&mut h, 1).unwrap();
        q.enqueue(&mut h, 2).unwrap();
        assert_eq!(q.enqueue(&mut h, 3), Err(Full(3)));
        assert_eq!(q.dequeue(&mut h), Some(1));
        assert_eq!(q.dequeue(&mut h), Some(2));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn overhead_linear_in_capacity() {
        let small = CrossbeamArrayQueue::with_capacity(64).overhead_bytes();
        let large = CrossbeamArrayQueue::with_capacity(64 * 16).overhead_bytes();
        assert!(large > small * 8, "Θ(C) per-slot stamps dominate");
    }

    #[test]
    fn concurrent_transfer() {
        let q = Arc::new(CrossbeamArrayQueue::with_capacity(8));
        let n = 4_000u64;
        let q2 = Arc::clone(&q);
        let p = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=n {
                while q2.enqueue(&mut h, v).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut h = q.register();
        let mut last = 0;
        let mut got = 0;
        while got < n {
            if let Some(v) = q.dequeue(&mut h) {
                assert!(v > last);
                last = v;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        p.join().unwrap();
    }
}
