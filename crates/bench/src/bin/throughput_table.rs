//! **Experiment E10** — throughput and the Θ(T)-time cost of memory
//! optimality.
//!
//! Two tables:
//!
//! 1. mixed enqueue/dequeue pairs, all algorithms × thread counts — the
//!    general performance landscape (§1: memory-friendliness correlates
//!    with performance; Θ(C) industrial designs are fastest);
//! 2. Listing 5 single-threaded operation cost as a function of the thread
//!    bound `T` — the paper's closing open question: its memory-optimal
//!    queue scans the `T`-slot announcement array on every operation, so
//!    per-op cost grows with `T` even without contention.
//!
//! Run: `cargo run --release -p bq-bench --bin throughput_table`

use std::time::Instant;

use bq_bench::facade::{blocking_pairs_throughput, blocking_timed_pairs_throughput, ALL_FACADES};
use bq_bench::meta::{append_trajectory, run_meta, smoke_mode, write_bench_json};
use bq_bench::payload::{
    payload_pairs_bytering, payload_pairs_grant, payload_pairs_move, PAYLOAD_BYTES,
};
use bq_bench::registry::{QueueKind, ALL_KINDS};
use bq_bench::shm_procs::shm_fork_pairs_throughput;
use bq_bench::workload::{pairs_throughput, print_batch_win_table};
use bq_core::{ConcurrentQueue, OptimalQueue};
use serde::Serialize;

/// One machine-readable measurement for `BENCH_throughput_table.json`.
#[derive(Serialize)]
struct BenchRow {
    experiment: &'static str,
    queue: String,
    workers: usize,
    mops: f64,
    ops: u64,
}

fn main() {
    let smoke = smoke_mode();
    let meta = run_meta();
    let c = 1024;
    let ops = if smoke { 2_000u64 } else { 20_000u64 };
    let thread_counts = [1usize, 2, 4];
    let mut bench_rows: Vec<BenchRow> = Vec::new();

    println!("=== E10a: mixed pairs throughput (C = {c}, {ops} pairs/thread) ===");
    println!("single-core host: columns >1 thread measure contention behaviour, not speedup\n");
    print!("{:<24} {:>14}", "queue", "claimed ovh");
    for t in thread_counts {
        print!(" {:>9}", format!("{t}th Mops"));
    }
    println!();
    for kind in ALL_KINDS {
        let q0 = kind.build(4, 1);
        if !q0.sound() {
            continue; // unsound models are not performance candidates
        }
        print!("{:<24} {:>14}", kind.name(), kind.claimed_overhead());
        for t in thread_counts {
            let q = kind.build(c, t);
            let r = pairs_throughput(&*q, t, ops);
            print!(" {:>9.3}", r.mops());
            bench_rows.push(BenchRow {
                experiment: "E10a-pairs",
                queue: kind.name().to_string(),
                workers: t,
                mops: r.mops(),
                ops: r.ops,
            });
        }
        println!();
    }

    println!("\n=== E10d: batched pairs (B = 32) — the scale layer's batch win ===");
    println!("same element count as one E10a cell; see shard_sweep for the full E11 grid\n");
    print_batch_win_table(
        &[
            QueueKind::Optimal,
            QueueKind::ShardedOptimal,
            QueueKind::Segment,
            QueueKind::Vyukov,
        ],
        c,
        2,
        ops,
        32,
    );

    println!("\n=== E10b: Listing 5 per-op cost vs thread bound T (solo thread) ===");
    println!("the announcement array is scanned on every op → cost grows ~linearly in T\n");
    println!("{:>6} {:>16} {:>12}", "T", "ns/op (solo)", "vs T=1");
    let mut base = 0.0f64;
    for t in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let q = OptimalQueue::with_capacity_and_threads(c, t);
        let mut h = q.register();
        let iters = if smoke { 3_000u64 } else { 30_000u64 };
        let start = Instant::now();
        for v in 1..=iters {
            q.enqueue(&mut h, v).unwrap();
            q.dequeue(&mut h).unwrap();
        }
        let ns = start.elapsed().as_nanos() as f64 / (2 * iters) as f64;
        if t == 1 {
            base = ns;
        }
        println!("{:>6} {:>16.1} {:>11.2}x", t, ns, ns / base);
    }
    println!(
        "\nReading: memory optimality costs time — Θ(T) per operation — matching the\n\
         paper's §3.6 remark and its open question whether O(1)-time memory-optimal\n\
         queues exist."
    );

    println!("\n=== E10c: Vyukov control for E10b (per-slot design, T-independent) ===\n");
    println!("{:>6} {:>16}", "T", "ns/op (solo)");
    for t in [1usize, 8, 64] {
        let q = QueueKind::Vyukov.build(c, t.max(1));
        let iters = if smoke { 5_000u64 } else { 50_000u64 };
        let start = Instant::now();
        for v in 1..=iters {
            assert!(q.enqueue(0, v));
            q.dequeue(0).unwrap();
        }
        let ns = start.elapsed().as_nanos() as f64 / (2 * iters) as f64;
        println!("{:>6} {:>16.1}", t, ns);
    }

    println!("\n=== E12: waiting façades — blocking vs async pairs (DESIGN.md §9) ===");
    println!(
        "same Listing 5 data path and the same eventcount pair; the only\n\
         difference is what parks on a full/empty queue: an OS thread\n\
         (condvar) or an async task (registered waker, block_on driver).\n\
         C = 4 forces real parking; 1-core caveat as in E11: wake-path\n\
         cost under preemption, not parallel speedup\n"
    );
    println!(
        "{:<20} {:>9} {:>12} {:>12}",
        "facade", "threads", "Mops", "ns/op"
    );
    for threads in [1usize, 2, 4] {
        for kind in ALL_FACADES {
            let r = kind.pairs(4, threads, if smoke { 1_000 } else { 10_000 });
            println!(
                "{:<20} {:>9} {:>12.3} {:>12.1}",
                kind.name(),
                threads,
                r.mops(),
                1e3 / r.mops()
            );
        }
    }
    println!(
        "\nReading: the async façade pays future/waker bookkeeping per wait but\n\
         wakes without a kernel unpark when the task is re-polled on a live\n\
         thread; neither path contains timed polling."
    );

    println!("\n=== E16: timed waits — deadline-carrying pairs vs untimed (DESIGN.md §13) ===");
    println!(
        "same blocking façade and data path; every op now carries a deadline\n\
         that never fires. the deadline resolves lazily at the FIRST PARK,\n\
         so the uncontended row must show ~zero overhead (claim: <= 5%);\n\
         contended rows add one clock read per park. best of 3 runs\n"
    );
    // Larger than the other sections even in smoke: the headline is a
    // percent-level *difference*, which tiny runs drown in noise.
    let timed_ops = if smoke { 20_000u64 } else { 100_000u64 };
    let best = |mk: &dyn Fn() -> bq_bench::workload::WorkloadResult| {
        let mut b = mk();
        for _ in 0..2 {
            let r = mk();
            if r.mops() > b.mops() {
                b = r;
            }
        }
        b
    };
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10}",
        "workload", "threads", "untimed Mops", "timed Mops", "overhead"
    );
    let mut e16_headline: Vec<(&str, f64)> = Vec::new();
    for (label, cap, threads) in [
        ("uncontended (C=1024)", 1024usize, 1usize),
        ("contended (C=4)", 4, 2),
        ("contended (C=4)", 4, 4),
    ] {
        let untimed = best(&|| blocking_pairs_throughput(cap, threads, timed_ops));
        let timed = best(&|| blocking_timed_pairs_throughput(cap, threads, timed_ops));
        let overhead_pct = (untimed.mops() / timed.mops() - 1.0) * 100.0;
        println!(
            "{:<22} {:>9} {:>12.3} {:>12.3} {:>9.1}%",
            label,
            threads,
            untimed.mops(),
            timed.mops(),
            overhead_pct
        );
        for (queue, r) in [
            ("blocking-optimal", &untimed),
            ("blocking-optimal-timed", &timed),
        ] {
            bench_rows.push(BenchRow {
                experiment: "E16-timed-pairs",
                queue: format!("{queue}-{threads}th-c{cap}"),
                workers: threads,
                mops: r.mops(),
                ops: r.ops,
            });
        }
        if threads == 1 {
            e16_headline.push(("uncontended_untimed_mops", untimed.mops()));
            e16_headline.push(("uncontended_timed_mops", timed.mops()));
            e16_headline.push(("uncontended_overhead_pct", overhead_pct));
        }
    }
    println!(
        "\nReading: a timed op that never parks never reads the clock — the\n\
         deadline is a value in a register until the first failed attempt.\n\
         The uncontended overhead is measurement noise around zero; the §13\n\
         claim bounds it at 5%."
    );

    println!("\n=== E17: observability overhead — `obs` counters on vs off (DESIGN.md §14) ===");
    let obs_on = cfg!(feature = "obs");
    println!(
        "this build has the obs feature {}. the uncontended blocking pair\n\
         (E16's baseline row: C=1024, 1 thread) is re-measured and recorded\n\
         to BENCH_e17_{}.json; run the other lane (cargo run --release -p\n\
         bq-bench {} --bin throughput_table) and whichever lane runs second\n\
         prints the overhead (claim: <= 5% uncontended). best of 3 runs per\n\
         invocation; the side file keeps each lane's peak across runs of\n\
         the same commit + workload (peak-vs-peak prices the counters,\n\
         not the scheduler). 1-core caveat: per-op counter cost under\n\
         preemption, not scaling\n",
        if obs_on { "ON" } else { "OFF" },
        if obs_on { "on" } else { "off" },
        if obs_on { "" } else { "--features obs" },
    );
    let e17 = best(&|| blocking_pairs_throughput(1024, 1, timed_ops));
    println!("{:<22} {:>12} {:>12}", "lane", "Mops", "ns/op");
    println!(
        "{:<22} {:>12.3} {:>12.1}",
        if obs_on {
            "counters on"
        } else {
            "counters off"
        },
        e17.mops(),
        1e3 / e17.mops()
    );
    bench_rows.push(BenchRow {
        experiment: "E17-obs-overhead",
        queue: format!("blocking-optimal-obs-{}", if obs_on { "on" } else { "off" }),
        workers: 1,
        mops: e17.mops(),
        ops: e17.ops,
    });
    {
        // Two-pass side-file protocol: each lane records its own number;
        // the second lane to run finds the other's file and prices the
        // counters. Cross-lane comparisons only make sense within one
        // commit + workload size, so both are checked before comparing.
        let (mine, theirs) = if obs_on {
            ("BENCH_e17_on.json", "BENCH_e17_off.json")
        } else {
            ("BENCH_e17_off.json", "BENCH_e17_on.json")
        };
        // Peak-of-runs per lane: on a preemption-noisy host one run can
        // land anywhere in a ±20% band, swamping a percent-level bar.
        // Each lane's side file keeps its best observed throughput for
        // this commit + workload, so repeated invocations converge to a
        // peak-vs-peak comparison that prices the counters, not the
        // scheduler.
        let mine_mops = std::fs::read_to_string(mine)
            .ok()
            .filter(|t| {
                bq_bench::meta::json_str(t, "git_sha") == Some(meta.git_sha.as_str())
                    && bq_bench::meta::json_bool(t, "smoke") == Some(meta.smoke)
            })
            .and_then(|t| bq_bench::meta::json_f64(&t, "mops"))
            .map_or(e17.mops(), |prev| prev.max(e17.mops()));
        if mine_mops > e17.mops() {
            println!("(lane peak from an earlier run this commit: {mine_mops:.3} Mops)");
        }
        let mut side = String::from("{\"experiment\":\"E17-obs-overhead\",\"git_sha\":");
        meta.git_sha.write_json(&mut side);
        side.push_str(",\"smoke\":");
        meta.smoke.write_json(&mut side);
        side.push_str(",\"mops\":");
        mine_mops.write_json(&mut side);
        side.push('}');
        std::fs::write(mine, &side).unwrap_or_else(|e| panic!("write {mine}: {e}"));
        let other = std::fs::read_to_string(theirs).ok().filter(|t| {
            bq_bench::meta::json_str(t, "git_sha") == Some(meta.git_sha.as_str())
                && bq_bench::meta::json_bool(t, "smoke") == Some(meta.smoke)
        });
        match other
            .as_deref()
            .and_then(|t| bq_bench::meta::json_f64(t, "mops"))
        {
            Some(other_mops) => {
                let (on_mops, off_mops) = if obs_on {
                    (mine_mops, other_mops)
                } else {
                    (other_mops, mine_mops)
                };
                let overhead_pct = (off_mops / on_mops - 1.0) * 100.0;
                println!(
                    "{:<22} {:>12.3} {:>12.1}",
                    if obs_on {
                        "counters off"
                    } else {
                        "counters on"
                    },
                    other_mops,
                    1e3 / other_mops
                );
                println!(
                    "\nobs overhead (uncontended): {overhead_pct:+.1}%  (bar: <= 5%{})",
                    if meta.smoke {
                        "; smoke numbers are non-binding"
                    } else {
                        ""
                    }
                );
                append_trajectory(
                    &meta,
                    "E17-obs-overhead",
                    &[
                        ("obs_on_mops", on_mops),
                        ("obs_off_mops", off_mops),
                        ("overhead_pct", overhead_pct),
                    ],
                );
            }
            None => println!(
                "\n(no matching {theirs} from this commit/workload yet — run the\n\
                 other lane to complete the E17 comparison)"
            ),
        }
    }

    println!("\n=== E13: cross-process pairs — ShmQueue over fork (bq-shm) ===");
    println!(
        "each worker is a separate PROCESS sharing one mmap segment; the\n\
         protocol is the crash-consistent publication scheme of DESIGN.md\n\
         §10. 1-core caveat: columns measure the protocol under context\n\
         switching (plus amortized fork cost), not parallel speedup\n"
    );
    println!("{:<14} {:>12} {:>12}", "procs (P+C)", "Mops", "ns/op");
    let shm_per = if smoke { 2_000u64 } else { 20_000u64 };
    for (p, cons) in [(1u64, 1u64), (2, 2)] {
        let r = shm_fork_pairs_throughput(c, p, cons, shm_per);
        println!(
            "{:<14} {:>12.3} {:>12.1}",
            format!("{p}P + {cons}C"),
            r.mops(),
            1e3 / r.mops()
        );
        bench_rows.push(BenchRow {
            experiment: "E13-shm-fork-pairs",
            queue: "shm-mpmc".to_string(),
            workers: (p + cons) as usize,
            mops: r.mops(),
            ops: r.ops,
        });
    }
    println!(
        "\nReading: the same sequenced-ring data path as `vyukov`, paying\n\
         SeqCst helping CASes and process-grade context switches; the row\n\
         exists to show the multi-process backend is in the same regime,\n\
         not to win."
    );

    println!("\n=== E15: zero-copy payload path — {PAYLOAD_BYTES} B messages, 1P + 1C ===");
    println!(
        "same ring machinery three ways: move = two full payload copies per\n\
         message (local→slot, slot→local); grant = fill/checksum the slot\n\
         bytes in place (DESIGN.md §12); byte-ring = grants plus a length\n\
         header per record. every run checksums every byte delivered.\n\
         1-core caveat: P and C interleave under preemption — the copy\n\
         savings are per-operation work and show up regardless\n"
    );
    let slots = 64;
    let payload_msgs = if smoke { 5_000u64 } else { 50_000u64 };
    let rmove = payload_pairs_move(slots, payload_msgs);
    let rgrant = payload_pairs_grant(slots, payload_msgs);
    let rbytes = payload_pairs_bytering(slots, payload_msgs);
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "path", "kmsg/s", "MiB/s", "speedup vs move"
    );
    for (name, r) in [("move", rmove), ("grant", rgrant), ("byte-ring", rbytes)] {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>14.2}x",
            name,
            r.kmsgs(),
            r.mibps(),
            rmove.secs / r.secs
        );
        bench_rows.push(BenchRow {
            experiment: "E15-payload-4k",
            queue: format!("reloc-ring-{name}"),
            workers: 2,
            mops: r.kmsgs() / 1e3,
            ops: r.msgs,
        });
    }
    let grant_speedup = rmove.secs / rgrant.secs;
    println!(
        "\nReading: the grant path is the move path minus the copies; at\n\
         {PAYLOAD_BYTES} B the copies dominate, so grants win ({grant_speedup:.2}x here).\n\
         The byte ring pays its length headers back by never touching a\n\
         slot-sized region for a smaller message."
    );

    write_bench_json("BENCH_throughput_table.json", &meta, &bench_rows);
    append_trajectory(
        &meta,
        "E15-payload-4k",
        &[
            ("move_mibps", rmove.mibps()),
            ("grant_mibps", rgrant.mibps()),
            ("bytering_mibps", rbytes.mibps()),
            ("grant_speedup_vs_move", grant_speedup),
        ],
    );
    append_trajectory(&meta, "E16-timed-pairs", &e16_headline);
    println!(
        "\nwrote {} rows to BENCH_throughput_table.json (git_sha {}, smoke {}, {} cores)\n\
         appended E15 and E16 headlines to BENCH_trajectory.jsonl",
        bench_rows.len(),
        meta.git_sha,
        meta.smoke,
        meta.host_cores
    );
}
