//! Offline stand-in for `serde` (serialization only, JSON only).
//!
//! Vendored because the build environment has no crates.io access. The
//! [`Serialize`] trait here writes JSON directly instead of driving a
//! generic `Serializer`; the companion `serde_derive` shim generates the
//! field-by-field impl for plain structs with named fields, and the
//! `serde_json` shim renders values through this trait.

#![deny(missing_docs)]

pub use serde_derive::Serialize;

/// A type that can write itself as a JSON value.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);
}

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}
