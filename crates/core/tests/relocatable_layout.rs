//! Layout-stability property tests for the relocatable structures
//! (DESIGN.md §10): for every relocatable struct, addressing a field by
//! **offset from the segment base** and addressing it by **reference
//! through the view** must agree — and must keep agreeing after the
//! bytes are memcpy'd to a different base address.
//!
//! The compile-time size/align/offset pins live next to the definitions
//! (`bq_core::relocatable`'s `const` assertion block); these tests cover
//! what static assertions cannot: arbitrary capacities, arbitrary
//! operation sequences, and actual relocation.

use bq_core::relocatable::{align_up, AnnounceBoard, RelocBuf, RelocRing, RelocSeqRing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `RelocSeqRing`: run a random enqueue/dequeue script, then memcpy
    /// the segment elsewhere — offsets must resolve to identical state.
    #[test]
    fn seq_ring_state_survives_relocation(
        cap in 1usize..24,
        script in prop::collection::vec((any::<bool>(), any::<u64>()), 0..64),
    ) {
        let buf = RelocBuf::zeroed(RelocSeqRing::layout(cap));
        // SAFETY: buf sized by the matching layout, exclusively owned.
        let mut ring = unsafe { RelocSeqRing::init_at(buf.base(), cap) };
        let mut model = std::collections::VecDeque::new();
        for (is_enq, v) in script {
            if is_enq {
                if ring.enqueue(v).is_ok() {
                    model.push_back(v);
                }
            } else {
                prop_assert_eq!(ring.dequeue(), model.pop_front());
            }
        }

        let moved = buf.duplicate();
        prop_assert_ne!(moved.base(), buf.base(), "duplicate gets a new base");
        // SAFETY: the bytes at the new base are a complete image.
        let mut ring2 = unsafe { RelocSeqRing::from_raw(moved.base()) };
        prop_assert_eq!(ring2.capacity(), cap);
        prop_assert_eq!(ring2.len(), model.len());
        // Drain the *relocated* queue against the model: every offset in
        // the moved image resolves exactly as a reference did pre-move.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(ring2.dequeue(), Some(expect));
        }
        prop_assert!(ring2.is_empty());
    }

    /// `RelocRing` (Vyukov layout): per-slot sequence words and values
    /// read back identically through a relocated view.
    #[test]
    fn vyukov_ring_state_survives_relocation(
        cap_pow in 1u32..6,
        script in prop::collection::vec((any::<bool>(), any::<u64>()), 0..96),
    ) {
        let cap = 1usize << cap_pow;
        let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(cap));
        // SAFETY: buf sized by the matching layout, exclusively owned.
        let ring = unsafe { RelocRing::<u64>::init_at(buf.base(), cap) };
        let mut model = std::collections::VecDeque::new();
        for (is_enq, v) in script {
            if is_enq {
                if ring.vy_enqueue(v).is_ok() {
                    model.push_back(v);
                }
            } else {
                prop_assert_eq!(ring.vy_dequeue(), model.pop_front());
            }
        }

        let moved = buf.duplicate();
        // SAFETY: complete image at the new base.
        let ring2 = unsafe { RelocRing::<u64>::from_raw(moved.base()) };
        prop_assert_eq!(ring2.capacity(), cap);
        prop_assert_eq!(ring2.counter_len(), model.len());
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(ring2.vy_dequeue(), Some(expect));
        }
        prop_assert_eq!(ring2.vy_dequeue(), None);
    }

    /// `AnnounceBoard`: descriptor fields written through one view are
    /// read back, offset-addressed, through a view over relocated bytes.
    #[test]
    fn announce_board_state_survives_relocation(
        threads in 1usize..12,
        stores in prop::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        use std::sync::atomic::Ordering;

        let buf = RelocBuf::zeroed(AnnounceBoard::layout(threads));
        // SAFETY: buf sized by the matching layout, exclusively owned.
        let board = unsafe { AnnounceBoard::init_at(buf.base(), threads) };
        let mut model = vec![(0u64, 0u64); board.pool_len()];
        for (which, v) in stores {
            let d = (which % board.pool_len() as u64) as usize;
            let desc = board.desc(d).unwrap();
            desc.e.store(v, Ordering::SeqCst);
            desc.x.store(v.wrapping_mul(3), Ordering::SeqCst);
            model[d] = (v, v.wrapping_mul(3));
        }
        for s in 0..threads {
            board.op(s).store(s as u64 + 7, Ordering::SeqCst);
        }

        let moved = buf.duplicate();
        // SAFETY: complete image at the new base.
        let board2 = unsafe { AnnounceBoard::from_raw(moved.base()) };
        prop_assert_eq!(board2.threads(), threads);
        prop_assert_eq!(board2.pool_len(), 2 * threads);
        for (d, &(e, x)) in model.iter().enumerate() {
            let desc = board2.desc(d).unwrap();
            prop_assert_eq!(desc.e.load(Ordering::SeqCst), e);
            prop_assert_eq!(desc.x.load(Ordering::SeqCst), x);
        }
        for s in 0..threads {
            prop_assert_eq!(board2.op(s).load(Ordering::SeqCst), s as u64 + 7);
        }
    }

    /// `align_up` is the layout glue everywhere offsets are computed:
    /// result is aligned, minimal, and identity on aligned input.
    #[test]
    fn align_up_is_minimal_and_idempotent(x in 0usize..1 << 40, pow in 0u32..12) {
        let a = 1usize << pow;
        let r = align_up(x, a);
        prop_assert_eq!(r % a, 0);
        prop_assert!(r >= x);
        prop_assert!(r - x < a, "minimal: no full alignment step skipped");
        prop_assert_eq!(align_up(r, a), r);
    }
}
