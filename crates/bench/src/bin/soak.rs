//! Liveness soak: hammer the contended workloads on every sound queue and
//! print progress per round, so a rare hang identifies its algorithm (the
//! last line printed is the one that stuck). Since the scale layer landed
//! this includes the batched paths and the sharded compositions — the
//! descriptor-verdict class of race (DESIGN.md §7.1) is exactly what this
//! binary exists to catch pre-merge (CI runs a bounded number of rounds).
//!
//! Every round is journaled into an in-memory [`TraceRing`] (DESIGN.md
//! §14): round starts, fault-plan seeds, per-round completion. On any
//! round failure the ring is dumped as a one-line replayable `trace:v1:`
//! artifact (also written to `BENCH_soak_trace.txt`), so a red soak log
//! carries the recent-history context of the failure, not just the panic.
//! `MEMBQ_SOAK_FORCE_FAIL=<round>` forces a failure in that round — the
//! artifact path's own test hook.
//!
//! Run: `cargo run --release -p bq-bench --bin soak [rounds]`

use std::io::Write;
use std::time::Duration;

use bq_bench::facade::{timed_recv_dropped_wake_round, ALL_FACADES};
use bq_bench::registry::{sharded_optimal, ALL_KINDS};
use bq_bench::shm_procs::{shm_crash_round, shm_fault_round_with_stats, shm_fork_pairs_throughput};
use bq_bench::workload::{
    batched_pairs_throughput, pairs_throughput, producer_consumer_throughput,
};
use bq_core::obs::trace_kind;
use bq_core::TraceRing;
use bq_shm::FaultPlan;

/// Where the failure artifact lands (next to the `BENCH_*.json` tables).
const TRACE_PATH: &str = "BENCH_soak_trace.txt";

/// Record the failure, dump the replayable trace, and exit non-zero.
fn fail_with_trace(trace: &TraceRing, round: u64, why: &str) -> ! {
    trace.record(trace_kind::FAIL, round);
    let artifact = trace.dump();
    eprintln!("\nsoak FAILED in round {round}: {why}");
    eprintln!("{artifact}");
    match std::fs::write(TRACE_PATH, format!("{artifact}\n")) {
        Ok(()) => eprintln!("trace artifact written to {TRACE_PATH}"),
        Err(e) => eprintln!("could not write {TRACE_PATH}: {e}"),
    }
    std::process::exit(1);
}

fn run_round(round: u64, trace: &TraceRing) {
    for kind in ALL_KINDS {
        {
            let probe = kind.build(4, 1);
            if !probe.sound() {
                continue;
            }
        }
        print!("round {round}: {} pairs ... ", kind.name());
        std::io::stdout().flush().unwrap();
        let q = kind.build(16, 2);
        let r = pairs_throughput(&*q, 2, 200);
        print!("ok ({} ops); batched ... ", r.ops);
        std::io::stdout().flush().unwrap();
        let q = kind.build(16, 2);
        let r = batched_pairs_throughput(&*q, 2, 50, 4);
        print!("ok ({} ops); pc ... ", r.ops);
        std::io::stdout().flush().unwrap();
        let q = kind.build(8, 4);
        let r = producer_consumer_throughput(&*q, 2, 500);
        println!("ok ({} ops)", r.ops);
    }
    // Non-default shard counts only reachable through the sweep builder.
    for s in [2usize, 8] {
        print!("round {round}: sharded-optimal(S={s}) batched ... ");
        std::io::stdout().flush().unwrap();
        let q = sharded_optimal(32, s, 4);
        let r = batched_pairs_throughput(&*q, 4, 50, 4);
        println!("ok ({} ops)", r.ops);
    }
    // Waiting façades (DESIGN.md §9): a tiny capacity makes the
    // workers park constantly, hammering the eventcount wake paths —
    // a lost wake shows up here as a hang naming the façade.
    for kind in ALL_FACADES {
        print!("round {round}: {} pairs ... ", kind.name());
        std::io::stdout().flush().unwrap();
        let r = kind.pairs(2, 3, 300);
        println!("ok ({} ops)", r.ops);
    }
    // Cross-process rounds (bq-shm): fork-based pairs, then a
    // producer SIGKILLed mid-stream. The write budget walks through
    // the residues of the 5-write enqueue sequence round by round,
    // so over a soak the kill lands between every pair of shared
    // writes; the drivers panic on wedge or conservation failure.
    print!("round {round}: shm fork-pairs ... ");
    std::io::stdout().flush().unwrap();
    let r = shm_fork_pairs_throughput(16, 2, 2, 200);
    print!("ok ({} ops); shm producer-kill ... ", r.ops);
    std::io::stdout().flush().unwrap();
    let budget = 1 + (round * 7) % 23;
    let published = shm_crash_round(budget);
    println!("ok ({published} published before kill)");
    // Unified fault rounds (DESIGN.md §13.4): a seed-derived
    // FaultPlan per round. The replayable plan:v1: artifact is
    // printed BEFORE the round runs, so a panic or wedge below is
    // reproducible from the log alone (`FaultPlan::from_str`).
    let plan = FaultPlan::from_seed(round);
    trace.record(trace_kind::PLAN_SEED, round);
    print!("round {round}: shm fault plan {plan} ... ");
    std::io::stdout().flush().unwrap();
    let (published, stats) = shm_fault_round_with_stats(&plan);
    print!("ok ({published} published); ");
    // The round's cross-process post-mortem (DESIGN.md §14): poison
    // count and the per-process tallies, dead producer included.
    trace.record(trace_kind::SNAPSHOT, stats.entries().len() as u64);
    println!("stats {}", stats.to_json());
    // drop_wakes is driver-side: withhold every wake and require the
    // deadline (not a hang) to end a timed wait.
    if plan.drop_wakes {
        print!("round {round}: dropped-wake timed recv ... ");
        std::io::stdout().flush().unwrap();
        let timeout = Duration::from_millis(25);
        let waited = timed_recv_dropped_wake_round(timeout);
        assert!(
            waited < timeout + Duration::from_millis(250),
            "timed recv overshot deadline + quantum: {waited:?}"
        );
        println!("ok (deadline recovered in {waited:?})");
    } else {
        println!("round {round}: no dropped wakes in this plan");
    }
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let force_fail: Option<u64> = std::env::var("MEMBQ_SOAK_FORCE_FAIL")
        .ok()
        .and_then(|v| v.parse().ok());
    let trace = TraceRing::with_capacity(256);
    for round in 0..rounds {
        trace.record(trace_kind::ROUND_START, round);
        if force_fail == Some(round) {
            fail_with_trace(&trace, round, "forced by MEMBQ_SOAK_FORCE_FAIL");
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_round(round, &trace);
        }));
        if let Err(payload) = outcome {
            let why = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panic (non-string payload)");
            fail_with_trace(&trace, round, why);
        }
        trace.record(trace_kind::ROUND_OK, round);
    }
    println!("soak complete: {rounds} rounds");
}
