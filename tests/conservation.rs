//! Concurrent conservation tests: under multi-producer/multi-consumer
//! load, every sound queue must deliver each enqueued token exactly once
//! (no loss, no duplication) and preserve per-producer FIFO order — the
//! latter only for the globally-FIFO kinds; the sharded compositions
//! relax it to per-shard FIFO (DESIGN.md §8) and are held to exactly-once
//! delivery plus exact residue.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use membq::bench_registry::{DynQueue, QueueKind, ALL_KINDS};

/// Exactly-once delivery over the consumers' combined streams.
fn check_exactly_once(outputs: &[Vec<u64>], total: u64, name: &str) {
    let mut seen = HashSet::new();
    for out in outputs {
        for &v in out {
            assert!(seen.insert(v), "{name}: duplicate token {v}");
        }
    }
    assert_eq!(seen.len() as u64, total, "{name}: tokens lost");
}

/// Per-producer FIFO within each consumer's stream (a weaker but
/// schedule-independent consequence of linearizability). Tokens encode
/// their producer as `1 + p·per + i`. The sharded kinds legitimately
/// violate this once a producer overflows its home shard, so callers
/// gate it on `DynQueue::fifo`.
fn check_per_producer_fifo(outputs: &[Vec<u64>], producers: usize, per: u64, name: &str) {
    for out in outputs {
        let mut last = vec![0u64; producers];
        for &v in out {
            let p = ((v - 1) / per) as usize;
            assert!(
                v > last[p],
                "{name}: consumer saw producer {p}'s tokens out of order"
            );
            last[p] = v;
        }
    }
}

fn mpmc_conservation(q: Arc<Box<dyn DynQueue>>, producers: usize, consumers: usize, per: u64) {
    let total = per * producers as u64;
    let consumed = Arc::new(AtomicU64::new(0));
    let mut outputs: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|s| {
        for p in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let base = 1 + p as u64 * per;
                for i in 0..per {
                    while !q.enqueue(p, base + i) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            handles.push(s.spawn(move || {
                let tid = producers + c;
                let mut got = Vec::new();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    match q.dequeue(tid) {
                        Some(v) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        }
                        None if done => break,
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        outputs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    check_exactly_once(&outputs, total, q.name());
    if q.fifo() {
        check_per_producer_fifo(&outputs, producers, per, q.name());
    }
    assert_eq!(
        q.dequeue(0),
        None,
        "{}: residue after conservation",
        q.name()
    );
}

#[test]
fn mpmc_conservation_all_sound_queues() {
    for kind in ALL_KINDS {
        let q = kind.build(16, 4);
        if !q.sound() {
            continue;
        }
        mpmc_conservation(Arc::new(q), 2, 2, 2_000);
    }
}

#[test]
fn mpmc_conservation_tiny_capacity_high_churn() {
    // Capacity 2 maximizes wraparound pressure: every slot is reused
    // thousands of times.
    for kind in [
        QueueKind::Distinct,
        QueueKind::Dcss,
        QueueKind::Optimal,
        QueueKind::Segment,
        QueueKind::LlSc,
        QueueKind::Vyukov,
        QueueKind::ShardedOptimal,
        QueueKind::ShardedSegment,
    ] {
        let q = kind.build(2, 4);
        mpmc_conservation(Arc::new(q), 2, 2, 1_500);
    }
}

#[test]
fn spsc_strict_fifo_all_sound_queues() {
    for kind in ALL_KINDS {
        let q = kind.build(8, 2);
        if !q.sound() || !q.fifo() {
            continue; // sharded kinds: per-shard FIFO only (DESIGN.md §8)
        }
        let q = Arc::new(q);
        let n = 4_000u64;
        std::thread::scope(|s| {
            let qp = Arc::clone(&q);
            s.spawn(move || {
                for v in 1..=n {
                    while !qp.enqueue(0, v) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut expect = 1u64;
            while expect <= n {
                match q.dequeue(1) {
                    Some(v) => {
                        assert_eq!(v, expect, "{}: SPSC order broken", q.name());
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    }
}

/// Batched MPMC conservation: producers push through `enqueue_many`,
/// consumers drain through `dequeue_many` — the native batch fast paths
/// (segment runs, slot runs) under real contention. For FIFO kinds,
/// per-producer order must additionally survive batching (elements of a
/// batch linearize in slice order).
fn batched_mpmc_conservation(q: Arc<Box<dyn DynQueue>>, producers: usize, per: u64, batch: usize) {
    let total = per * producers as u64;
    let check_fifo = q.fifo();
    let consumed = Arc::new(AtomicU64::new(0));
    let mut outputs: Vec<Vec<u64>> = Vec::new();
    let consumers = 2usize;

    std::thread::scope(|s| {
        for p in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let vals: Vec<u64> = (0..per).map(|i| 1 + p as u64 * per + i).collect();
                let mut sent = 0usize;
                while sent < vals.len() {
                    let end = (sent + batch).min(vals.len());
                    let n = q.enqueue_many(p, &vals[sent..end]);
                    sent += n;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            handles.push(s.spawn(move || {
                let tid = producers + c;
                let mut got = Vec::new();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    let before = got.len();
                    let n = q.dequeue_many(tid, batch, &mut got);
                    assert_eq!(n, got.len() - before, "{}: count contract", q.name());
                    if n > 0 {
                        consumed.fetch_add(n as u64, Ordering::Relaxed);
                    } else if done {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            }));
        }
        outputs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    check_exactly_once(&outputs, total, q.name());
    if check_fifo {
        // Elements of a batch linearize in slice order, so batching must
        // not cost the FIFO kinds their per-producer order.
        check_per_producer_fifo(&outputs, producers, per, q.name());
    }
    assert_eq!(q.dequeue(0), None, "{}: residue after batches", q.name());
}

#[test]
fn batched_mpmc_conservation_all_sound_queues() {
    for kind in ALL_KINDS {
        let q = kind.build(16, 4);
        if !q.sound() {
            continue;
        }
        batched_mpmc_conservation(Arc::new(q), 2, 1_500, 5);
    }
}

#[test]
fn batched_conservation_tiny_capacity_sharded() {
    // Minimum shard sizes (C=4 over 4 shards → 1 slot each) under batch
    // churn: the steal rotation is exercised on every operation.
    for kind in [QueueKind::ShardedOptimal, QueueKind::ShardedSegment] {
        let q = kind.build(4, 4);
        batched_mpmc_conservation(Arc::new(q), 2, 1_000, 3);
    }
}

#[test]
fn repeated_value_storm_on_value_independent_queues() {
    // Every producer enqueues the SAME token: the regime where Listing 2's
    // assumption fails but the value-independent designs must stay exact.
    for kind in [
        QueueKind::Dcss,
        QueueKind::Optimal,
        QueueKind::Segment,
        QueueKind::LlSc,
        QueueKind::Vyukov,
        QueueKind::Scq,
        QueueKind::MutexRing,
        QueueKind::Crossbeam,
        QueueKind::Ms,
        QueueKind::ShardedOptimal,
        QueueKind::ShardedSegment,
    ] {
        let q = Arc::new(kind.build(4, 3));
        let per = 2_500u64;
        std::thread::scope(|s| {
            for p in 0..2 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for _ in 0..per {
                        while !q.enqueue(p, 42) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut got = 0u64;
            while got < 2 * per {
                match q.dequeue(2) {
                    Some(v) => {
                        assert_eq!(v, 42, "{}", q.name());
                        got += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
        assert_eq!(q.dequeue(0), None, "{}: exact count", q.name());
    }
}
