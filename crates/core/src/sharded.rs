//! The **scale layer**'s sharded queue: `S` independent sub-queues behind
//! per-thread shard affinity (DESIGN.md §8).
//!
//! The paper's algorithms serialize every operation through one pair of
//! positioning counters — the classic single-ring scalability ceiling its
//! industrial-class baselines also hit. [`ShardedQueue`] composes `S`
//! sub-queues of capacity `C/S` into one logical queue of capacity `C`:
//! each registered thread owns a *home shard* (`tid % S`) that it tries
//! first, rotating to the other shards only when the home shard is full
//! (enqueue) or empty (dequeue) — "steal-on-full / steal-on-empty".
//! Disjoint producer/consumer pairs therefore touch disjoint counters and
//! scale with `S` instead of contending on one serialization point.
//!
//! ## Relaxed semantics — read this before using it
//!
//! Sharding deliberately trades **global FIFO for per-shard FIFO**:
//!
//! * Elements that pass through the *same* shard are delivered in FIFO
//!   order (each shard is a full bounded queue from the paper).
//! * Elements in *different* shards have no ordering relation, even when
//!   their enqueues were sequential. A single thread that overflows its
//!   home shard and steals will observe its own values out of global
//!   order.
//! * Under concurrency, `Full`/`None` refusals are **best-effort**: the
//!   shards are scanned one at a time, so a counterpart can create space
//!   (or an element) in an already-visited shard mid-scan — the same
//!   relaxation the paper notes for Θ(C) industrial ring buffers. When
//!   quiescent the refusals are exact: all-shards-full ⇔ `len() == C`.
//!
//! What survives, exactly: per-shard FIFO, conservation (every accepted
//! element is delivered exactly once), and linearizability against the
//! **pool** (multiset) specification — `bq-sim`'s
//! `check_history_pool` checker certifies recorded histories, and
//! `tests/linearizability_stress.rs` asserts exactly this contract (not
//! more).
//!
//! ## Memory overhead — Θ(S · ovh(Q))
//!
//! The composition pays `S` times the sub-queue overhead plus a constant
//! shard directory: for `ShardedQueue<OptimalQueue>` that is **Θ(S·T)** —
//! `S` announcement arrays of `T` slots, `S` pools of `2T` descriptors,
//! `S` counter pairs — extending the paper's overhead table to the
//! composed structure (asserted numerically in
//! `tests/footprint_claims.rs`). Element storage stays exactly `C`
//! value-locations, split across the shards.
//!
//! ## Batching
//!
//! The [`ConcurrentQueue`] batch extension is overridden so that a batch
//! sticks to one shard for as long as that shard accepts/produces
//! elements, which both amortizes the shard-selection scan **and** keeps
//! whole runs inside the sub-queue's native batch fast path
//! (segment-local runs, slot runs).

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::simx::SimAtomicUsize;

use crate::boxed::PointerCapable;
use crate::obs::{MetricsSnapshot, ShardCounters};
use crate::optimal::OptimalQueue;
use crate::queue::{ConcurrentQueue, Full};
use crate::segment::SegmentQueue;
use bq_memtrack::{FootprintBreakdown, FootprintEntry, MemoryFootprint, OverheadClass};

/// `S` sub-queues of capacity `C/S` behind per-thread shard affinity with
/// steal-on-full / steal-on-empty rotation. See the module docs for the
/// exact (relaxed) semantics and the Θ(S · ovh(Q)) overhead accounting.
///
/// ```
/// use bq_core::{ConcurrentQueue, OptimalQueue, ShardedQueue};
///
/// // 4 shards × 256 slots, up to 8 threads (each shard admits all 8).
/// let q = ShardedQueue::<OptimalQueue>::optimal(1024, 4, 8);
/// let mut h = q.register();
/// assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3]), 3);
/// let mut out = Vec::new();
/// assert_eq!(q.dequeue_many(&mut h, 3, &mut out), 3);
/// assert_eq!(q.capacity(), 1024);
/// ```
pub struct ShardedQueue<Q: ConcurrentQueue> {
    shards: Box<[Q]>,
    next_tid: SimAtomicUsize,
    /// Fault-containment state, one entry per shard (DESIGN.md §13).
    health: Box<[ShardHealth]>,
    /// Number of currently quarantined shards; the quarantine claim
    /// protocol keeps this strictly below `S` (the last healthy shard
    /// can never be quarantined, so enqueues always have a target).
    quarantined_count: SimAtomicUsize,
    /// Consecutive-refusal threshold for *automatic* quarantine; 0 (the
    /// default) disables it — see [`set_quarantine_threshold`]
    /// (ShardedQueue::set_quarantine_threshold) for why it is opt-in.
    quarantine_threshold: SimAtomicUsize,
    /// Scale-layer statistics (DESIGN.md §14); a ZST with `obs` off.
    /// Per-shard *refusals* are deliberately not duplicated here: the
    /// quarantine health counter below is the one refusal mechanism and
    /// [`metrics`](ConcurrentQueue::metrics) reports it directly.
    obs: ShardCounters,
}

/// Per-shard health: a consecutive-refusal counter (enqueue-side only —
/// an empty shard is normal, a persistently full one may be wedged) and
/// the quarantine flag (0 = healthy, 1 = quarantined; a `usize` so the
/// claim can be a CAS).
struct ShardHealth {
    refusals: SimAtomicUsize,
    quarantined: SimAtomicUsize,
}

impl ShardHealth {
    fn new() -> Self {
        ShardHealth {
            refusals: SimAtomicUsize::new(0),
            quarantined: SimAtomicUsize::new(0),
        }
    }
}

/// Per-thread handle: the home-shard index plus one sub-handle per shard
/// (rotation may visit any of them).
pub struct ShardedHandle<Q: ConcurrentQueue> {
    home: usize,
    handles: Box<[Q::Handle]>,
}

impl<Q: ConcurrentQueue> ShardedQueue<Q> {
    /// Compose pre-built shards into one logical queue. The shards'
    /// capacities sum to the logical capacity `C`; every shard must admit
    /// every thread that will register here (rotation touches all shards).
    pub fn from_shards(shards: Vec<Q>) -> Self {
        assert!(!shards.is_empty(), "at least one shard required");
        let health = shards.iter().map(|_| ShardHealth::new()).collect();
        ShardedQueue {
            shards: shards.into_boxed_slice(),
            next_tid: SimAtomicUsize::new(0),
            health,
            quarantined_count: SimAtomicUsize::new(0),
            quarantine_threshold: SimAtomicUsize::new(0),
            obs: ShardCounters::new(),
        }
    }

    /// Build `s` shards splitting a total capacity `c` near-evenly
    /// (`c % s` leading shards get one extra slot). `make` receives the
    /// shard index and its capacity. `s` is clamped to `1..=c` so every
    /// shard has at least one slot.
    pub fn with_capacity_sharded(c: usize, s: usize, make: impl Fn(usize, usize) -> Q) -> Self {
        assert!(c > 0, "capacity must be positive");
        let s = s.clamp(1, c);
        let shards: Vec<Q> = (0..s)
            .map(|i| {
                let cap = c / s + usize::from(i < c % s);
                let q = make(i, cap);
                assert_eq!(q.capacity(), cap, "shard {i} built with wrong capacity");
                q
            })
            .collect();
        Self::from_shards(shards)
    }

    /// The shard count `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i` (tests and accounting).
    pub fn shard(&self, i: usize) -> &Q {
        &self.shards[i]
    }

    /// The steal-rotation scan shared by all four operation paths: visit
    /// the shards home-first, then rotating through the rest, handing
    /// `visit` each shard (with its index and per-shard handle) until it
    /// breaks (operation satisfied) or every shard was tried.
    fn rotate<B>(
        &self,
        h: &mut ShardedHandle<Q>,
        mut visit: impl FnMut(usize, &Q, &mut Q::Handle) -> ControlFlow<B>,
    ) -> Option<B> {
        let s = self.shards.len();
        for off in 0..s {
            let i = (h.home + off) % s;
            if off > 0 {
                // The scan left the home shard: a contention/imbalance
                // signal regardless of where it ends up succeeding.
                self.obs.rotations.hit();
            }
            if let ControlFlow::Break(b) = visit(i, &self.shards[i], &mut h.handles[i]) {
                if off > 0 {
                    self.obs.steals.hit();
                }
                return Some(b);
            }
        }
        None
    }

    // ---- fault containment: per-shard health + quarantine (§13) ---------

    /// Is shard `i` quarantined? Quarantined shards are skipped by the
    /// enqueue rotation (home-shard affinity remaps to the next healthy
    /// shard) but still visited by dequeues, so nothing inside them is
    /// stranded.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.health[i].quarantined.load(Ordering::SeqCst) != 0
    }

    /// Number of currently quarantined shards (always `< S`).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined_count.load(Ordering::SeqCst)
    }

    /// Consecutive enqueue refusals by shard `i` since its last accept
    /// (health instrumentation; reset on success and on un-quarantine).
    pub fn shard_refusals(&self, i: usize) -> usize {
        self.health[i].refusals.load(Ordering::SeqCst)
    }

    /// Quarantine shard `i`: enqueues stop targeting it (dequeues keep
    /// draining it). Refused — returns `false` — when `i` is already
    /// quarantined or when it is the **last healthy shard**: the logical
    /// queue never degrades to zero enqueue targets. The claim is
    /// race-free: a slot below `S - 1` is reserved by CAS on the global
    /// count before the per-shard flag is taken.
    pub fn quarantine(&self, i: usize) -> bool {
        let s = self.shards.len();
        // Reserve one of the S-1 quarantine slots.
        let mut c = self.quarantined_count.load(Ordering::SeqCst);
        loop {
            if c + 1 >= s {
                return false; // would quarantine the last healthy shard
            }
            match self.quarantined_count.compare_exchange(
                c,
                c + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(cur) => c = cur,
            }
        }
        // Claim the shard's flag; on a lost race (someone else already
        // quarantined `i`), hand the slot back.
        if self.health[i]
            .quarantined
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.quarantined_count.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        self.obs.quarantines.hit();
        true
    }

    /// Lift a quarantine (e.g. after an operator verified the shard is
    /// live again). Resets the refusal counter so a stale count does not
    /// immediately re-trip an automatic threshold. Returns `false` if
    /// the shard was not quarantined.
    pub fn un_quarantine(&self, i: usize) -> bool {
        if self.health[i]
            .quarantined
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.health[i].refusals.store(0, Ordering::SeqCst);
            self.quarantined_count.fetch_sub(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Arm automatic quarantine: a shard that refuses `threshold`
    /// consecutive enqueues is quarantined (subject to the last-healthy
    /// rule). **Opt-in and off by default (0)**: a bounded queue cannot
    /// distinguish "legitimately full under load" from "wedged" without
    /// timing information, so auto-quarantine is only sound for
    /// deployments where a persistently full shard is known to indicate
    /// a fault (e.g. a crashed consumer bound to that shard).
    pub fn set_quarantine_threshold(&self, threshold: usize) {
        self.quarantine_threshold.store(threshold, Ordering::SeqCst);
    }

    /// Health bookkeeping after shard `i` refused an enqueue.
    fn note_refusal(&self, i: usize) {
        let n = self.health[i].refusals.fetch_add(1, Ordering::SeqCst) + 1;
        let threshold = self.quarantine_threshold.load(Ordering::SeqCst);
        if threshold > 0 && n >= threshold && !self.is_quarantined(i) {
            self.quarantine(i);
        }
    }

    /// Health bookkeeping after shard `i` accepted an enqueue.
    fn note_accept(&self, i: usize) {
        // Cheap fast path: only clear a dirtied counter.
        if self.health[i].refusals.load(Ordering::SeqCst) != 0 {
            self.health[i].refusals.store(0, Ordering::SeqCst);
        }
    }
}

impl ShardedQueue<OptimalQueue> {
    /// The flagship composition: `S` memory-optimal Listing 5 queues —
    /// total overhead **Θ(S·T)**, element storage exactly `C` slots.
    pub fn optimal(c: usize, s: usize, max_threads: usize) -> Self {
        Self::with_capacity_sharded(c, s, |_, cap| {
            OptimalQueue::with_capacity_and_threads(cap, max_threads)
        })
    }
}

impl ShardedQueue<SegmentQueue> {
    /// Sharded Listing 1: per-shard segment size defaults to `√(C/S)`.
    pub fn segmented(c: usize, s: usize) -> Self {
        Self::with_capacity_sharded(c, s, |_, cap| SegmentQueue::with_capacity(cap))
    }
}

impl<Q: ConcurrentQueue> ConcurrentQueue for ShardedQueue<Q> {
    type Handle = ShardedHandle<Q>;

    fn register(&self) -> ShardedHandle<Q> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        ShardedHandle {
            home: tid % self.shards.len(),
            handles: self.shards.iter().map(|q| q.register()).collect(),
        }
    }

    fn enqueue(&self, h: &mut ShardedHandle<Q>, v: u64) -> Result<(), Full> {
        self.rotate(h, |i, q, sh| {
            // Degraded shards are skipped: home-shard affinity remaps to
            // the next healthy shard in rotation order.
            if self.is_quarantined(i) {
                return ControlFlow::Continue(());
            }
            match q.enqueue(sh, v) {
                Ok(()) => {
                    self.note_accept(i);
                    ControlFlow::Break(())
                }
                Err(_) => {
                    self.note_refusal(i);
                    ControlFlow::Continue(())
                }
            }
        })
        .ok_or(Full(v))
    }

    fn dequeue(&self, h: &mut ShardedHandle<Q>) -> Option<u64> {
        // Dequeues visit quarantined shards too: quarantine only stops
        // *new* elements, it never strands accepted ones.
        self.rotate(h, |_, q, sh| match q.dequeue(sh) {
            Some(v) => ControlFlow::Break(v),
            None => ControlFlow::Continue(()),
        })
    }

    fn enqueue_many(&self, h: &mut ShardedHandle<Q>, vs: &[u64]) -> usize {
        // A batch sticks to each shard for as long as it accepts: the
        // rotation advances on refusal, exactly like the single path.
        let mut done = 0;
        self.rotate(h, |i, q, sh| {
            if self.is_quarantined(i) {
                return ControlFlow::Continue(());
            }
            let accepted = q.enqueue_many(sh, &vs[done..]);
            done += accepted;
            if accepted > 0 {
                self.note_accept(i);
            }
            if done == vs.len() {
                ControlFlow::Break(())
            } else {
                self.note_refusal(i);
                ControlFlow::Continue(())
            }
        });
        done
    }

    fn dequeue_many(&self, h: &mut ShardedHandle<Q>, max: usize, out: &mut Vec<u64>) -> usize {
        let mut done = 0;
        self.rotate(h, |_, q, sh| {
            done += q.dequeue_many(sh, max - done, out);
            if done == max {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        done
    }

    fn capacity(&self) -> usize {
        self.shards.iter().map(|q| q.capacity()).sum()
    }

    fn max_token(&self) -> u64 {
        self.shards.iter().map(|q| q.max_token()).min().unwrap()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Scale-layer view: steal/rotation/quarantine counters, then — per
    /// shard — the live quarantine health state and the sub-queue's own
    /// metrics under a `shardN.` prefix. The `shardN.refusals` entries
    /// read the **same** `SeqCst` health counter the auto-quarantine
    /// threshold reads (DESIGN.md §14: one mechanism, two readers — obs
    /// never keeps a parallel refusal count that could drift from the
    /// one the containment protocol acts on).
    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        self.obs.snapshot_into("", &mut snap);
        #[cfg(feature = "obs")]
        {
            snap.push(
                "quarantined_count",
                self.quarantined_count.load(Ordering::SeqCst) as u64,
            );
            for (i, health) in self.health.iter().enumerate() {
                snap.push(
                    format!("shard{i}.refusals"),
                    health.refusals.load(Ordering::SeqCst) as u64,
                );
                snap.push(
                    format!("shard{i}.quarantined"),
                    health.quarantined.load(Ordering::SeqCst) as u64,
                );
            }
            for (i, q) in self.shards.iter().enumerate() {
                for (name, v) in q.metrics().entries() {
                    snap.push(format!("shard{i}.{name}"), *v);
                }
            }
        }
        snap
    }

    fn flush_metrics(&self, h: &mut ShardedHandle<Q>) {
        for (q, sh) in self.shards.iter().zip(h.handles.iter_mut()) {
            q.flush_metrics(sh);
        }
    }
}

impl<Q: PointerCapable> PointerCapable for ShardedQueue<Q> {
    fn drop_handle(&self) -> ShardedHandle<Q> {
        ShardedHandle {
            home: 0,
            handles: self.shards.iter().map(|q| q.drop_handle()).collect(),
        }
    }
}

impl<Q: ConcurrentQueue + MemoryFootprint> MemoryFootprint for ShardedQueue<Q> {
    /// Sum of the shard breakdowns (entries aggregated by overhead class,
    /// labelled `across S shards: …`) plus the constant shard directory.
    /// For `ShardedQueue<OptimalQueue>` the aggregate is Θ(S·T).
    fn footprint(&self) -> FootprintBreakdown {
        let s = self.shards.len();
        let mut element_bytes = 0;
        // Aggregate per class, preserving first-seen order.
        let mut classes: Vec<(OverheadClass, usize)> = Vec::new();
        for q in self.shards.iter() {
            let b = q.footprint();
            element_bytes += b.element_bytes;
            for e in b.overhead {
                match classes.iter_mut().find(|(c, _)| *c == e.class) {
                    Some((_, bytes)) => *bytes += e.bytes,
                    None => classes.push((e.class, e.bytes)),
                }
            }
        }
        let mut out = FootprintBreakdown::with_elements(element_bytes);
        for (class, bytes) in classes {
            out.overhead.push(FootprintEntry::new(
                format!("across {s} shards: {class}"),
                bytes,
                class,
            ));
        }
        out.add(
            "shard directory (boxed-slice fat pointer + tid counter)",
            std::mem::size_of::<Box<[Q]>>() + std::mem::size_of::<AtomicUsize>(),
            OverheadClass::Other,
        )
        .add(
            format!("fault containment: {s} shard health entries + quarantine words"),
            std::mem::size_of::<Box<[ShardHealth]>>()
                + s * std::mem::size_of::<ShardHealth>()
                + 2 * std::mem::size_of::<SimAtomicUsize>(),
            OverheadClass::Other,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sharded(c: usize, s: usize, t: usize) -> ShardedQueue<OptimalQueue> {
        ShardedQueue::<OptimalQueue>::optimal(c, s, t)
    }

    #[test]
    fn capacity_splits_exactly() {
        let q = sharded(10, 4, 1);
        assert_eq!(q.shard_count(), 4);
        assert_eq!(q.capacity(), 10);
        let caps: Vec<usize> = (0..4).map(|i| q.shard(i).capacity()).collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let q = sharded(2, 8, 1);
        assert_eq!(q.shard_count(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn full_only_when_all_shards_full() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        // Draining one slot re-admits.
        assert!(q.dequeue(&mut h).is_some());
        q.enqueue(&mut h, 5).unwrap();
    }

    #[test]
    fn empty_only_when_all_shards_empty() {
        let q = sharded(4, 2, 2);
        let mut h0 = q.register(); // home shard 0
        let mut h1 = q.register(); // home shard 1
        q.enqueue(&mut h0, 7).unwrap(); // lands in shard 0
                                        // The other thread's home shard is empty; it must steal.
        assert_eq!(q.dequeue(&mut h1), Some(7));
        assert_eq!(q.dequeue(&mut h1), None);
        assert_eq!(q.dequeue(&mut h0), None);
    }

    #[test]
    fn per_shard_fifo_holds_global_fifo_does_not() {
        // The documented relaxation, pinned deterministically: a single
        // thread with home shard 0 overflows into shard 1; its dequeues
        // then drain home first — out of global enqueue order, but in
        // FIFO order *within* each shard.
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap(); // 1,2 → shard 0; 3,4 → shard 1
        }
        assert_eq!(q.dequeue(&mut h), Some(1));
        assert_eq!(q.dequeue(&mut h), Some(2));
        q.enqueue(&mut h, 5).unwrap(); // home shard 0 has space again
                                       // Global FIFO would yield 3 next; per-shard affinity yields 5.
        assert_eq!(q.dequeue(&mut h), Some(5), "global FIFO is relaxed");
        assert_eq!(q.dequeue(&mut h), Some(3), "shard 1 still FIFO");
        assert_eq!(q.dequeue(&mut h), Some(4));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn batch_ops_roundtrip_across_shards() {
        let q = sharded(8, 4, 1);
        let mut h = q.register();
        let vs: Vec<u64> = (1..=8).collect();
        assert_eq!(q.enqueue_many(&mut h, &vs), 8);
        assert_eq!(q.enqueue_many(&mut h, &[9]), 0, "all shards full");
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 8, &mut out), 8);
        out.sort_unstable();
        assert_eq!(out, vs, "conservation across shards");
        assert_eq!(q.dequeue_many(&mut h, 1, &mut out), 0);
    }

    #[test]
    fn batch_partial_acceptance_reports_prefix() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3, 4, 5, 6]), 4);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 10, &mut out), 4);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3, 4], "accepted exactly the prefix");
    }

    #[test]
    fn overhead_is_s_times_subqueue_plus_directory() {
        let (c, s, t) = (1024, 4, 8);
        let q = sharded(c, s, t);
        let single = OptimalQueue::with_capacity_and_threads(c / s, t);
        // Directory: boxed-slice fat pointer + tid counter (24 bytes),
        // plus the fault-containment state — a health fat pointer, S
        // two-word health entries, and the two global quarantine words.
        let health = 16 + s * std::mem::size_of::<super::ShardHealth>() + 16;
        assert_eq!(
            q.overhead_bytes(),
            s * single.overhead_bytes() + 24 + health,
            "Θ(S·T): S sub-queue overheads plus the constant-per-shard directory"
        );
        assert_eq!(q.element_bytes(), c * 8, "element storage stays C slots");
        let _ = q.max_token();
    }

    #[test]
    fn quarantined_shard_skipped_by_enqueue_but_drained_by_dequeue() {
        let q = sharded(4, 2, 1);
        let mut h = q.register(); // home shard 0
        q.enqueue(&mut h, 1).unwrap();
        q.enqueue(&mut h, 2).unwrap(); // shard 0 now full (cap 2)
        assert!(q.quarantine(0), "shard 0 quarantined");
        assert!(q.is_quarantined(0));
        assert_eq!(q.quarantined_count(), 1);
        // Home shard is quarantined: affinity remaps to shard 1.
        q.enqueue(&mut h, 3).unwrap();
        assert_eq!(q.shard(0).len(), 2, "no new elements into shard 0");
        assert_eq!(q.shard(1).len(), 1);
        // Dequeue still drains the quarantined shard — nothing stranded.
        let mut got = vec![
            q.dequeue(&mut h).unwrap(),
            q.dequeue(&mut h).unwrap(),
            q.dequeue(&mut h).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "conservation under quarantine");
        // Lift: shard 0 is an enqueue target again.
        assert!(q.un_quarantine(0));
        assert_eq!(q.quarantined_count(), 0);
        q.enqueue(&mut h, 4).unwrap();
        assert_eq!(q.shard(0).len(), 1);
    }

    #[test]
    fn last_healthy_shard_cannot_be_quarantined() {
        let q = sharded(4, 2, 1);
        assert!(q.quarantine(1));
        assert!(!q.quarantine(0), "last healthy shard must stay enqueuable");
        assert!(!q.quarantine(1), "already quarantined");
        let mut h = q.register();
        q.enqueue(&mut h, 7).unwrap(); // still has a target
        assert_eq!(q.shard(0).len(), 1);
        // Single-shard queues can never quarantine at all.
        let solo = sharded(2, 1, 1);
        assert!(!solo.quarantine(0));
    }

    #[test]
    fn auto_quarantine_trips_after_consecutive_refusals() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap(); // both shards full
        }
        q.set_quarantine_threshold(2);
        // Two failing sweeps: every shard refuses twice; shard 0 trips
        // the threshold, shard 1 survives as the last healthy shard.
        assert_eq!(q.enqueue(&mut h, 9), Err(Full(9)));
        assert_eq!(q.enqueue(&mut h, 9), Err(Full(9)));
        assert!(q.is_quarantined(0), "threshold reached");
        assert!(!q.is_quarantined(1), "last healthy shard protected");
        assert!(q.shard_refusals(1) >= 2, "refusals recorded regardless");
        // Draining + accepting resets the counter on the healthy shard.
        while q.dequeue(&mut h).is_some() {}
        q.enqueue(&mut h, 10).unwrap(); // lands in shard 1 (0 quarantined)
        assert_eq!(q.shard(1).len(), 1);
        assert_eq!(q.shard_refusals(1), 0, "accept resets the counter");
        assert!(q.un_quarantine(0));
        assert_eq!(q.shard_refusals(0), 0, "un-quarantine resets too");
    }

    /// S2 seam regression: the metrics snapshot and the quarantine
    /// threshold read the *same* per-shard refusal counter, and the
    /// last-healthy-shard invariant holds identically with `obs` on and
    /// off (this test compiles both ways and is run in both CI lanes).
    #[test]
    fn quarantine_and_metrics_share_one_refusal_counter() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap(); // both shards full
        }
        assert_eq!(q.enqueue(&mut h, 9), Err(Full(9))); // each shard refuses once
        #[cfg(feature = "obs")]
        {
            let snap = q.metrics();
            assert_eq!(
                snap.get("shard0.refusals"),
                Some(q.shard_refusals(0) as u64),
                "snapshot reads the quarantine counter, not a copy"
            );
            assert_eq!(
                snap.get("shard1.refusals"),
                Some(q.shard_refusals(1) as u64)
            );
            assert!(snap.get("rotations").unwrap() >= 1, "full sweep rotated");
            assert_eq!(snap.get("quarantined_count"), Some(0));
            assert!(
                snap.get("shard0.enq_attempts").is_some(),
                "sub-queue metrics nest under the shard prefix"
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            assert!(q.metrics().is_empty(), "obs off: no fabricated zeros");
            assert!(q.shard_refusals(0) >= 1, "functional counter still live");
        }
        // The containment invariant is identical in both configurations:
        // the threshold trips shard 0, and the last healthy shard
        // survives no matter how many refusals it records.
        q.set_quarantine_threshold(1);
        assert_eq!(q.enqueue(&mut h, 9), Err(Full(9)));
        assert!(q.is_quarantined(0), "threshold tripped");
        assert!(
            !q.is_quarantined(1),
            "last healthy shard protected, obs on or off"
        );
        #[cfg(feature = "obs")]
        {
            let snap = q.metrics();
            assert_eq!(snap.get("quarantines"), Some(1));
            assert_eq!(snap.get("shard0.quarantined"), Some(1));
            assert_eq!(snap.get("quarantined_count"), Some(1));
        }
    }

    #[test]
    fn sharded_mpmc_conservation() {
        let q = Arc::new(sharded(16, 4, 4));
        let per = 2_000u64;
        let producers = 2u64;
        let total = per * producers;
        std::thread::scope(|sc| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                sc.spawn(move || {
                    let mut h = q.register();
                    for i in 0..per {
                        let v = 1 + p * per + i;
                        while q.enqueue(&mut h, v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            sc.spawn(move || {
                let mut h = q.register();
                let mut seen = std::collections::HashSet::new();
                while (seen.len() as u64) < total {
                    match q.dequeue(&mut h) {
                        Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                        None => std::thread::yield_now(),
                    }
                }
            });
        });
        let mut h = q.register();
        assert_eq!(q.dequeue(&mut h), None, "exact conservation");
    }

    #[test]
    fn sharded_segment_composition_builds() {
        let q = ShardedQueue::<SegmentQueue>::segmented(64, 4);
        let mut h = q.register();
        assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3]), 3);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 3, &mut out), 3);
        assert_eq!(q.shard(0).capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedQueue::<OptimalQueue>::from_shards(Vec::new());
    }
}
