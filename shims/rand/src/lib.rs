//! Offline stand-in for the `rand` crate (the seeded-`StdRng` subset the
//! simulator's fuzzer uses). Vendored because the build environment has no
//! crates.io access.
//!
//! [`rngs::StdRng`] is an xoshiro256** generator seeded through splitmix64
//! — high-quality, deterministic, and fast; the fuzz tests only need
//! reproducible streams, not the exact bit-stream of upstream `StdRng`.

#![deny(missing_docs)]

/// Uniform sampling support for `gen_range` argument types.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draw a uniform sample using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e - s) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                s + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, same construction as rand.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (xoshiro256** under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..7);
            assert_eq!(x, b.gen_range(0usize..7));
            assert!(x < 7);
        }
        let mut heads = 0;
        for _ in 0..10_000 {
            if a.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((4_000..6_000).contains(&heads), "{heads} heads of 10000");
    }
}
