//! # membq — Memory Bounds for Concurrent Bounded Queues (reproduction)
//!
//! An executable reproduction of Aksenov, Koval, Kuznetsov & Paramonov,
//! *Memory Bounds for Concurrent Bounded Queues* (PPoPP 2024,
//! arXiv:2104.15003): every algorithm from the paper, the substrates they
//! need (software LL/SC, recyclable-descriptor DCSS, allocation tracking),
//! the related-work baselines, and an execution simulator that replays the
//! paper's lower-bound adversary and certifies its non-linearizable
//! executions.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`](bq_core) — the queue algorithms (Listings 1–5 + strawman);
//! * [`llsc`](bq_llsc) / [`dcss`](bq_dcss) — synchronization substrates;
//! * [`memtrack`](bq_memtrack) — the memory-overhead accounting;
//! * [`baselines`](bq_baselines) — Michael–Scott, Vyukov, SCQ-style,
//!   Tsigas–Zhang model, mutex ring, crossbeam;
//! * [`sim`](bq_sim) — the adversary + linearizability checker;
//! * [`shm`](bq_shm) — the shared-memory multi-process backend (mmap
//!   segments, crash-consistent `ShmQueue`, fork harness).
//!
//! Start with [`prelude`], the examples in `examples/`, and DESIGN.md /
//! EXPERIMENTS.md for the reproduction map.

pub use bq_baselines as baselines;
pub use bq_core as core;
pub use bq_dcss as dcss;
pub use bq_llsc as llsc;
pub use bq_memtrack as memtrack;
pub use bq_shm as shm;
pub use bq_sim as sim;

/// The experiment registry (all queues behind one object-safe interface),
/// re-exported for examples and downstream harnesses.
pub use bq_bench::registry as bench_registry;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use bq_core::{
        byte_ring, spsc_ring, AsyncQueue, BlockingQueue, BoxedQueue, ByteConsumer, ByteProducer,
        ConcurrentQueue, DcssQueue, DistinctQueue, EventCount, Full, LlScQueue, NaiveQueue,
        OptimalQueue, SegmentQueue, SendError, SeqRingQueue, ShardedQueue, SpscConsumer,
        SpscProducer, TokenGen, TryRecvError, TrySendError,
    };
    pub use bq_memtrack::MemoryFootprint;
}
