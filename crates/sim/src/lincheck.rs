//! A linearizability checker specialized to the bounded-queue
//! specification (Wing & Gong style exhaustive search with memoization).
//!
//! Given a concurrent history of `enqueue`/`dequeue` invocations and
//! responses, the checker searches for a total order that (1) respects the
//! real-time precedence of the history and (2) replays correctly against
//! the sequential bounded queue of Figure 1. Incomplete operations may be
//! assigned an effect or dropped, per the standard completion semantics
//! (§3.2 of the paper: "all complete operations … and a subset of
//! incomplete ones").
//!
//! Histories produced by the adversary experiments are small (tens of
//! operations), for which the exponential search with memoization is
//! instantaneous.

use std::collections::HashSet;
use std::collections::VecDeque;

use crate::controller::OpId;
use crate::machine::{Op, Ret};

/// One history event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryEvent {
    /// Operation invocation.
    Invoke {
        /// Operation id.
        id: OpId,
        /// Invoking thread.
        tid: usize,
        /// The operation.
        op: Op,
    },
    /// Operation response.
    Return {
        /// Operation id.
        id: OpId,
        /// The result.
        ret: Ret,
    },
}

/// A recorded concurrent history.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<HistoryEvent>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Append an event.
    pub fn push(&mut self, e: HistoryEvent) {
        self.events.push(e);
    }

    /// The raw event sequence.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.events
    }

    /// Render the history in the paper's `enq(v) / deq → v` notation, one
    /// event per line, for experiment reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                HistoryEvent::Invoke { id, tid, op } => {
                    let desc = match op {
                        Op::Enqueue(v) => format!("enq({v})"),
                        Op::Dequeue => "deq()".to_string(),
                    };
                    out.push_str(&format!("[T{tid}] invoke #{} {desc}\n", id.0));
                }
                HistoryEvent::Return { id, ret } => {
                    let desc = match ret {
                        Ret::EnqOk => "→ true".to_string(),
                        Ret::EnqFull => "→ false (full)".to_string(),
                        Ret::DeqVal(v) => format!("→ {v}"),
                        Ret::DeqEmpty => "→ ⊥ (empty)".to_string(),
                    };
                    out.push_str(&format!("       return #{} {desc}\n", id.0));
                }
            }
        }
        out
    }
}

/// Internal per-operation record.
#[derive(Debug, Clone, Copy)]
struct OpRec {
    op: Op,
    ret: Option<Ret>,
    invoke_pos: usize,
    return_pos: Option<usize>,
}

/// Outcome of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinResult {
    /// A witness linearization order (op ids in linearized sequence).
    Linearizable(Vec<OpId>),
    /// No valid linearization exists.
    NotLinearizable,
}

impl LinResult {
    /// `true` iff linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinResult::Linearizable(_))
    }
}

/// Check a history against the bounded-queue specification with the given
/// capacity.
///
/// # Panics
/// If the history contains more than 63 operations (the search uses a
/// 64-bit chosen-set mask) or malformed invoke/return pairing.
pub fn check_history(history: &History, capacity: usize) -> LinResult {
    let ops = collect_ops(history);
    assert!(ops.len() <= 63, "history too large for the checker");

    let mut searcher = Searcher {
        ops: &ops,
        capacity,
        visited: HashSet::new(),
        order: Vec::new(),
    };
    let complete_mask: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.ret.is_some())
        .fold(0, |m, (i, _)| m | (1 << i));
    if searcher.dfs(0, &mut VecDeque::new(), complete_mask) {
        LinResult::Linearizable(searcher.order)
    } else {
        LinResult::NotLinearizable
    }
}

fn collect_ops(history: &History) -> Vec<OpRec> {
    let mut ops: Vec<OpRec> = Vec::new();
    let mut index_of_id: Vec<Option<usize>> = Vec::new();
    for (pos, e) in history.events().iter().enumerate() {
        match *e {
            HistoryEvent::Invoke { id, op, .. } => {
                if index_of_id.len() <= id.0 {
                    index_of_id.resize(id.0 + 1, None);
                }
                assert!(index_of_id[id.0].is_none(), "duplicate invoke for {id:?}");
                index_of_id[id.0] = Some(ops.len());
                ops.push(OpRec {
                    op,
                    ret: None,
                    invoke_pos: pos,
                    return_pos: None,
                });
            }
            HistoryEvent::Return { id, ret } => {
                let idx = index_of_id
                    .get(id.0)
                    .copied()
                    .flatten()
                    .expect("return without invoke");
                assert!(ops[idx].ret.is_none(), "duplicate return for {id:?}");
                ops[idx].ret = Some(ret);
                ops[idx].return_pos = Some(pos);
            }
        }
    }
    ops
}

struct Searcher<'a> {
    ops: &'a [OpRec],
    capacity: usize,
    visited: HashSet<(u64, Vec<u64>)>,
    order: Vec<OpId>,
}

impl Searcher<'_> {
    /// DFS over linearization prefixes. `chosen` is the set of already
    /// linearized ops; `queue` the model state; `needed` the ops that must
    /// eventually be chosen (all complete ones).
    fn dfs(&mut self, chosen: u64, queue: &mut VecDeque<u64>, needed: u64) -> bool {
        if chosen & needed == needed {
            return true;
        }
        let key = (chosen, queue.iter().copied().collect::<Vec<_>>());
        if !self.visited.insert(key) {
            return false;
        }
        for (i, rec) in self.ops.iter().enumerate() {
            let bit = 1u64 << i;
            if chosen & bit != 0 {
                continue;
            }
            // Real-time order: `i` may linearize now only if no *unchosen*
            // op returned before `i` was invoked.
            let blocked = self.ops.iter().enumerate().any(|(j, other)| {
                chosen & (1 << j) == 0
                    && j != i
                    && matches!(other.return_pos, Some(rp) if rp < rec.invoke_pos)
            });
            if blocked {
                continue;
            }
            // Pending ops may also simply be dropped — modelled by never
            // choosing them (they are not in `needed`).
            let applied = self.apply(rec, queue);
            match applied {
                Apply::Ok(undo) => {
                    self.order.push(OpId(usize::MAX)); // placeholder, fixed below
                    *self.order.last_mut().unwrap() = self.op_id_of(i);
                    if self.dfs(chosen | bit, queue, needed) {
                        return true;
                    }
                    self.order.pop();
                    self.undo(undo, queue);
                }
                Apply::Mismatch => {}
            }
        }
        false
    }

    fn op_id_of(&self, index: usize) -> OpId {
        // Op ids are assigned in invocation order, identical to `ops` order.
        OpId(index)
    }

    fn apply(&self, rec: &OpRec, queue: &mut VecDeque<u64>) -> Apply {
        match (rec.op, rec.ret) {
            (Op::Enqueue(v), Some(Ret::EnqOk)) => {
                if queue.len() < self.capacity {
                    queue.push_back(v);
                    Apply::Ok(Undo::PopBack)
                } else {
                    Apply::Mismatch
                }
            }
            (Op::Enqueue(_), Some(Ret::EnqFull)) => {
                if queue.len() == self.capacity {
                    Apply::Ok(Undo::None)
                } else {
                    Apply::Mismatch
                }
            }
            (Op::Enqueue(v), None) => {
                // Pending enqueue given an effect: only meaningful if it
                // fits (a pending full-return has no effect and is covered
                // by dropping the op).
                if queue.len() < self.capacity {
                    queue.push_back(v);
                    Apply::Ok(Undo::PopBack)
                } else {
                    Apply::Mismatch
                }
            }
            (Op::Dequeue, Some(Ret::DeqVal(v))) => {
                if queue.front() == Some(&v) {
                    queue.pop_front();
                    Apply::Ok(Undo::PushFront(v))
                } else {
                    Apply::Mismatch
                }
            }
            (Op::Dequeue, Some(Ret::DeqEmpty)) => {
                if queue.is_empty() {
                    Apply::Ok(Undo::None)
                } else {
                    Apply::Mismatch
                }
            }
            (Op::Dequeue, None) => {
                // Pending dequeue given an effect: removes the head (its
                // unseen return can be anything).
                match queue.pop_front() {
                    Some(v) => Apply::Ok(Undo::PushFront(v)),
                    None => Apply::Ok(Undo::None),
                }
            }
            (Op::Enqueue(_), Some(Ret::DeqVal(_) | Ret::DeqEmpty))
            | (Op::Dequeue, Some(Ret::EnqOk | Ret::EnqFull)) => {
                panic!("malformed history: mismatched op/return kinds")
            }
        }
    }

    fn undo(&self, undo: Undo, queue: &mut VecDeque<u64>) {
        match undo {
            Undo::None => {}
            Undo::PopBack => {
                queue.pop_back();
            }
            Undo::PushFront(v) => queue.push_front(v),
        }
    }
}

enum Apply {
    Ok(Undo),
    Mismatch,
}

enum Undo {
    None,
    PopBack,
    PushFront(u64),
}

// ---------------------------------------------------------------------------
// Pool (multiset) specification — the scale layer's relaxation
// ---------------------------------------------------------------------------

/// Check a history against the **pool** (multiset) specification with the
/// given capacity — the contract `ShardedQueue` actually provides
/// (DESIGN.md §8).
///
/// Differences from the strict bounded-queue check:
///
/// * `dequeue` may return **any** element currently in the pool (FIFO
///   order is not enforced — sharding relaxes global FIFO to per-shard
///   FIFO, and per-shard order is not reconstructible from a value
///   history);
/// * `enq → full` and `deq → ⊥` are always admissible: the shard scan is
///   not atomic, so refusals are best-effort under concurrency (the same
///   relaxation the paper notes for Θ(C) industrial rings);
/// * everything else is still enforced — a dequeued value must have an
///   earlier-or-overlapping enqueue (no fabrication), each enqueue's
///   value is consumed at most once (no duplication), a successful
///   enqueue requires pool size < capacity, and real-time precedence is
///   respected.
///
/// # Panics
/// As [`check_history`]: > 63 operations or malformed pairing.
pub fn check_history_pool(history: &History, capacity: usize) -> LinResult {
    let ops = collect_ops(history);
    assert!(ops.len() <= 63, "history too large for the checker");

    let mut searcher = PoolSearcher {
        ops: &ops,
        capacity,
        visited: HashSet::new(),
        order: Vec::new(),
    };
    let complete_mask: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.ret.is_some())
        .fold(0, |m, (i, _)| m | (1 << i));
    let mut pool = Vec::new();
    if searcher.dfs(0, &mut pool, complete_mask) {
        LinResult::Linearizable(searcher.order)
    } else {
        LinResult::NotLinearizable
    }
}

struct PoolSearcher<'a> {
    ops: &'a [OpRec],
    capacity: usize,
    /// Memo key: (chosen mask, sorted pool contents).
    visited: HashSet<(u64, Vec<u64>)>,
    order: Vec<OpId>,
}

impl PoolSearcher<'_> {
    /// DFS over linearization prefixes; `pool` is kept sorted so the memo
    /// key is canonical.
    fn dfs(&mut self, chosen: u64, pool: &mut Vec<u64>, needed: u64) -> bool {
        if chosen & needed == needed {
            return true;
        }
        if !self.visited.insert((chosen, pool.clone())) {
            return false;
        }
        for (i, rec) in self.ops.iter().enumerate() {
            let bit = 1u64 << i;
            if chosen & bit != 0 {
                continue;
            }
            let blocked = self.ops.iter().enumerate().any(|(j, other)| {
                chosen & (1 << j) == 0
                    && j != i
                    && matches!(other.return_pos, Some(rp) if rp < rec.invoke_pos)
            });
            if blocked {
                continue;
            }
            for effect in self.effects(rec, pool) {
                match effect {
                    PoolEffect::Insert(v) => {
                        let pos = pool.partition_point(|&x| x <= v);
                        pool.insert(pos, v);
                        self.order.push(OpId(i));
                        if self.dfs(chosen | bit, pool, needed) {
                            return true;
                        }
                        self.order.pop();
                        pool.remove(pos);
                    }
                    PoolEffect::Remove(v) => {
                        let pos = pool.partition_point(|&x| x < v);
                        debug_assert_eq!(pool.get(pos), Some(&v));
                        pool.remove(pos);
                        self.order.push(OpId(i));
                        if self.dfs(chosen | bit, pool, needed) {
                            return true;
                        }
                        self.order.pop();
                        pool.insert(pos, v);
                    }
                    PoolEffect::NoOp => {
                        self.order.push(OpId(i));
                        if self.dfs(chosen | bit, pool, needed) {
                            return true;
                        }
                        self.order.pop();
                    }
                }
            }
        }
        false
    }

    /// Admissible effects for linearizing `rec` in the current pool state.
    fn effects(&self, rec: &OpRec, pool: &[u64]) -> Vec<PoolEffect> {
        match (rec.op, rec.ret) {
            (Op::Enqueue(v), Some(Ret::EnqOk)) => {
                if pool.len() < self.capacity {
                    vec![PoolEffect::Insert(v)]
                } else {
                    vec![]
                }
            }
            // Best-effort refusal: always admissible (see fn docs).
            (Op::Enqueue(_), Some(Ret::EnqFull)) => vec![PoolEffect::NoOp],
            (Op::Enqueue(v), None) => {
                if pool.len() < self.capacity {
                    vec![PoolEffect::Insert(v)]
                } else {
                    vec![]
                }
            }
            (Op::Dequeue, Some(Ret::DeqVal(v))) => {
                if pool.contains(&v) {
                    vec![PoolEffect::Remove(v)]
                } else {
                    vec![]
                }
            }
            (Op::Dequeue, Some(Ret::DeqEmpty)) => vec![PoolEffect::NoOp],
            (Op::Dequeue, None) => {
                // A pending dequeue may take any element (its unseen return
                // could be anything) or — when the pool is empty — land on
                // the ⊥ result.
                let mut effects: Vec<PoolEffect> = Vec::new();
                let mut last = None;
                for &v in pool {
                    if last != Some(v) {
                        effects.push(PoolEffect::Remove(v));
                        last = Some(v);
                    }
                }
                effects.push(PoolEffect::NoOp);
                effects
            }
            (Op::Enqueue(_), Some(Ret::DeqVal(_) | Ret::DeqEmpty))
            | (Op::Dequeue, Some(Ret::EnqOk | Ret::EnqFull)) => {
                panic!("malformed history: mismatched op/return kinds")
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum PoolEffect {
    Insert(u64),
    Remove(u64),
    NoOp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(h: &mut History, id: usize, tid: usize, op: Op) {
        h.push(HistoryEvent::Invoke {
            id: OpId(id),
            tid,
            op,
        });
    }
    fn ret(h: &mut History, id: usize, r: Ret) {
        h.push(HistoryEvent::Return {
            id: OpId(id),
            ret: r,
        });
    }

    #[test]
    fn sequential_history_linearizable() {
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(1));
        assert!(check_history(&h, 4).is_linearizable());
    }

    #[test]
    fn wrong_fifo_order_rejected() {
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqOk);
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(2)); // LIFO!
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Two overlapping enqueues, then dequeues can see either order.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        inv(&mut h, 1, 1, Op::Enqueue(2));
        ret(&mut h, 0, Ret::EnqOk);
        ret(&mut h, 1, Ret::EnqOk);
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(2));
        inv(&mut h, 3, 0, Op::Dequeue);
        ret(&mut h, 3, Ret::DeqVal(1));
        assert!(check_history(&h, 4).is_linearizable());
    }

    #[test]
    fn real_time_order_enforced() {
        // enq(1) completes before enq(2) starts; dequeue must not see 2
        // first.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 1, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqOk);
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(2));
        inv(&mut h, 3, 0, Op::Dequeue);
        ret(&mut h, 3, Ret::DeqVal(1));
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn full_return_requires_full_queue() {
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqFull); // capacity 2, queue has 1 → invalid
        assert_eq!(check_history(&h, 2), LinResult::NotLinearizable);

        let mut h2 = History::new();
        inv(&mut h2, 0, 0, Op::Enqueue(1));
        ret(&mut h2, 0, Ret::EnqOk);
        inv(&mut h2, 1, 0, Op::Enqueue(2));
        ret(&mut h2, 1, Ret::EnqOk);
        inv(&mut h2, 2, 0, Op::Enqueue(3));
        ret(&mut h2, 2, Ret::EnqFull); // now legal
        assert!(check_history(&h2, 2).is_linearizable());
    }

    #[test]
    fn empty_return_requires_empty_queue() {
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqEmpty);
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn pending_enqueue_can_justify_dequeue() {
        // An incomplete enqueue may take effect: deq → 5 is linearizable
        // if enq(5) is pending.
        let mut h = History::new();
        inv(&mut h, 0, 1, Op::Enqueue(5)); // never returns
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(5));
        assert!(check_history(&h, 4).is_linearizable());
    }

    #[test]
    fn pending_enqueue_can_be_dropped() {
        // An incomplete enqueue may also be ignored: deq → ⊥ stays legal.
        let mut h = History::new();
        inv(&mut h, 0, 1, Op::Enqueue(5)); // never returns
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqEmpty);
        assert!(check_history(&h, 4).is_linearizable());
    }

    #[test]
    fn dequeued_value_needs_a_source() {
        // deq → 9 with no enq(9) anywhere is impossible.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(9));
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn failed_enqueue_provides_no_value() {
        // enq(7) → false cannot be the source of deq → 7 (paper: a failed
        // enqueue has no effect).
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(7));
        ret(&mut h, 1, Ret::EnqFull);
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(7));
        assert_eq!(check_history(&h, 1), LinResult::NotLinearizable);
    }

    #[test]
    fn render_uses_paper_notation() {
        let mut h = History::new();
        inv(&mut h, 0, 2, Op::Enqueue(7));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(7));
        let s = h.render();
        assert!(s.contains("enq(7)"));
        assert!(s.contains("deq()"));
        assert!(s.contains("[T2]"));
    }

    #[test]
    fn pool_spec_accepts_non_fifo_order() {
        // The exact history the strict checker rejects in
        // `real_time_order_enforced`: sequential enqueues observed out of
        // order. A sharded queue may legally produce it.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 1, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqOk);
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(2));
        inv(&mut h, 3, 0, Op::Dequeue);
        ret(&mut h, 3, Ret::DeqVal(1));
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
        assert!(check_history_pool(&h, 4).is_linearizable());
    }

    #[test]
    fn pool_spec_still_rejects_fabrication() {
        // No pool relaxation invents values: deq → 9 with no enq(9).
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(9));
        assert_eq!(check_history_pool(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn pool_spec_still_rejects_duplication() {
        // One enqueue, two dequeues of the same value.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(7));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(7));
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqVal(7));
        assert_eq!(check_history_pool(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn pool_spec_still_rejects_causality_violation() {
        // A dequeue that completed before the enqueue was invoked cannot
        // return its value (real-time precedence survives the relaxation).
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Dequeue);
        ret(&mut h, 0, Ret::DeqVal(5));
        inv(&mut h, 1, 1, Op::Enqueue(5));
        ret(&mut h, 1, Ret::EnqOk);
        assert_eq!(check_history_pool(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn pool_spec_enforces_capacity_on_success() {
        // Two successful enqueues into capacity 1 with no dequeue between.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqOk);
        assert_eq!(check_history_pool(&h, 1), LinResult::NotLinearizable);
    }

    #[test]
    fn pool_spec_admits_spurious_refusals() {
        // Sharded scans make full/empty best-effort: both refusals are
        // admissible even when the pool is neither full nor empty.
        let mut h = History::new();
        inv(&mut h, 0, 0, Op::Enqueue(1));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(2));
        ret(&mut h, 1, Ret::EnqFull); // size 1 of 4 — spurious, allowed
        inv(&mut h, 2, 0, Op::Dequeue);
        ret(&mut h, 2, Ret::DeqEmpty); // pool non-empty — spurious, allowed
        inv(&mut h, 3, 0, Op::Dequeue);
        ret(&mut h, 3, Ret::DeqVal(1));
        assert!(check_history_pool(&h, 4).is_linearizable());
        // The strict queue spec rejects the same history.
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }

    #[test]
    fn pool_spec_pending_ops_complete_or_drop() {
        // A pending enqueue may justify a dequeue...
        let mut h = History::new();
        inv(&mut h, 0, 1, Op::Enqueue(5)); // never returns
        inv(&mut h, 1, 0, Op::Dequeue);
        ret(&mut h, 1, Ret::DeqVal(5));
        assert!(check_history_pool(&h, 4).is_linearizable());
        // ...and a pending dequeue may absorb an element so a later exact
        // count still works out.
        let mut h2 = History::new();
        inv(&mut h2, 0, 0, Op::Enqueue(1));
        ret(&mut h2, 0, Ret::EnqOk);
        inv(&mut h2, 1, 1, Op::Dequeue); // never returns
        inv(&mut h2, 2, 0, Op::Enqueue(2));
        ret(&mut h2, 2, Ret::EnqOk);
        inv(&mut h2, 3, 0, Op::Dequeue);
        ret(&mut h2, 3, Ret::DeqVal(2));
        inv(&mut h2, 4, 0, Op::Dequeue);
        ret(&mut h2, 4, Ret::DeqEmpty);
        assert!(check_history_pool(&h2, 4).is_linearizable());
    }

    #[test]
    fn the_papers_figure3_history_is_not_linearizable() {
        // The shape of the paper's Figure 3 violation, abstracted:
        // enqueue x_i mid-queue is replaced by y; dequeues observe
        // v1, y, v3 while enq(y) completed... modelled as the middle-steal
        // history from experiment E8 (capacity 4).
        let mut h = History::new();
        // main fills with 11,12,13,7; a poised dequeue steals the 7 from
        // the middle and returns before the drain starts.
        inv(&mut h, 0, 0, Op::Enqueue(11));
        ret(&mut h, 0, Ret::EnqOk);
        inv(&mut h, 1, 0, Op::Enqueue(12));
        ret(&mut h, 1, Ret::EnqOk);
        inv(&mut h, 2, 0, Op::Enqueue(13));
        ret(&mut h, 2, Ret::EnqOk);
        inv(&mut h, 3, 0, Op::Enqueue(7));
        ret(&mut h, 3, Ret::EnqOk);
        inv(&mut h, 4, 1, Op::Dequeue);
        ret(&mut h, 4, Ret::DeqVal(7)); // steals from the middle
        inv(&mut h, 5, 0, Op::Dequeue);
        ret(&mut h, 5, Ret::DeqVal(11));
        assert_eq!(check_history(&h, 4), LinResult::NotLinearizable);
    }
}
