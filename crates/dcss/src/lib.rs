//! # bq-dcss — Double-Compare-Single-Set with recyclable descriptors
//!
//! Section 2.4 of *Memory Bounds for Concurrent Bounded Queues* builds a
//! bounded queue from the DCSS primitive:
//!
//! > `DCSS(&A, expectedA, updateA, &B, expectedB)` checks that the values
//! > located at addresses `A` and `B` equal `expectedA` and `expectedB`,
//! > respectively, updating `A` to `updateA` and returning `true` if the
//! > check succeeds, and returning `false` otherwise.
//!
//! DCSS is not a hardware instruction; following the paper (and Harris,
//! Fraser & Pratt's RDCSS construction), each call installs a **descriptor**
//! into location `A`, preventing updates while the second location is read
//! and letting other threads *help* complete the operation.
//!
//! A naive implementation allocates a fresh descriptor per call (Θ(#ops)
//! memory). The paper cites Arbel-Raviv & Brown's *"Reuse, don't recycle"*
//! (DISC 2017) to bound this: descriptors are **reused**, so only `2·T`
//! descriptors ever exist, giving the Θ(T) overhead of Listing 4. This crate
//! implements that scheme with *weak descriptors*:
//!
//! * Each thread owns two descriptors in a pre-allocated [`DcssArena`] and
//!   alternates between them (hence `2T`).
//! * Every reuse bumps a per-descriptor **sequence number**. References
//!   installed into memory pack `(descriptor index, sequence)` into a single
//!   marked word, so helpers can detect that a descriptor was reused and
//!   abandon stale help — their final CAS carries the exact packed word and
//!   therefore fails harmlessly.
//! * The success/failure verdict is agreed through a per-incarnation status
//!   CAS before anyone removes the descriptor from `A`, so the owner and all
//!   helpers observe one outcome.
//!
//! Values stored through DCSS-managed locations must leave the top bit clear
//! (bit 63 marks descriptor references). This is precisely the
//! "values vs. metadata" bit-stealing trade-off the paper discusses in §2.5.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Marker bit distinguishing packed descriptor references from plain values.
const MARK_BIT: u64 = 1 << 63;
/// Bits reserved for the descriptor index within the packed word.
const INDEX_BITS: u32 = 15;
const INDEX_SHIFT: u32 = 63 - INDEX_BITS; // 48
const INDEX_MASK: u64 = ((1 << INDEX_BITS) - 1) << INDEX_SHIFT;
/// Low bits carry the (truncated) incarnation sequence number.
const SEQ_MASK: u64 = (1 << INDEX_SHIFT) - 1;

/// Maximum number of threads an arena can serve (limited by `INDEX_BITS`;
/// two descriptors per thread).
pub const MAX_THREADS: usize = (1 << INDEX_BITS) / 2;

/// Largest plain value storable in a DCSS-managed location.
pub const MAX_VALUE: u64 = MARK_BIT - 1;

/// Status-word states (packed as `(seq << 2) | state`).
const ST_UNDECIDED: u64 = 0;
const ST_SUCCESS: u64 = 1;
const ST_FAILURE: u64 = 2;

#[inline]
fn pack_ref(index: usize, seq: u64) -> u64 {
    MARK_BIT | ((index as u64) << INDEX_SHIFT) | (seq & SEQ_MASK)
}

#[inline]
fn is_marked(word: u64) -> bool {
    word & MARK_BIT != 0
}

#[inline]
fn unpack_index(word: u64) -> usize {
    ((word & INDEX_MASK) >> INDEX_SHIFT) as usize
}

#[inline]
fn unpack_seq(word: u64) -> u64 {
    word & SEQ_MASK
}

/// One reusable DCSS descriptor.
///
/// `seq` is even while the descriptor is quiescent or being (re)written by
/// its owner, and the packed references embed the even "published" value.
/// Helpers read the fields and then re-validate `seq`; any mismatch means
/// the descriptor was reused and the help attempt must be abandoned.
#[repr(align(128))]
struct Descriptor {
    /// Incarnation number. Publication protocol (owner only):
    /// `seq += 1` (odd: fields unstable) → write fields → `seq += 1`
    /// (even: published).
    seq: AtomicU64,
    /// Verdict for the current incarnation: `(seq << 2) | state`.
    status: AtomicU64,
    addr1: AtomicUsize,
    exp1: AtomicU64,
    new1: AtomicU64,
    addr2: AtomicUsize,
    exp2: AtomicU64,
}

impl Descriptor {
    fn new() -> Self {
        Descriptor {
            seq: AtomicU64::new(0),
            status: AtomicU64::new(0),
            addr1: AtomicUsize::new(0),
            exp1: AtomicU64::new(0),
            new1: AtomicU64::new(0),
            addr2: AtomicUsize::new(0),
            exp2: AtomicU64::new(0),
        }
    }
}

/// Fields of a descriptor snapshot taken by a helper, validated against the
/// incarnation sequence before use.
#[derive(Clone, Copy)]
struct Snapshot {
    addr1: *const AtomicU64,
    exp1: u64,
    new1: u64,
    addr2: *const AtomicU64,
    exp2: u64,
}

/// Outcome of a [`DcssArena::dcss`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcssResult {
    /// Both comparisons matched; `A` now holds the update.
    Success,
    /// `A` matched but `B` did not; `A` was restored to its expected value.
    SecondMismatch,
    /// `A` did not match; carries the value observed at `A`.
    FirstMismatch(u64),
}

impl DcssResult {
    /// `true` iff the DCSS took effect.
    pub fn succeeded(&self) -> bool {
        matches!(self, DcssResult::Success)
    }
}

/// A pre-allocated pool of `2·T` reusable DCSS descriptors.
///
/// All DCSS operations on a set of locations must go through the same arena
/// (helping requires access to the descriptors). The addresses passed to
/// [`dcss`](DcssArena::dcss) / [`read`](DcssArena::read) must remain valid
/// for the arena's lifetime — in this workspace the arena is owned by the
/// queue that owns the locations, which guarantees it.
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// use bq_dcss::DcssArena;
///
/// let arena = DcssArena::new(2);           // serves 2 threads
/// let slot = AtomicU64::new(0);
/// let counter = AtomicU64::new(10);
/// // Store 42 into `slot` only if `counter` is still 10:
/// assert!(arena.dcss(0, &slot, 0, 42, &counter, 10).succeeded());
/// assert_eq!(arena.read(&slot), 42);
/// // Guard moved → the update is refused and `slot` restored:
/// counter.store(11, std::sync::atomic::Ordering::SeqCst);
/// assert!(!arena.dcss(1, &slot, 42, 7, &counter, 10).succeeded());
/// assert_eq!(arena.read(&slot), 42);
/// ```
pub struct DcssArena {
    descriptors: Box<[Descriptor]>,
    /// Per-thread alternation bit selecting which of the thread's two
    /// descriptors the next operation uses. Only the owner thread touches
    /// its entry.
    toggles: Box<[AtomicUsize]>,
    /// Thread-id allocator. Ids are arena-global so that an arena shared
    /// by several queues (the paper's §3.5 system-wide overhead) never
    /// hands the same descriptor pair to two threads.
    next_tid: AtomicUsize,
}

impl DcssArena {
    /// Create an arena serving up to `max_threads` threads
    /// (`2 · max_threads` descriptors, as in the paper).
    ///
    /// # Panics
    /// If `max_threads` is 0 or exceeds [`MAX_THREADS`].
    pub fn new(max_threads: usize) -> Self {
        assert!(
            max_threads > 0 && max_threads <= MAX_THREADS,
            "max_threads must be in 1..={MAX_THREADS}"
        );
        DcssArena {
            descriptors: (0..2 * max_threads).map(|_| Descriptor::new()).collect(),
            toggles: (0..max_threads).map(|_| AtomicUsize::new(0)).collect(),
            next_tid: AtomicUsize::new(0),
        }
    }

    /// Allocate a fresh arena-global thread id.
    ///
    /// # Panics
    /// When more than `max_threads` ids have been handed out.
    pub fn register_tid(&self) -> usize {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        assert!(
            tid < self.toggles.len(),
            "more threads registered than the arena was sized for (T = {})",
            self.toggles.len()
        );
        tid
    }

    /// Number of threads this arena serves.
    pub fn max_threads(&self) -> usize {
        self.toggles.len()
    }

    /// Bytes occupied by the descriptor pool and toggles — the Θ(T)
    /// overhead term of Listing 4.
    pub fn footprint_bytes(&self) -> usize {
        self.descriptors.len() * std::mem::size_of::<Descriptor>()
            + self.toggles.len() * std::mem::size_of::<AtomicUsize>()
    }

    /// Perform `DCSS(addr1, exp1, new1, addr2, exp2)` on behalf of thread
    /// `tid`.
    ///
    /// Following Harris, Fraser & Pratt's RDCSS, the two addresses must lie
    /// in disjoint roles: `addr1` is the *data* location that may
    /// transiently hold descriptors; `addr2` is a *control* location (a
    /// positioning counter in the queues) that is only ever compared and
    /// must never be the target of a DCSS update. In particular
    /// `addr1 ≠ addr2`.
    ///
    /// # Panics
    /// If `tid` is out of range, `addr1` and `addr2` alias, or any of
    /// `exp1`/`new1` uses the descriptor mark bit (values must be
    /// ≤ [`MAX_VALUE`]).
    pub fn dcss(
        &self,
        tid: usize,
        addr1: &AtomicU64,
        exp1: u64,
        new1: u64,
        addr2: &AtomicU64,
        exp2: u64,
    ) -> DcssResult {
        assert!(tid < self.toggles.len(), "tid {tid} out of range");
        assert!(
            !std::ptr::eq(addr1, addr2),
            "RDCSS requires the data and control addresses to be distinct"
        );
        assert!(
            !is_marked(exp1) && !is_marked(new1),
            "values must not use the descriptor mark bit"
        );

        // Select and re-incarnate one of the thread's two descriptors.
        let toggle = self.toggles[tid].fetch_xor(1, Ordering::Relaxed);
        let index = 2 * tid + toggle;
        let d = &self.descriptors[index];

        let s0 = d.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s0 % 2, 0, "descriptor reused while unstable");
        d.seq.store(s0 + 1, Ordering::SeqCst); // fields now unstable
        d.addr1
            .store(addr1 as *const AtomicU64 as usize, Ordering::SeqCst);
        d.exp1.store(exp1, Ordering::SeqCst);
        d.new1.store(new1, Ordering::SeqCst);
        d.addr2
            .store(addr2 as *const AtomicU64 as usize, Ordering::SeqCst);
        d.exp2.store(exp2, Ordering::SeqCst);
        let seq = s0 + 2;
        d.status.store((seq << 2) | ST_UNDECIDED, Ordering::SeqCst);
        d.seq.store(seq, Ordering::SeqCst); // published

        let packed = pack_ref(index, seq);

        // Install the descriptor into addr1.
        loop {
            match addr1.compare_exchange(exp1, packed, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(cur) if is_marked(cur) => {
                    // Another operation is in flight on this location: help
                    // it finish, then retry our install.
                    self.help(cur);
                }
                Err(cur) => {
                    // Plain value mismatch: the DCSS fails on the first
                    // comparison. Retire the incarnation so the descriptor
                    // can be reused immediately.
                    return DcssResult::FirstMismatch(cur);
                }
            }
        }

        // Resolve and remove the descriptor; the verdict is agreed through
        // the status word so every participant sees the same outcome.
        self.complete(packed);
        let st = d.status.load(Ordering::SeqCst);
        debug_assert_eq!(st >> 2, seq, "status overwritten before retirement");
        if st & 0b11 == ST_SUCCESS {
            DcssResult::Success
        } else {
            DcssResult::SecondMismatch
        }
    }

    /// Read a DCSS-managed location, helping (and thereby removing) any
    /// in-flight descriptor first. Always returns a plain value.
    pub fn read(&self, addr: &AtomicU64) -> u64 {
        loop {
            let v = addr.load(Ordering::SeqCst);
            if !is_marked(v) {
                return v;
            }
            self.help(v);
        }
    }

    /// Help the operation behind `packed` finish (public entry point for
    /// code that encounters a marked word through other means).
    fn help(&self, packed: u64) {
        self.complete(packed);
    }

    /// Try to take a validated snapshot of the descriptor behind `packed`.
    /// Returns `None` if the descriptor has been reused (in which case the
    /// packed word has already been removed from its location).
    fn snapshot(&self, packed: u64) -> Option<(&Descriptor, Snapshot)> {
        let index = unpack_index(packed);
        let seq = unpack_seq(packed);
        let d = self.descriptors.get(index)?;
        let snap = Snapshot {
            addr1: d.addr1.load(Ordering::SeqCst) as *const AtomicU64,
            exp1: d.exp1.load(Ordering::SeqCst),
            new1: d.new1.load(Ordering::SeqCst),
            addr2: d.addr2.load(Ordering::SeqCst) as *const AtomicU64,
            exp2: d.exp2.load(Ordering::SeqCst),
        };
        // Validate the incarnation *after* reading the fields: if it still
        // matches, the fields belong to this incarnation.
        if d.seq.load(Ordering::SeqCst) & SEQ_MASK != seq {
            return None;
        }
        Some((d, snap))
    }

    /// Complete the DCSS behind `packed`: agree on a verdict via the status
    /// word, then replace the descriptor reference in `addr1` with the
    /// result. Safe to call concurrently from any number of threads.
    fn complete(&self, packed: u64) {
        let seq = unpack_seq(packed);
        let Some((d, snap)) = self.snapshot(packed) else {
            // Descriptor reused ⇒ this incarnation was fully resolved and
            // removed from memory before retirement; nothing to do.
            return;
        };
        // SAFETY: `snap` was validated against the incarnation, and the
        // arena contract guarantees addresses outlive the arena.
        let addr1 = unsafe { &*snap.addr1 };
        let addr2 = unsafe { &*snap.addr2 };

        let undecided = (seq << 2) | ST_UNDECIDED;
        if d.status.load(Ordering::SeqCst) == undecided {
            let v2 = addr2.load(Ordering::SeqCst);
            let verdict = if v2 == snap.exp2 {
                ST_SUCCESS
            } else {
                ST_FAILURE
            };
            // First CAS wins; all later helpers adopt the agreed verdict.
            let _ = d.status.compare_exchange(
                undecided,
                (seq << 2) | verdict,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        let st = d.status.load(Ordering::SeqCst);
        if st >> 2 != seq {
            // Reused since we validated: already resolved and removed.
            return;
        }
        let result = if st & 0b11 == ST_SUCCESS {
            snap.new1
        } else {
            snap.exp1
        };
        // Unique packed word ⇒ this CAS can only remove *our* incarnation.
        let _ = addr1.compare_exchange(packed, result, Ordering::SeqCst, Ordering::SeqCst);
    }
}

// SAFETY: all shared state is atomic; raw pointers stored in descriptors are
// only dereferenced under the arena's address-validity contract.
unsafe impl Send for DcssArena {}
unsafe impl Sync for DcssArena {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn dcss_success_updates_first_location() {
        let arena = DcssArena::new(2);
        let a = AtomicU64::new(5);
        let b = AtomicU64::new(10);
        let r = arena.dcss(0, &a, 5, 7, &b, 10);
        assert_eq!(r, DcssResult::Success);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        assert_eq!(b.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn dcss_first_mismatch_reports_current() {
        let arena = DcssArena::new(1);
        let a = AtomicU64::new(1);
        let b = AtomicU64::new(2);
        let r = arena.dcss(0, &a, 99, 7, &b, 2);
        assert_eq!(r, DcssResult::FirstMismatch(1));
        assert_eq!(a.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dcss_second_mismatch_restores_first() {
        let arena = DcssArena::new(1);
        let a = AtomicU64::new(5);
        let b = AtomicU64::new(10);
        let r = arena.dcss(0, &a, 5, 7, &b, 11);
        assert_eq!(r, DcssResult::SecondMismatch);
        assert_eq!(a.load(Ordering::SeqCst), 5, "A must be restored");
    }

    #[test]
    fn read_returns_plain_value() {
        let arena = DcssArena::new(1);
        let a = AtomicU64::new(42);
        assert_eq!(arena.read(&a), 42);
    }

    #[test]
    fn descriptors_are_reused_not_allocated() {
        let arena = DcssArena::new(1);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let before = arena.footprint_bytes();
        for i in 0..10_000u64 {
            assert!(arena.dcss(0, &a, i, i + 1, &b, 0).succeeded());
        }
        assert_eq!(a.load(Ordering::SeqCst), 10_000);
        assert_eq!(
            arena.footprint_bytes(),
            before,
            "descriptor pool size is fixed at 2T"
        );
    }

    #[test]
    fn footprint_is_linear_in_threads() {
        let f1 = DcssArena::new(1).footprint_bytes();
        let f8 = DcssArena::new(8).footprint_bytes();
        let f64 = DcssArena::new(64).footprint_bytes();
        assert!(f8 > f1 && f64 > f8);
        // Linearity: bytes per thread identical across sizes.
        assert_eq!((f8 - f1) / 7, (f64 - f8) / 56);
    }

    #[test]
    #[should_panic(expected = "mark bit")]
    fn rejects_marked_values() {
        let arena = DcssArena::new(1);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let _ = arena.dcss(0, &a, 0, MARK_BIT | 1, &b, 0);
    }

    #[test]
    fn packing_roundtrip() {
        for &(idx, seq) in &[(0usize, 0u64), (5, 12), (1234, SEQ_MASK), (0x7FFF, 7)] {
            let p = pack_ref(idx, seq);
            assert!(is_marked(p));
            assert_eq!(unpack_index(p), idx);
            assert_eq!(unpack_seq(p), seq & SEQ_MASK);
        }
    }

    /// The DCSS semantics under contention: many threads increment `a` but
    /// only while the guard `b` holds its expected value. Exactly the
    /// successful DCSS count must be reflected in `a`.
    #[test]
    fn concurrent_guarded_increments() {
        let arena = Arc::new(DcssArena::new(8));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let iters = 500;
        let mut handles = Vec::new();
        for tid in 0..8 {
            let (arena, a, b) = (Arc::clone(&arena), Arc::clone(&a), Arc::clone(&b));
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u64;
                for _ in 0..iters {
                    let cur = arena.read(&a);
                    if arena.dcss(tid, &a, cur, cur + 1, &b, 0).succeeded() {
                        wins += 1;
                    }
                    std::thread::yield_now();
                }
                wins
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(
            arena.read(&a),
            total,
            "each success increments exactly once"
        );
        assert!(total > 0);
    }

    /// Guard invalidation mid-flight: once `b` changes, no further DCSS with
    /// the old expected guard may succeed.
    #[test]
    fn guard_change_blocks_success() {
        let arena = Arc::new(DcssArena::new(4));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));

        // Phase 1: guard matches.
        assert!(arena.dcss(0, &a, 0, 1, &b, 0).succeeded());
        // Guard moves.
        b.store(1, Ordering::SeqCst);
        // Phase 2: old-guard DCSS must fail and restore.
        let r = arena.dcss(1, &a, 1, 2, &b, 0);
        assert_eq!(r, DcssResult::SecondMismatch);
        assert_eq!(arena.read(&a), 1);
    }

    /// Readers concurrently help in-flight operations: `read` must never
    /// observe a marked word.
    #[test]
    fn readers_never_see_descriptors() {
        let arena = Arc::new(DcssArena::new(4));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for tid in 0..2 {
            let (arena, a, b, stop) = (
                Arc::clone(&arena),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let cur = arena.read(&a);
                    let _ = arena.dcss(tid, &a, cur, (cur + 1) & MAX_VALUE, &b, 0);
                    i += 1;
                    if i > 20_000 {
                        break;
                    }
                }
            }));
        }
        for _ in 0..50_000 {
            let v = a.load(Ordering::SeqCst);
            if is_marked(v) {
                // A raw load may see a descriptor; `read` must resolve it.
                let r = arena.read(&a);
                assert!(!is_marked(r));
            }
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(!is_marked(a.load(Ordering::SeqCst)) || !is_marked(arena.read(&a)));
    }
}
