//! # bq-core — concurrent bounded queues with provable memory bounds
//!
//! This crate is the primary contribution of the reproduction of
//! *Memory Bounds for Concurrent Bounded Queues* (Aksenov, Koval, Kuznetsov,
//! Paramonov — PPoPP 2024, arXiv:2104.15003). It implements every bounded
//! queue algorithm the paper presents, over a common token interface:
//!
//! | Type | Paper | Overhead | Assumptions |
//! |------|-------|----------|-------------|
//! | [`SeqRingQueue`] | Figure 1 | Θ(1) | single-threaded |
//! | [`NaiveQueue`] | §3 strawman | Θ(1) | **unsound** (ABA) — lower-bound target |
//! | [`SegmentQueue`] | Listing 1 / Figure 2 | Θ(C/K + T·K) | none |
//! | [`DistinctQueue`] | Listing 2 | Θ(1) | all elements distinct |
//! | [`LlScQueue`] | Listing 3 | Θ(1)† | LL/SC primitive |
//! | [`DcssQueue`] | Listing 4 | Θ(T) | slots may hold descriptors |
//! | [`OptimalQueue`] | Listing 5 / Appendix A | Θ(T) | none — matches the lower bound |
//! | [`ShardedQueue<Q>`](ShardedQueue) | scale layer (DESIGN.md §8) | Θ(S · ovh(Q)) | relaxes global FIFO to per-shard FIFO |
//!
//! † conceptually; our software LL/SC emulation spends 4 tag bytes per slot,
//! reported honestly in the footprint (see `bq-llsc`).
//!
//! Beyond the paper's listings, the crate grows a **scale layer**: a batch
//! extension on [`ConcurrentQueue`] (`enqueue_many`/`dequeue_many`, with
//! native run-based fast paths where the algorithm permits) and
//! [`ShardedQueue`], which composes `S` sub-queues behind per-thread shard
//! affinity — `ShardedQueue<OptimalQueue>` keeps the overhead story honest
//! at **Θ(S·T)**. See DESIGN.md §8 for the exact relaxation contract.
//!
//! On top of both sits the **waiting stack** (DESIGN.md §9): a reusable
//! [`EventCount`] waiter subsystem (wake generations parking OS threads
//! *and* `core::task::Waker`s) with two thin façades over it —
//! [`BlockingQueue`] for threads and [`AsyncQueue`] for async tasks —
//! sharing one eventcount pair per queue, plus `close()` shutdown with
//! drain semantics on both.
//!
//! The paper's main theorem (Theorem 3.12) shows that Θ(1) overhead is
//! **impossible** for an obstruction-free, linearizable, value-independent
//! queue built from read/write/CAS — which is why [`NaiveQueue`] is labelled
//! unsound and [`OptimalQueue`]'s Θ(T) is optimal. The executable version of
//! that impossibility argument lives in the `bq-sim` crate.
//!
//! ## Quick start
//!
//! ```
//! use bq_core::{ConcurrentQueue, OptimalQueue};
//!
//! let q = OptimalQueue::with_capacity_and_threads(1024, 4);
//! let mut h = q.register();
//! q.enqueue(&mut h, 42).unwrap();
//! assert_eq!(q.dequeue(&mut h), Some(42));
//! ```
//!
//! For arbitrary element types, wrap a pointer-capable queue in
//! [`BoxedQueue`].

#![deny(missing_docs)]

pub mod async_queue;
pub mod blocking;
pub mod boxed;
pub mod bytering;
pub mod dcss_queue;
pub mod distinct;
pub mod event;
pub mod llsc_queue;
pub mod naive;
pub mod obs;
pub mod optimal;
pub mod queue;
pub mod relocatable;
pub mod retry;
pub mod segment;
pub mod sharded;
pub mod simx;
pub mod spsc;
pub mod token;

pub use async_queue::{
    AsyncQueue, RecvDeadlineFuture, RecvFuture, RecvManyFuture, SendAllFuture, SendDeadlineFuture,
    SendFuture,
};
pub use blocking::{
    BlockingQueue, RecvTimeoutError, SendError, SendTimeoutError, TryRecvError, TrySendError,
};
pub use boxed::{BoxedHandle, BoxedQueue, PointerCapable};
pub use bytering::{byte_ring, ByteConsumer, ByteProducer};
pub use dcss_queue::{DcssHandle, DcssQueue};
pub use distinct::{DistinctHandle, DistinctQueue};
pub use event::{EventCount, WaiterId};
pub use llsc_queue::{LlScHandle, LlScQueue};
pub use naive::{NaiveHandle, NaiveQueue};
pub use obs::{MetricsSnapshot, TraceEvent, TraceRing};
pub use optimal::{OptimalHandle, OptimalQueue};
pub use queue::{ConcurrentQueue, EnqueueError, Full, SeqRingQueue};
pub use relocatable::{
    byte_record_size, AnnounceBoard, ByteReadGrant, ByteRingHdr, ByteWriteGrant, PadAtomicU64,
    PadSimAtomicU64, Pod, RelocBuf, RelocByteRing, RelocEnqOp, RelocRing, RelocSeqRing,
    RingReadGrant, RingWriteGrant, SeqReadGrant, SeqWriteGrant,
};
pub use segment::{SegmentHandle, SegmentQueue};
pub use sharded::{ShardedHandle, ShardedQueue};
pub use simx::{SimAtomicBool, SimAtomicU64, SimAtomicUsize, SimCondvar, SimMutex, SimMutexGuard};
pub use spsc::{spsc_ring, SpscConsumer, SpscProducer};
pub use token::{InvalidToken, TokenGen, MAX_TOKEN, NULL};
