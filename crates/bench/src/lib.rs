//! # bq-bench — the experiment harness
//!
//! Shared machinery for the reproduction's experiments (DESIGN.md §4):
//! a dynamic queue registry so every experiment can iterate over all queue
//! implementations uniformly, and workload drivers for the throughput
//! experiments.
//!
//! The runnable entry points are:
//!
//! * `cargo run --release -p bq-bench --bin overhead_table` — E1/E3/E5/E6/E7/E9
//! * `cargo run --release -p bq-bench --bin k_sweep` — E2
//! * `cargo run --release -p bq-bench --bin adversary` — E4/E8
//! * `cargo run --release -p bq-bench --bin throughput_table` — E10/E12/E13/E15
//! * `cargo run --release -p bq-bench --bin shard_sweep` — E11 (shard × batch)
//! * `cargo run --release -p bq-bench --bin soak [rounds]` — liveness soak
//! * `cargo bench -p bq-bench` — criterion microbenchmarks (E2/E7/E10)

pub mod facade;
pub mod meta;
pub mod payload;
pub mod registry;
pub mod shm_procs;
pub mod workload;

pub use facade::{async_pairs_throughput, blocking_pairs_throughput, FacadeKind, ALL_FACADES};
pub use meta::{append_trajectory, run_meta, smoke_mode, write_bench_json, BenchDoc, RunMeta};
pub use payload::{
    payload_pairs_bytering, payload_pairs_grant, payload_pairs_move, PayloadResult, PAYLOAD_BYTES,
};
pub use registry::{
    all_queues, queue_by_name, sharded_optimal, DynQueue, QueueKind, ALL_KINDS, DEFAULT_SHARDS,
};
pub use shm_procs::{shm_crash_round, shm_fork_pairs_throughput};
pub use workload::{
    batched_pairs_throughput, pairs_throughput, producer_consumer_throughput, WorkloadResult,
};
