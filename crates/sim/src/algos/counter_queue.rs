//! The shared step-machine skeleton for the counter-based queues
//! (naive / Listing 2 / Listing 4). See the module docs in [`super`].

use crate::machine::{Access, Op, OpMachine, Ret, SimQueue, Status};
use crate::mem::{Loc, LocKind, SimMemory};

/// Top bit marks versioned nulls (Listing 2), mirroring `bq_core::token`.
pub const TAG_BIT: u64 = 1 << 63;

/// `⊥_round` for Listing 2.
pub const fn versioned_null(round: u64) -> u64 {
    TAG_BIT | round
}

/// Slot-update protection flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Plain CAS, single `⊥ = 0` — the unsound constant-overhead strawman.
    Naive,
    /// Versioned nulls (Listing 2): slot cycles `⊥_r → v → ⊥_{r+1}`.
    Distinct,
    /// Two alternating nulls `⊥_{r mod 2}` — the Tsigas–Zhang scheme the
    /// paper's §4 critiques (ABA window reopens after two rounds).
    TwoNull,
    /// DCSS guarded by the positioning counter (Listing 4).
    Dcss,
}

/// A simulated counter-based bounded queue instance.
pub struct CounterQueue {
    flavor: Flavor,
    name: &'static str,
    c: usize,
    head: Loc,
    tail: Loc,
    slots: Loc,
}

impl CounterQueue {
    /// Lay out the queue in `mem`: `C` value-locations plus two metadata
    /// counters.
    pub fn new(flavor: Flavor, name: &'static str, c: usize, mem: &mut SimMemory) -> Self {
        assert!(c > 0);
        let init = match flavor {
            Flavor::Distinct | Flavor::TwoNull => versioned_null(0),
            _ => 0,
        };
        let slots = mem.alloc_array(LocKind::Value, c, init);
        let tail = mem.alloc(LocKind::Metadata, 0);
        let head = mem.alloc(LocKind::Metadata, 0);
        CounterQueue {
            flavor,
            name,
            c,
            head,
            tail,
            slots,
        }
    }
}

impl SimQueue for CounterQueue {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capacity(&self) -> usize {
        self.c
    }

    fn make(&self, op: Op) -> Box<dyn OpMachine> {
        Box::new(Machine {
            flavor: self.flavor,
            c: self.c as u64,
            head: self.head,
            tail: self.tail,
            slots: self.slots,
            op,
            state: State::ReadTail,
        })
    }

    fn value_locations(&self) -> Vec<Loc> {
        (0..self.c).map(|i| Loc(self.slots.0 + i)).collect()
    }
}

/// The unsound constant-overhead strawman.
pub fn naive(c: usize, mem: &mut SimMemory) -> CounterQueue {
    CounterQueue::new(Flavor::Naive, "naive-O(1)", c, mem)
}

/// Listing 2 (distinct elements + versioned nulls).
pub fn distinct(c: usize, mem: &mut SimMemory) -> CounterQueue {
    CounterQueue::new(Flavor::Distinct, "listing2-distinct", c, mem)
}

/// Listing 4 (DCSS primitive).
pub fn dcss(c: usize, mem: &mut SimMemory) -> CounterQueue {
    CounterQueue::new(Flavor::Dcss, "listing4-dcss", c, mem)
}

/// Tsigas–Zhang two-null model (paper §4).
pub fn two_null(c: usize, mem: &mut SimMemory) -> CounterQueue {
    CounterQueue::new(Flavor::TwoNull, "tsigas-zhang-2null", c, mem)
}

/// Convenience: `SimNaive` alias used in controller tests.
pub type SimNaive = CounterQueue;

impl CounterQueue {
    /// Shorthand used by tests: a naive-flavor queue.
    pub fn new_naive(c: usize, mem: &mut SimMemory) -> Self {
        naive(c, mem)
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Read `tail` (both operations start here).
    ReadTail,
    /// Read `head`.
    ReadHead { t: u64 },
    /// Dequeue only: read the slot at `head % C`.
    ReadSlot { t: u64, h: u64 },
    /// Re-read `tail` for snapshot validation.
    Validate { t: u64, h: u64, e: u64 },
    /// Attempt the slot update.
    UpdateSlot { t: u64, h: u64, e: u64 },
    /// Help the operation counter forward.
    BumpCounter { t: u64, h: u64, e: u64, done: bool },
}

struct Machine {
    flavor: Flavor,
    c: u64,
    head: Loc,
    tail: Loc,
    slots: Loc,
    op: Op,
    state: State,
}

impl Machine {
    fn slot(&self, index: u64) -> Loc {
        Loc(self.slots.0 + (index % self.c) as usize)
    }

    /// The slot-update access for this flavor/op.
    fn update_access(&self, t: u64, h: u64, e: u64) -> Access {
        match (self.op, self.flavor) {
            (Op::Enqueue(v), Flavor::Naive) => Access::Cas {
                loc: self.slot(t),
                exp: 0,
                new: v,
            },
            (Op::Enqueue(v), Flavor::Distinct) => Access::Cas {
                loc: self.slot(t),
                exp: versioned_null(t / self.c),
                new: v,
            },
            (Op::Enqueue(v), Flavor::TwoNull) => Access::Cas {
                loc: self.slot(t),
                exp: versioned_null((t / self.c) & 1),
                new: v,
            },
            (Op::Enqueue(v), Flavor::Dcss) => Access::Dcss {
                loc1: self.slot(t),
                exp1: 0,
                new1: v,
                loc2: self.tail,
                exp2: t,
            },
            (Op::Dequeue, Flavor::Naive) => Access::Cas {
                loc: self.slot(h),
                exp: e,
                new: 0,
            },
            (Op::Dequeue, Flavor::Distinct) => Access::Cas {
                loc: self.slot(h),
                exp: e,
                new: versioned_null(h / self.c + 1),
            },
            (Op::Dequeue, Flavor::TwoNull) => Access::Cas {
                loc: self.slot(h),
                exp: e,
                new: versioned_null((h / self.c + 1) & 1),
            },
            (Op::Dequeue, Flavor::Dcss) => Access::Dcss {
                loc1: self.slot(h),
                exp1: e,
                new1: 0,
                loc2: self.head,
                exp2: h,
            },
        }
    }

    /// Does the dequeue skip its slot CAS for this observed element?
    /// (The paper's `done := e != ⊥… && CAS` short-circuit; like the real
    /// `DistinctQueue` we treat *any* versioned null as "no element", so a
    /// stale null can never be returned as a value.)
    fn deq_skips_update(&self, _h: u64, e: u64) -> bool {
        match self.flavor {
            Flavor::Naive | Flavor::Dcss => e == 0,
            Flavor::Distinct | Flavor::TwoNull => e & TAG_BIT != 0,
        }
    }

    /// Was the slot update successful, given the primitive's observation?
    fn update_succeeded(&self, observed: u64, t: u64, h: u64, e: u64) -> bool {
        match (self.op, self.flavor) {
            // CAS observation is the old value: success iff it matched.
            (Op::Enqueue(_), Flavor::Naive) => observed == 0,
            (Op::Enqueue(_), Flavor::Distinct) => observed == versioned_null(t / self.c),
            (Op::Enqueue(_), Flavor::TwoNull) => observed == versioned_null((t / self.c) & 1),
            (Op::Dequeue, Flavor::Naive | Flavor::Distinct | Flavor::TwoNull) => {
                let _ = h;
                observed == e
            }
            // DCSS observation is a success flag.
            (_, Flavor::Dcss) => observed == 1,
        }
    }
}

impl OpMachine for Machine {
    fn next_access(&self) -> Access {
        match self.state {
            State::ReadTail => Access::Read(self.tail),
            State::ReadHead { .. } => Access::Read(self.head),
            State::ReadSlot { h, .. } => Access::Read(self.slot(h)),
            State::Validate { .. } => Access::Read(self.tail),
            State::UpdateSlot { t, h, e } => self.update_access(t, h, e),
            State::BumpCounter { t, h, .. } => match self.op {
                Op::Enqueue(_) => Access::Cas {
                    loc: self.tail,
                    exp: t,
                    new: t + 1,
                },
                Op::Dequeue => Access::Cas {
                    loc: self.head,
                    exp: h,
                    new: h + 1,
                },
            },
        }
    }

    fn apply(&mut self, observed: u64) -> Status {
        match self.state {
            State::ReadTail => {
                self.state = State::ReadHead { t: observed };
                Status::Running
            }
            State::ReadHead { t } => {
                let h = observed;
                self.state = match self.op {
                    Op::Dequeue => State::ReadSlot { t, h },
                    Op::Enqueue(_) => State::Validate { t, h, e: 0 },
                };
                Status::Running
            }
            State::ReadSlot { t, h } => {
                self.state = State::Validate { t, h, e: observed };
                Status::Running
            }
            State::Validate { t, h, e } => {
                if observed != t {
                    self.state = State::ReadTail;
                    return Status::Running;
                }
                match self.op {
                    Op::Enqueue(_) => {
                        if t == h + self.c {
                            return Status::Done(Ret::EnqFull);
                        }
                        self.state = State::UpdateSlot { t, h, e };
                    }
                    Op::Dequeue => {
                        if t == h {
                            return Status::Done(Ret::DeqEmpty);
                        }
                        if self.deq_skips_update(h, e) {
                            self.state = State::BumpCounter {
                                t,
                                h,
                                e,
                                done: false,
                            };
                        } else {
                            self.state = State::UpdateSlot { t, h, e };
                        }
                    }
                }
                Status::Running
            }
            State::UpdateSlot { t, h, e } => {
                let done = self.update_succeeded(observed, t, h, e);
                self.state = State::BumpCounter { t, h, e, done };
                Status::Running
            }
            State::BumpCounter { e, done, .. } => {
                if done {
                    match self.op {
                        Op::Enqueue(_) => Status::Done(Ret::EnqOk),
                        Op::Dequeue => Status::Done(Ret::DeqVal(e)),
                    }
                } else {
                    self.state = State::ReadTail;
                    Status::Running
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Sim;
    use crate::lincheck::check_history;
    use crate::machine::Ret;

    fn sim_of(flavor: Flavor, c: usize, threads: usize) -> Sim<CounterQueue> {
        let mut mem = SimMemory::new();
        let q = match flavor {
            Flavor::Naive => naive(c, &mut mem),
            Flavor::Distinct => distinct(c, &mut mem),
            Flavor::TwoNull => two_null(c, &mut mem),
            Flavor::Dcss => dcss(c, &mut mem),
        };
        Sim::new(q, mem, threads)
    }

    #[test]
    fn all_flavors_sequential_fifo() {
        for flavor in [
            Flavor::Naive,
            Flavor::Distinct,
            Flavor::TwoNull,
            Flavor::Dcss,
        ] {
            let mut sim = sim_of(flavor, 3, 1);
            assert_eq!(sim.fill(0, &[10, 20, 30], 100), vec![Ret::EnqOk; 3]);
            assert_eq!(sim.run_op(0, Op::Enqueue(40), 100), Ret::EnqFull);
            assert_eq!(
                sim.empty(0, 4, 100),
                vec![
                    Ret::DeqVal(10),
                    Ret::DeqVal(20),
                    Ret::DeqVal(30),
                    Ret::DeqEmpty
                ],
                "flavor {flavor:?}"
            );
        }
    }

    #[test]
    fn all_flavors_wraparound() {
        for flavor in [
            Flavor::Naive,
            Flavor::Distinct,
            Flavor::TwoNull,
            Flavor::Dcss,
        ] {
            let mut sim = sim_of(flavor, 2, 1);
            for round in 0..10u64 {
                let a = 100 + round * 2;
                let b = 101 + round * 2;
                assert_eq!(sim.fill(0, &[a, b], 200), vec![Ret::EnqOk; 2]);
                assert_eq!(
                    sim.empty(0, 2, 200),
                    vec![Ret::DeqVal(a), Ret::DeqVal(b)],
                    "flavor {flavor:?} round {round}"
                );
            }
        }
    }

    #[test]
    fn interleaved_round_robin_histories_linearizable() {
        // Two threads interleaved step-by-step; the recorded history must
        // check out for the *sound* flavors under distinct values.
        for flavor in [Flavor::Distinct, Flavor::Dcss] {
            let mut sim = sim_of(flavor, 2, 2);
            for next in 1u64..=6 {
                sim.invoke(0, Op::Enqueue(next));
                sim.invoke(1, Op::Dequeue);
                // Round-robin stepping until both complete.
                let mut done0 = false;
                let mut done1 = false;
                while !done0 || !done1 {
                    if !done0 {
                        done0 = matches!(sim.step(0), crate::controller::RunOutcome::Completed(_));
                    }
                    if !done1 {
                        done1 = matches!(sim.step(1), crate::controller::RunOutcome::Completed(_));
                    }
                }
            }
            let res = check_history(sim.history(), 2);
            assert!(
                res.is_linearizable(),
                "flavor {flavor:?} produced a non-linearizable history:\n{}",
                sim.history().render()
            );
        }
    }

    #[test]
    fn value_location_census() {
        // E8's location counting: all three layouts use exactly C
        // value-locations and 2 metadata counters in the simulator (the
        // real Listing 4 additionally spends Θ(T) descriptor metadata,
        // measured in bq-dcss).
        let mut mem = SimMemory::new();
        let q = distinct(8, &mut mem);
        assert_eq!(q.value_locations().len(), 8);
        assert_eq!(mem.value_location_count(), 8);
        assert_eq!(mem.metadata_location_count(), 2);
    }

    #[test]
    fn distinct_nulls_advance_per_round() {
        let mut sim = sim_of(Flavor::Distinct, 2, 1);
        sim.fill(0, &[1, 2], 100);
        sim.empty(0, 2, 100);
        let slot0 = sim.queue.value_locations()[0];
        assert_eq!(sim.mem.peek(slot0), versioned_null(1));
    }
}
