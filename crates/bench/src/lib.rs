//! # bq-bench — the experiment harness
//!
//! Shared machinery for the reproduction's experiments (DESIGN.md §4):
//! a dynamic queue registry so every experiment can iterate over all queue
//! implementations uniformly, and workload drivers for the throughput
//! experiments.
//!
//! The runnable entry points are:
//!
//! * `cargo run --release -p bq-bench --bin overhead_table` — E1/E3/E5/E6/E7/E9
//! * `cargo run --release -p bq-bench --bin k_sweep` — E2
//! * `cargo run --release -p bq-bench --bin adversary` — E4/E8
//! * `cargo run --release -p bq-bench --bin throughput_table` — E10
//! * `cargo bench -p bq-bench` — criterion microbenchmarks (E2/E7/E10)

pub mod registry;
pub mod workload;

pub use registry::{all_queues, queue_by_name, DynQueue, QueueKind, ALL_KINDS};
pub use workload::{pairs_throughput, producer_consumer_throughput, WorkloadResult};
