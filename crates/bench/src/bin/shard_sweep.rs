//! **Experiment E11** — the scale layer's shard × batch sweep.
//!
//! Sweeps `ShardedQueue<OptimalQueue>` over shard counts `S` and batch
//! sizes `B` on the mixed-pairs workload, then isolates the batching win
//! on the fixed registry configurations (single-element path vs batched
//! path at equal element counts).
//!
//! Hardware note (ROADMAP open item): on a single-core host the shard
//! dimension cannot show parallel speedup — sharding removes counter
//! contention, which only materializes with real parallelism. The batch
//! dimension amortizes per-call costs (handle lock, shard scan, epoch
//! pin, tail CAS) and shows up even solo.
//!
//! Run: `cargo run --release -p bq-bench --bin shard_sweep`

use bq_bench::meta::{run_meta, smoke_mode, write_bench_json};
use bq_bench::registry::{sharded_optimal, QueueKind};
use bq_bench::workload::{batched_pairs_throughput, print_batch_win_table};
use serde::Serialize;

/// One machine-readable cell for `BENCH_shard_sweep.json`.
#[derive(Serialize)]
struct SweepCell {
    experiment: &'static str,
    shards: usize,
    batch: usize,
    threads: usize,
    mops: f64,
    ops: u64,
}

fn main() {
    let smoke = smoke_mode();
    let meta = run_meta();
    let c = 1024;
    let threads = 2usize;
    let total_elems_per_thread: u64 = if smoke { 4_096 } else { 65_536 };
    let shard_counts = [1usize, 2, 4, 8];
    let batches = [1usize, 8, 64];

    println!("=== E11: shard × batch sweep — ShardedQueue<OptimalQueue> ===");
    println!(
        "C = {c}, {threads} threads, {total_elems_per_thread} pairs/thread \
         (constant element count per cell)\n"
    );
    print!("{:>8}", "S \\ B");
    for b in batches {
        print!(" {:>12}", format!("B={b} Mops"));
    }
    println!();
    let mut cells: Vec<SweepCell> = Vec::new();
    for s in shard_counts {
        print!("{:>8}", s);
        for b in batches {
            let q = sharded_optimal(c, s, threads);
            let rounds = total_elems_per_thread / b as u64;
            let r = batched_pairs_throughput(&*q, threads, rounds, b);
            print!(" {:>12.3}", r.mops());
            cells.push(SweepCell {
                experiment: "E11-shard-batch",
                shards: s,
                batch: b,
                threads,
                mops: r.mops(),
                ops: r.ops,
            });
        }
        println!();
    }

    println!("\n=== E11b: batched vs single-element path (B=32 vs B=1) ===\n");
    print_batch_win_table(
        &[
            QueueKind::Optimal,
            QueueKind::ShardedOptimal,
            QueueKind::Segment,
            QueueKind::ShardedSegment,
            QueueKind::Vyukov,
        ],
        c,
        threads,
        total_elems_per_thread,
        32,
    );
    println!(
        "\nReading: batching amortizes the per-operation fixed costs (registry\n\
         handle lock, shard selection, epoch pin, find_segment walk, one tail\n\
         CAS per Vyukov slot run); the shard dimension needs multi-core\n\
         hardware to show its contention win — see the ROADMAP open item."
    );

    write_bench_json("BENCH_shard_sweep.json", &meta, &cells);
    println!(
        "\nwrote {} cells to BENCH_shard_sweep.json (git_sha {}, smoke {}, {} cores)",
        cells.len(),
        meta.git_sha,
        meta.smoke,
        meta.host_cores
    );
}
