//! **Listing 3** — constant memory overhead via LL/SC.
//!
//! LL/SC is ABA-immune: an `SC` fails if the cell was stored to at all since
//! the matching `LL`, even if the original value was restored. That lets the
//! queue reuse a *single* null per slot — no versions, no distinctness
//! assumption — while keeping the O(1) overhead of the sequential design.
//!
//! The cells and both counters are [`bq_llsc::LlScCell`]s (our software
//! emulation, see that crate's fidelity notes): values are 32-bit and each
//! cell spends a 32-bit emulation tag, which the footprint below reports
//! honestly as per-slot metadata. On genuine LL/SC hardware (ARM, POWER,
//! RISC-V) that per-slot term vanishes and the overhead is exactly two
//! counters — the paper's point that LL/SC is strictly more powerful than
//! CAS for this problem.

use bq_llsc::LlScCell;

use crate::queue::{ConcurrentQueue, Full};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Bounded queue with O(1) conceptual overhead using LL/SC (paper
/// Listing 3). Tokens are non-zero `u32` values (0 is `⊥`).
pub struct LlScQueue {
    cells: Box<[LlScCell]>,
    tail: LlScCell,
    head: LlScCell,
}

/// `LlScQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct LlScHandle;

impl LlScQueue {
    /// Create a queue of capacity `c` (`0 < c < 2³¹`; counters are 32-bit
    /// in the emulation).
    pub fn with_capacity(c: usize) -> Self {
        assert!(c > 0 && c < (1 << 31), "capacity must be in 1..2^31");
        LlScQueue {
            cells: (0..c).map(|_| LlScCell::new(0)).collect(),
            tail: LlScCell::new(0),
            head: LlScCell::new(0),
        }
    }
}

impl ConcurrentQueue for LlScQueue {
    type Handle = LlScHandle;

    fn register(&self) -> LlScHandle {
        LlScHandle
    }

    fn enqueue(&self, _h: &mut LlScHandle, v: u64) -> Result<(), Full> {
        assert!(
            v != 0 && v <= u32::MAX as u64,
            "LL/SC queue tokens are non-zero u32 values"
        );
        let e = v as u32;
        let c = self.cells.len() as u32;
        loop {
            // Read the counters snapshot; link the target cell.
            let t = self.tail.load();
            let h = self.head.load();
            let (state, link) = self.cells[(t % c) as usize].ll();
            if t != self.tail.load() {
                continue;
            }
            // Is the queue full?
            if t == h + c {
                return Err(Full(v));
            }
            // Try to insert the element: SC fails if the cell changed at
            // all since the LL — ABA cannot occur.
            let done = state == 0 && self.cells[(t % c) as usize].sc(link, e);
            // Increment the counter via LL/SC (helping).
            let (tv, tl) = self.tail.ll();
            if tv == t {
                let _ = self.tail.sc(tl, t + 1);
            }
            if done {
                return Ok(());
            }
        }
    }

    fn dequeue(&self, _h: &mut LlScHandle) -> Option<u64> {
        let c = self.cells.len() as u32;
        loop {
            // Read the counters + element snapshot.
            let t = self.tail.load();
            let h = self.head.load();
            let (e, link) = self.cells[(h % c) as usize].ll();
            if t != self.tail.load() {
                continue;
            }
            // Is the queue empty?
            if t == h {
                return None;
            }
            // Try to extract the element.
            let done = e != 0 && self.cells[(h % c) as usize].sc(link, 0);
            // Increment the counter (helping).
            let (hv, hl) = self.head.ll();
            if hv == h {
                let _ = self.head.sc(hl, h + 1);
            }
            if done {
                return Some(e as u64);
            }
        }
    }

    fn capacity(&self) -> usize {
        self.cells.len()
    }

    fn max_token(&self) -> u64 {
        u32::MAX as u64
    }

    fn len(&self) -> usize {
        let t = self.tail.load();
        let h = self.head.load();
        t.saturating_sub(h) as usize
    }
}

impl MemoryFootprint for LlScQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let c = self.cells.len();
        // Element payloads are 4 bytes; the other 4 bytes per cell are the
        // software-LL/SC tag, charged as per-slot metadata (zero on real
        // LL/SC hardware).
        FootprintBreakdown::with_elements(c * 4)
            .add(
                "LL/SC emulation tags (4 B per slot; free on LL/SC hardware)",
                c * bq_llsc::EMULATION_TAG_BYTES,
                OverheadClass::PerSlotMetadata,
            )
            .add("head + tail counters", 16, OverheadClass::Counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = LlScQueue::with_capacity(4);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn wraparound_reuses_single_null() {
        let q = LlScQueue::with_capacity(2);
        let mut h = q.register();
        // Unlike Listing 2, the same value may be enqueued repeatedly: the
        // SC tag, not the value, provides ABA immunity.
        for _ in 0..500 {
            q.enqueue(&mut h, 7).unwrap();
            q.enqueue(&mut h, 7).unwrap();
            assert_eq!(q.dequeue(&mut h), Some(7));
            assert_eq!(q.dequeue(&mut h), Some(7));
        }
    }

    #[test]
    fn conceptual_overhead_constant() {
        // The non-emulation overhead (counters) is constant in C.
        let small = LlScQueue::with_capacity(8);
        let large = LlScQueue::with_capacity(1 << 14);
        let ovh = |q: &LlScQueue| {
            q.footprint()
                .class_bytes(bq_memtrack::OverheadClass::Counters)
        };
        assert_eq!(ovh(&small), ovh(&large));
    }

    #[test]
    fn concurrent_repeated_values_conserved() {
        // The killer scenario for CAS-based constant-overhead queues:
        // heavily repeated values under contention. LL/SC shrugs it off.
        let q = Arc::new(LlScQueue::with_capacity(4));
        let per = 5_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for _ in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for _ in 0..per {
                    // Everyone enqueues the same value.
                    while q.enqueue(&mut h, 42).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut got = 0u64;
        while got < total {
            match q.dequeue(&mut h) {
                Some(v) => {
                    assert_eq!(v, 42);
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert_eq!(q.dequeue(&mut h), None, "exact conservation");
    }

    #[test]
    #[should_panic(expected = "non-zero u32")]
    fn rejects_wide_tokens() {
        let q = LlScQueue::with_capacity(2);
        let mut h = q.register();
        let _ = q.enqueue(&mut h, 1 << 40);
    }
}
