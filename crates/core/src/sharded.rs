//! The **scale layer**'s sharded queue: `S` independent sub-queues behind
//! per-thread shard affinity (DESIGN.md §8).
//!
//! The paper's algorithms serialize every operation through one pair of
//! positioning counters — the classic single-ring scalability ceiling its
//! industrial-class baselines also hit. [`ShardedQueue`] composes `S`
//! sub-queues of capacity `C/S` into one logical queue of capacity `C`:
//! each registered thread owns a *home shard* (`tid % S`) that it tries
//! first, rotating to the other shards only when the home shard is full
//! (enqueue) or empty (dequeue) — "steal-on-full / steal-on-empty".
//! Disjoint producer/consumer pairs therefore touch disjoint counters and
//! scale with `S` instead of contending on one serialization point.
//!
//! ## Relaxed semantics — read this before using it
//!
//! Sharding deliberately trades **global FIFO for per-shard FIFO**:
//!
//! * Elements that pass through the *same* shard are delivered in FIFO
//!   order (each shard is a full bounded queue from the paper).
//! * Elements in *different* shards have no ordering relation, even when
//!   their enqueues were sequential. A single thread that overflows its
//!   home shard and steals will observe its own values out of global
//!   order.
//! * Under concurrency, `Full`/`None` refusals are **best-effort**: the
//!   shards are scanned one at a time, so a counterpart can create space
//!   (or an element) in an already-visited shard mid-scan — the same
//!   relaxation the paper notes for Θ(C) industrial ring buffers. When
//!   quiescent the refusals are exact: all-shards-full ⇔ `len() == C`.
//!
//! What survives, exactly: per-shard FIFO, conservation (every accepted
//! element is delivered exactly once), and linearizability against the
//! **pool** (multiset) specification — `bq-sim`'s
//! `check_history_pool` checker certifies recorded histories, and
//! `tests/linearizability_stress.rs` asserts exactly this contract (not
//! more).
//!
//! ## Memory overhead — Θ(S · ovh(Q))
//!
//! The composition pays `S` times the sub-queue overhead plus a constant
//! shard directory: for `ShardedQueue<OptimalQueue>` that is **Θ(S·T)** —
//! `S` announcement arrays of `T` slots, `S` pools of `2T` descriptors,
//! `S` counter pairs — extending the paper's overhead table to the
//! composed structure (asserted numerically in
//! `tests/footprint_claims.rs`). Element storage stays exactly `C`
//! value-locations, split across the shards.
//!
//! ## Batching
//!
//! The [`ConcurrentQueue`] batch extension is overridden so that a batch
//! sticks to one shard for as long as that shard accepts/produces
//! elements, which both amortizes the shard-selection scan **and** keeps
//! whole runs inside the sub-queue's native batch fast path
//! (segment-local runs, slot runs).

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::simx::SimAtomicUsize;

use crate::boxed::PointerCapable;
use crate::optimal::OptimalQueue;
use crate::queue::{ConcurrentQueue, Full};
use crate::segment::SegmentQueue;
use bq_memtrack::{FootprintBreakdown, FootprintEntry, MemoryFootprint, OverheadClass};

/// `S` sub-queues of capacity `C/S` behind per-thread shard affinity with
/// steal-on-full / steal-on-empty rotation. See the module docs for the
/// exact (relaxed) semantics and the Θ(S · ovh(Q)) overhead accounting.
///
/// ```
/// use bq_core::{ConcurrentQueue, OptimalQueue, ShardedQueue};
///
/// // 4 shards × 256 slots, up to 8 threads (each shard admits all 8).
/// let q = ShardedQueue::<OptimalQueue>::optimal(1024, 4, 8);
/// let mut h = q.register();
/// assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3]), 3);
/// let mut out = Vec::new();
/// assert_eq!(q.dequeue_many(&mut h, 3, &mut out), 3);
/// assert_eq!(q.capacity(), 1024);
/// ```
pub struct ShardedQueue<Q: ConcurrentQueue> {
    shards: Box<[Q]>,
    next_tid: SimAtomicUsize,
}

/// Per-thread handle: the home-shard index plus one sub-handle per shard
/// (rotation may visit any of them).
pub struct ShardedHandle<Q: ConcurrentQueue> {
    home: usize,
    handles: Box<[Q::Handle]>,
}

impl<Q: ConcurrentQueue> ShardedQueue<Q> {
    /// Compose pre-built shards into one logical queue. The shards'
    /// capacities sum to the logical capacity `C`; every shard must admit
    /// every thread that will register here (rotation touches all shards).
    pub fn from_shards(shards: Vec<Q>) -> Self {
        assert!(!shards.is_empty(), "at least one shard required");
        ShardedQueue {
            shards: shards.into_boxed_slice(),
            next_tid: SimAtomicUsize::new(0),
        }
    }

    /// Build `s` shards splitting a total capacity `c` near-evenly
    /// (`c % s` leading shards get one extra slot). `make` receives the
    /// shard index and its capacity. `s` is clamped to `1..=c` so every
    /// shard has at least one slot.
    pub fn with_capacity_sharded(c: usize, s: usize, make: impl Fn(usize, usize) -> Q) -> Self {
        assert!(c > 0, "capacity must be positive");
        let s = s.clamp(1, c);
        let shards: Vec<Q> = (0..s)
            .map(|i| {
                let cap = c / s + usize::from(i < c % s);
                let q = make(i, cap);
                assert_eq!(q.capacity(), cap, "shard {i} built with wrong capacity");
                q
            })
            .collect();
        Self::from_shards(shards)
    }

    /// The shard count `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i` (tests and accounting).
    pub fn shard(&self, i: usize) -> &Q {
        &self.shards[i]
    }

    /// The steal-rotation scan shared by all four operation paths: visit
    /// the shards home-first, then rotating through the rest, handing
    /// `visit` each shard paired with its per-shard handle, until it
    /// breaks (operation satisfied) or every shard was tried.
    fn rotate<B>(
        &self,
        h: &mut ShardedHandle<Q>,
        mut visit: impl FnMut(&Q, &mut Q::Handle) -> ControlFlow<B>,
    ) -> Option<B> {
        let s = self.shards.len();
        for off in 0..s {
            let i = (h.home + off) % s;
            if let ControlFlow::Break(b) = visit(&self.shards[i], &mut h.handles[i]) {
                return Some(b);
            }
        }
        None
    }
}

impl ShardedQueue<OptimalQueue> {
    /// The flagship composition: `S` memory-optimal Listing 5 queues —
    /// total overhead **Θ(S·T)**, element storage exactly `C` slots.
    pub fn optimal(c: usize, s: usize, max_threads: usize) -> Self {
        Self::with_capacity_sharded(c, s, |_, cap| {
            OptimalQueue::with_capacity_and_threads(cap, max_threads)
        })
    }
}

impl ShardedQueue<SegmentQueue> {
    /// Sharded Listing 1: per-shard segment size defaults to `√(C/S)`.
    pub fn segmented(c: usize, s: usize) -> Self {
        Self::with_capacity_sharded(c, s, |_, cap| SegmentQueue::with_capacity(cap))
    }
}

impl<Q: ConcurrentQueue> ConcurrentQueue for ShardedQueue<Q> {
    type Handle = ShardedHandle<Q>;

    fn register(&self) -> ShardedHandle<Q> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        ShardedHandle {
            home: tid % self.shards.len(),
            handles: self.shards.iter().map(|q| q.register()).collect(),
        }
    }

    fn enqueue(&self, h: &mut ShardedHandle<Q>, v: u64) -> Result<(), Full> {
        self.rotate(h, |q, sh| match q.enqueue(sh, v) {
            Ok(()) => ControlFlow::Break(()),
            Err(_) => ControlFlow::Continue(()),
        })
        .ok_or(Full(v))
    }

    fn dequeue(&self, h: &mut ShardedHandle<Q>) -> Option<u64> {
        self.rotate(h, |q, sh| match q.dequeue(sh) {
            Some(v) => ControlFlow::Break(v),
            None => ControlFlow::Continue(()),
        })
    }

    fn enqueue_many(&self, h: &mut ShardedHandle<Q>, vs: &[u64]) -> usize {
        // A batch sticks to each shard for as long as it accepts: the
        // rotation advances on refusal, exactly like the single path.
        let mut done = 0;
        self.rotate(h, |q, sh| {
            done += q.enqueue_many(sh, &vs[done..]);
            if done == vs.len() {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        done
    }

    fn dequeue_many(&self, h: &mut ShardedHandle<Q>, max: usize, out: &mut Vec<u64>) -> usize {
        let mut done = 0;
        self.rotate(h, |q, sh| {
            done += q.dequeue_many(sh, max - done, out);
            if done == max {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        done
    }

    fn capacity(&self) -> usize {
        self.shards.iter().map(|q| q.capacity()).sum()
    }

    fn max_token(&self) -> u64 {
        self.shards.iter().map(|q| q.max_token()).min().unwrap()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }
}

impl<Q: PointerCapable> PointerCapable for ShardedQueue<Q> {
    fn drop_handle(&self) -> ShardedHandle<Q> {
        ShardedHandle {
            home: 0,
            handles: self.shards.iter().map(|q| q.drop_handle()).collect(),
        }
    }
}

impl<Q: ConcurrentQueue + MemoryFootprint> MemoryFootprint for ShardedQueue<Q> {
    /// Sum of the shard breakdowns (entries aggregated by overhead class,
    /// labelled `across S shards: …`) plus the constant shard directory.
    /// For `ShardedQueue<OptimalQueue>` the aggregate is Θ(S·T).
    fn footprint(&self) -> FootprintBreakdown {
        let s = self.shards.len();
        let mut element_bytes = 0;
        // Aggregate per class, preserving first-seen order.
        let mut classes: Vec<(OverheadClass, usize)> = Vec::new();
        for q in self.shards.iter() {
            let b = q.footprint();
            element_bytes += b.element_bytes;
            for e in b.overhead {
                match classes.iter_mut().find(|(c, _)| *c == e.class) {
                    Some((_, bytes)) => *bytes += e.bytes,
                    None => classes.push((e.class, e.bytes)),
                }
            }
        }
        let mut out = FootprintBreakdown::with_elements(element_bytes);
        for (class, bytes) in classes {
            out.overhead.push(FootprintEntry::new(
                format!("across {s} shards: {class}"),
                bytes,
                class,
            ));
        }
        out.add(
            "shard directory (boxed-slice fat pointer + tid counter)",
            std::mem::size_of::<Box<[Q]>>() + std::mem::size_of::<AtomicUsize>(),
            OverheadClass::Other,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sharded(c: usize, s: usize, t: usize) -> ShardedQueue<OptimalQueue> {
        ShardedQueue::<OptimalQueue>::optimal(c, s, t)
    }

    #[test]
    fn capacity_splits_exactly() {
        let q = sharded(10, 4, 1);
        assert_eq!(q.shard_count(), 4);
        assert_eq!(q.capacity(), 10);
        let caps: Vec<usize> = (0..4).map(|i| q.shard(i).capacity()).collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let q = sharded(2, 8, 1);
        assert_eq!(q.shard_count(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn full_only_when_all_shards_full() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        // Draining one slot re-admits.
        assert!(q.dequeue(&mut h).is_some());
        q.enqueue(&mut h, 5).unwrap();
    }

    #[test]
    fn empty_only_when_all_shards_empty() {
        let q = sharded(4, 2, 2);
        let mut h0 = q.register(); // home shard 0
        let mut h1 = q.register(); // home shard 1
        q.enqueue(&mut h0, 7).unwrap(); // lands in shard 0
                                        // The other thread's home shard is empty; it must steal.
        assert_eq!(q.dequeue(&mut h1), Some(7));
        assert_eq!(q.dequeue(&mut h1), None);
        assert_eq!(q.dequeue(&mut h0), None);
    }

    #[test]
    fn per_shard_fifo_holds_global_fifo_does_not() {
        // The documented relaxation, pinned deterministically: a single
        // thread with home shard 0 overflows into shard 1; its dequeues
        // then drain home first — out of global enqueue order, but in
        // FIFO order *within* each shard.
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap(); // 1,2 → shard 0; 3,4 → shard 1
        }
        assert_eq!(q.dequeue(&mut h), Some(1));
        assert_eq!(q.dequeue(&mut h), Some(2));
        q.enqueue(&mut h, 5).unwrap(); // home shard 0 has space again
                                       // Global FIFO would yield 3 next; per-shard affinity yields 5.
        assert_eq!(q.dequeue(&mut h), Some(5), "global FIFO is relaxed");
        assert_eq!(q.dequeue(&mut h), Some(3), "shard 1 still FIFO");
        assert_eq!(q.dequeue(&mut h), Some(4));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn batch_ops_roundtrip_across_shards() {
        let q = sharded(8, 4, 1);
        let mut h = q.register();
        let vs: Vec<u64> = (1..=8).collect();
        assert_eq!(q.enqueue_many(&mut h, &vs), 8);
        assert_eq!(q.enqueue_many(&mut h, &[9]), 0, "all shards full");
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 8, &mut out), 8);
        out.sort_unstable();
        assert_eq!(out, vs, "conservation across shards");
        assert_eq!(q.dequeue_many(&mut h, 1, &mut out), 0);
    }

    #[test]
    fn batch_partial_acceptance_reports_prefix() {
        let q = sharded(4, 2, 1);
        let mut h = q.register();
        assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3, 4, 5, 6]), 4);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 10, &mut out), 4);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3, 4], "accepted exactly the prefix");
    }

    #[test]
    fn overhead_is_s_times_subqueue_plus_directory() {
        let (c, s, t) = (1024, 4, 8);
        let q = sharded(c, s, t);
        let single = OptimalQueue::with_capacity_and_threads(c / s, t);
        assert_eq!(
            q.overhead_bytes(),
            s * single.overhead_bytes() + 24,
            "Θ(S·T): S sub-queue overheads plus the 24-byte shard directory"
        );
        assert_eq!(q.element_bytes(), c * 8, "element storage stays C slots");
        let _ = q.max_token();
    }

    #[test]
    fn sharded_mpmc_conservation() {
        let q = Arc::new(sharded(16, 4, 4));
        let per = 2_000u64;
        let producers = 2u64;
        let total = per * producers;
        std::thread::scope(|sc| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                sc.spawn(move || {
                    let mut h = q.register();
                    for i in 0..per {
                        let v = 1 + p * per + i;
                        while q.enqueue(&mut h, v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            sc.spawn(move || {
                let mut h = q.register();
                let mut seen = std::collections::HashSet::new();
                while (seen.len() as u64) < total {
                    match q.dequeue(&mut h) {
                        Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                        None => std::thread::yield_now(),
                    }
                }
            });
        });
        let mut h = q.register();
        assert_eq!(q.dequeue(&mut h), None, "exact conservation");
    }

    #[test]
    fn sharded_segment_composition_builds() {
        let q = ShardedQueue::<SegmentQueue>::segmented(64, 4);
        let mut h = q.register();
        assert_eq!(q.enqueue_many(&mut h, &[1, 2, 3]), 3);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 3, &mut out), 3);
        assert_eq!(q.shard(0).capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedQueue::<OptimalQueue>::from_shards(Vec::new());
    }
}
