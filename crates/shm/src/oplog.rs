//! A shared-memory **operation log** for reconstructing cross-process
//! histories: every process appends invoke/return events with globally
//! sequenced timestamps, and the parent rebuilds a totally-ordered
//! history for the Wing–Gong pool checker (`bq_sim::lincheck`).
//!
//! Soundness of the reconstruction: an operation's invoke event is
//! logged *before* its first queue access and its return event *after*
//! its last, both stamped from one shared `event_seq` counter — so the
//! logged interval **contains** the real one, and interval-widening is
//! exactly the coarsening the linearizability definition permits (a
//! history remains valid if ops are treated as taking longer). A process
//! killed mid-operation leaves a record with `return_seq == 0`; such
//! pending records are surfaced separately so callers can decide
//! (complete histories go to the checker; crash runs use conservation
//! accounting instead).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bq_core::relocatable::align_up;

use crate::segment::ShmSegment;

/// Layout tag for an op-log segment payload.
pub const OPLOG_TAG: u64 = 0x4f50_4c4f_4731_0001; // "OPLOG1" + rev

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `enqueue(value)`.
    Enqueue,
    /// `dequeue()`.
    Dequeue,
}

/// Operation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetKind {
    /// Enqueue accepted.
    EnqOk,
    /// Enqueue rejected (queue full).
    EnqFull,
    /// Dequeue returned the carried value.
    DeqVal,
    /// Dequeue found the queue empty.
    DeqEmpty,
}

const K_ENQ: u64 = 0;
const K_DEQ: u64 = 1;
const R_ENQ_OK: u64 = 1;
const R_ENQ_FULL: u64 = 2;
const R_DEQ_VAL: u64 = 3;
const R_DEQ_EMPTY: u64 = 4;

/// One logged operation (all fields atomics so processes race safely).
#[repr(C)]
struct OpRecord {
    /// Global sequence stamp of the invoke (1-based; 0 = record unused).
    invoke_seq: AtomicU64,
    /// Global sequence stamp of the return (0 = still pending).
    return_seq: AtomicU64,
    /// `K_ENQ` / `K_DEQ`.
    kind: AtomicU64,
    /// Logical thread/process id of the caller.
    tid: AtomicU64,
    /// Enqueue argument (unused for dequeues).
    value: AtomicU64,
    /// `R_*` result code.
    ret_kind: AtomicU64,
    /// Dequeue result value (valid when `ret_kind == R_DEQ_VAL`).
    ret_val: AtomicU64,
}

#[repr(C, align(128))]
struct LogHdr {
    capacity: u64,
    _pad0: u64,
    /// Global event stamp source (shared by invokes and returns).
    event_seq: AtomicU64,
    /// Next free record index.
    next_rec: AtomicU64,
}

/// A fully reconstructed event, ordered by its global stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedEvent {
    /// Operation `rec` was invoked.
    Invoke {
        /// Record index (stable op identity).
        rec: usize,
        /// Logical caller id.
        tid: u64,
        /// The operation.
        kind: OpKind,
        /// Enqueue argument (0 for dequeues).
        value: u64,
    },
    /// Operation `rec` returned.
    Return {
        /// Record index.
        rec: usize,
        /// The result.
        ret: RetKind,
        /// Dequeue result value (0 otherwise).
        ret_val: u64,
    },
}

/// The shared op log (one segment of its own; clone freely, fork freely).
#[derive(Clone)]
pub struct OpLog {
    seg: Arc<ShmSegment>,
    cap: usize,
}

impl OpLog {
    fn hdr(&self) -> &LogHdr {
        // SAFETY: constructor initializes the header before returning.
        unsafe { &*self.seg.payload_ptr().cast::<LogHdr>() }
    }

    fn rec(&self, i: usize) -> &OpRecord {
        debug_assert!(i < self.cap);
        // SAFETY: records follow the header; i bounds-checked above.
        unsafe {
            &*self
                .seg
                .payload_ptr()
                .add(Self::recs_offset())
                .cast::<OpRecord>()
                .add(i)
        }
    }

    fn recs_offset() -> usize {
        align_up(
            std::mem::size_of::<LogHdr>(),
            std::mem::align_of::<OpRecord>(),
        )
    }

    /// Create a log with room for `cap` operations in a fresh anonymous
    /// shared segment.
    pub fn create_anon(cap: usize) -> std::io::Result<OpLog> {
        assert!(cap > 0);
        let bytes = Self::recs_offset() + cap * std::mem::size_of::<OpRecord>();
        let seg = ShmSegment::create_anon(bytes, OPLOG_TAG)?;
        // SAFETY: payload is zeroed and large enough; only the capacity
        // word needs writing (zeroed atomics are the correct init).
        unsafe {
            (*seg.payload_ptr().cast::<LogHdr>()).capacity = cap as u64;
        }
        seg.publish();
        Ok(OpLog {
            seg: Arc::new(seg),
            cap,
        })
    }

    /// Capacity in operations.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Log an invoke; returns the record id to pass to
    /// [`log_return`](Self::log_return), or `None` when the log is full
    /// (callers simply stop logging — the workload continues unlogged).
    pub fn log_invoke(&self, tid: u64, kind: OpKind, value: u64) -> Option<usize> {
        let h = self.hdr();
        let i = h.next_rec.fetch_add(1, Ordering::SeqCst) as usize;
        if i >= self.cap {
            return None;
        }
        let r = self.rec(i);
        r.kind.store(
            match kind {
                OpKind::Enqueue => K_ENQ,
                OpKind::Dequeue => K_DEQ,
            },
            Ordering::SeqCst,
        );
        r.tid.store(tid, Ordering::SeqCst);
        r.value.store(value, Ordering::SeqCst);
        // The stamp is taken last so the logged invoke precedes the op
        // but follows the record's field writes.
        let stamp = h.event_seq.fetch_add(1, Ordering::SeqCst) + 1;
        r.invoke_seq.store(stamp, Ordering::SeqCst);
        Some(i)
    }

    /// Log the return of record `rec`.
    pub fn log_return(&self, rec: usize, ret: RetKind, ret_val: u64) {
        let h = self.hdr();
        let r = self.rec(rec);
        r.ret_kind.store(
            match ret {
                RetKind::EnqOk => R_ENQ_OK,
                RetKind::EnqFull => R_ENQ_FULL,
                RetKind::DeqVal => R_DEQ_VAL,
                RetKind::DeqEmpty => R_DEQ_EMPTY,
            },
            Ordering::SeqCst,
        );
        r.ret_val.store(ret_val, Ordering::SeqCst);
        let stamp = h.event_seq.fetch_add(1, Ordering::SeqCst) + 1;
        r.return_seq.store(stamp, Ordering::SeqCst);
    }

    /// Reconstruct the completed history: all events of records whose
    /// return was logged, totally ordered by global stamp. The second
    /// return value lists records still **pending** (invoked, never
    /// returned — i.e. the ops of killed processes).
    pub fn reconstruct(&self) -> (Vec<LoggedEvent>, Vec<usize>) {
        let used = (self.hdr().next_rec.load(Ordering::SeqCst) as usize).min(self.cap);
        let mut events: Vec<(u64, LoggedEvent)> = Vec::new();
        let mut pending = Vec::new();
        for i in 0..used {
            let r = self.rec(i);
            let inv = r.invoke_seq.load(Ordering::SeqCst);
            if inv == 0 {
                continue; // allocated but never stamped (killed inside log_invoke)
            }
            let ret = r.return_seq.load(Ordering::SeqCst);
            if ret == 0 {
                pending.push(i);
                continue;
            }
            let kind = if r.kind.load(Ordering::SeqCst) == K_ENQ {
                OpKind::Enqueue
            } else {
                OpKind::Dequeue
            };
            events.push((
                inv,
                LoggedEvent::Invoke {
                    rec: i,
                    tid: r.tid.load(Ordering::SeqCst),
                    kind,
                    value: r.value.load(Ordering::SeqCst),
                },
            ));
            let ret_kind = match r.ret_kind.load(Ordering::SeqCst) {
                R_ENQ_OK => RetKind::EnqOk,
                R_ENQ_FULL => RetKind::EnqFull,
                R_DEQ_VAL => RetKind::DeqVal,
                R_DEQ_EMPTY => RetKind::DeqEmpty,
                other => unreachable!("corrupt ret_kind {other}"),
            };
            events.push((
                ret,
                LoggedEvent::Return {
                    rec: i,
                    ret: ret_kind,
                    ret_val: r.ret_val.load(Ordering::SeqCst),
                },
            ));
        }
        events.sort_by_key(|(stamp, _)| *stamp);
        (events.into_iter().map(|(_, e)| e).collect(), pending)
    }
}

const _: () = {
    use std::mem::{offset_of, size_of};
    assert!(size_of::<OpRecord>() == 56);
    assert!(offset_of!(OpRecord, invoke_seq) == 0);
    assert!(offset_of!(OpRecord, return_seq) == 8);
    assert!(size_of::<LogHdr>() == 128);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trip_orders_events() {
        let log = OpLog::create_anon(8).unwrap();
        let a = log.log_invoke(0, OpKind::Enqueue, 41).unwrap();
        let b = log.log_invoke(1, OpKind::Dequeue, 0).unwrap();
        log.log_return(a, RetKind::EnqOk, 0);
        log.log_return(b, RetKind::DeqVal, 41);
        let (events, pending) = log.reconstruct();
        assert!(pending.is_empty());
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            LoggedEvent::Invoke {
                rec: a,
                tid: 0,
                kind: OpKind::Enqueue,
                value: 41
            }
        );
        assert_eq!(
            events[1],
            LoggedEvent::Invoke {
                rec: b,
                tid: 1,
                kind: OpKind::Dequeue,
                value: 0
            }
        );
        // Returns were logged after both invokes, in call order.
        assert_eq!(
            events[2],
            LoggedEvent::Return {
                rec: a,
                ret: RetKind::EnqOk,
                ret_val: 0
            }
        );
    }

    #[test]
    fn pending_ops_are_surfaced_not_dropped_silently() {
        let log = OpLog::create_anon(4).unwrap();
        let a = log.log_invoke(0, OpKind::Enqueue, 1).unwrap();
        let b = log.log_invoke(0, OpKind::Enqueue, 2).unwrap();
        log.log_return(b, RetKind::EnqOk, 0);
        let (events, pending) = log.reconstruct();
        assert_eq!(pending, vec![a], "killed-mid-op record is reported");
        assert_eq!(events.len(), 2, "only the completed op's events");
    }

    #[test]
    fn full_log_returns_none_and_keeps_working() {
        let log = OpLog::create_anon(2).unwrap();
        assert!(log.log_invoke(0, OpKind::Enqueue, 1).is_some());
        assert!(log.log_invoke(0, OpKind::Enqueue, 2).is_some());
        assert!(log.log_invoke(0, OpKind::Enqueue, 3).is_none());
        let (events, _) = log.reconstruct();
        assert_eq!(events.len(), 0, "no returns yet");
    }
}
