//! The packaged lower-bound adversary experiments (E4 / E8).
//!
//! Theorem 3.12 of the paper says a linearizable, obstruction-free,
//! value-independent bounded queue over read/write/CAS needs Ω(T) extra
//! value-locations. The proof poises threads before CASes on
//! value-locations and then replays fill/empty procedures so that one
//! poised CAS replaces an element *in the middle* of the queue (Figure 3).
//!
//! This module runs that construction concretely against the simulated
//! algorithms:
//!
//! * [`run_middle_steal`] — a dequeue poised on `CAS(a[i], v, ⊥)` fires a
//!   round later, after `v` was re-enqueued into the same slot (values may
//!   repeat: value-independence!), stealing it from the middle of the
//!   queue. Non-linearizable for the constant-overhead strawman **and** for
//!   Listing 2 once its distinct-elements assumption is violated; harmless
//!   for the Θ(T)-overhead DCSS queue.
//! * [`run_enqueue_hole`] — an enqueue poised on `CAS(a[i], ⊥, y)` fires a
//!   round later into a mid-queue hole. For the strawman this drives the
//!   `tail` counter past positions that hold no element and ultimately
//!   makes a *failed* enqueue's value observable — again non-linearizable.
//!
//! Each experiment returns an [`AdversaryReport`] with the full history (in
//! the paper's `enq`/`deq →` notation) and the verdict of the
//! linearizability checker, which is what `bq-bench`'s `adversary` binary
//! prints for EXPERIMENTS.md.

use crate::algos::counter_queue::{dcss, distinct, naive, two_null, CounterQueue, Flavor};
use crate::algos::optimal_model::{HelpMode, OptimalModel};
use crate::controller::{RunOutcome, Sim};
use crate::lincheck::{check_history, History, LinResult};
use crate::machine::{Op, Ret, SimQueue};
use crate::mem::{LocKind, SimMemory};

/// Outcome of one adversary run against one algorithm.
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// The recorded concurrent history.
    pub history: History,
    /// Checker verdict.
    pub verdict: LinResult,
    /// Number of value-locations in the layout (the lower bound's subject).
    pub value_locations: usize,
    /// Number of metadata-locations in the layout.
    pub metadata_locations: usize,
}

impl AdversaryReport {
    /// `true` iff the recorded execution is linearizable.
    pub fn linearizable(&self) -> bool {
        self.verdict.is_linearizable()
    }

    /// Render a human-readable report block.
    pub fn render(&self) -> String {
        format!(
            "algorithm: {}\nscenario:  {}\nvalue-locations: {} | metadata-locations: {}\n\
             history:\n{}verdict: {}\n",
            self.algorithm,
            self.scenario,
            self.value_locations,
            self.metadata_locations,
            self.history.render(),
            if self.linearizable() {
                "LINEARIZABLE"
            } else {
                "NOT LINEARIZABLE"
            }
        )
    }
}

const STEPS: usize = 10_000;

fn build(flavor: Flavor, c: usize, threads: usize) -> Sim<CounterQueue> {
    let mut mem = SimMemory::new();
    let q = match flavor {
        Flavor::Naive => naive(c, &mut mem),
        Flavor::Distinct => distinct(c, &mut mem),
        Flavor::TwoNull => two_null(c, &mut mem),
        Flavor::Dcss => dcss(c, &mut mem),
    };
    Sim::new(q, mem, threads)
}

fn poise_before_value_update<Q: SimQueue>(sim: &mut Sim<Q>, tid: usize) -> RunOutcome {
    sim.run_until(tid, STEPS, |a, m| {
        a.is_update() && m.kind(a.target()) == LocKind::Value
    })
}

fn report<Q: SimQueue>(sim: Sim<Q>, scenario: &'static str) -> AdversaryReport {
    let verdict = check_history(sim.history(), sim.queue.capacity());
    AdversaryReport {
        algorithm: sim.queue.name(),
        scenario,
        value_locations: sim.mem.value_location_count(),
        metadata_locations: sim.mem.metadata_location_count(),
        history: sim.history().clone(),
        verdict,
    }
}

/// The **middle-steal** construction (Figure 3, dequeue side).
///
/// Thread 1's dequeue is poised on `CAS(a[1], 7, ⊥)`; the queue is drained
/// and refilled so that slot 1 again holds the (repeated) value 7 — now as
/// the *newest* element behind 11, 12, 13 — and the poised CAS is released.
pub fn run_middle_steal(flavor: Flavor) -> AdversaryReport {
    let mut sim = build(flavor, 4, 2);

    // Round 0: [1, 7]; consume the 1.
    assert_eq!(sim.run_op(0, Op::Enqueue(1), STEPS), Ret::EnqOk);
    assert_eq!(sim.run_op(0, Op::Enqueue(7), STEPS), Ret::EnqOk);
    assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(1));

    // Thread 1 starts dequeuing the 7 but is poised just before its
    // value-location update (Definition 3.5).
    sim.invoke(1, Op::Dequeue);
    let poised = poise_before_value_update(&mut sim, 1);
    assert!(
        matches!(poised, RunOutcome::Poised(_)),
        "victim failed to reach a value-location update: {poised:?}"
    );

    // Main thread consumes the 7 and refills: [11, 12, 13, 7]. The second
    // 7 lands in the same slot the victim covers.
    assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(7));
    for v in [11, 12, 13, 7] {
        assert_eq!(sim.run_op(0, Op::Enqueue(v), STEPS), Ret::EnqOk);
    }

    // Release the victim; then drain.
    sim.run_to_completion(1, STEPS);
    for _ in 0..5 {
        if sim.run_op(0, Op::Dequeue, STEPS) == Ret::DeqEmpty {
            break;
        }
    }
    report(sim, "middle-steal (poised dequeue CAS, repeated value)")
}

/// The **enqueue-into-hole** construction (Figure 3, enqueue side).
///
/// Thread 1's `enq(99)` is poised on `CAS(a[2], ⊥, 99)`; a round later
/// slot 2 is a mid-queue hole (its round-0 element was dequeued, the
/// round-1 enqueue for it has not happened). The released CAS plants 99
/// there; for the strawman the `tail` counter is then helped past
/// positions that never received an element, the poised enqueue reports
/// `full` — and its value is dequeued anyway.
pub fn run_enqueue_hole(flavor: Flavor) -> AdversaryReport {
    let mut sim = build(flavor, 4, 2);

    // tail = 2 so the victim targets slot 2.
    assert_eq!(sim.run_op(0, Op::Enqueue(1), STEPS), Ret::EnqOk);
    assert_eq!(sim.run_op(0, Op::Enqueue(2), STEPS), Ret::EnqOk);

    sim.invoke(1, Op::Enqueue(99));
    let poised = poise_before_value_update(&mut sim, 1);
    assert!(
        matches!(poised, RunOutcome::Poised(_)),
        "victim failed to reach a value-location update: {poised:?}"
    );

    // Complete round 0 in slots 2,3; drain three; push two more so that
    // head=3, tail=6 and slot 2 is an interior hole awaiting position 6.
    assert_eq!(sim.run_op(0, Op::Enqueue(3), STEPS), Ret::EnqOk);
    assert_eq!(sim.run_op(0, Op::Enqueue(4), STEPS), Ret::EnqOk);
    for expect in [1, 2, 3] {
        assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(expect));
    }
    assert_eq!(sim.run_op(0, Op::Enqueue(5), STEPS), Ret::EnqOk);
    assert_eq!(sim.run_op(0, Op::Enqueue(6), STEPS), Ret::EnqOk);

    // Release the victim enqueue, then drain everything.
    sim.run_to_completion(1, STEPS);
    for _ in 0..8 {
        if sim.run_op(0, Op::Dequeue, STEPS) == Ret::DeqEmpty {
            break;
        }
    }
    report(
        sim,
        "enqueue-into-hole (poised enqueue CAS into interior ⊥)",
    )
}

/// The **two-round sleep** construction — the paper's §4 critique of
/// Tsigas–Zhang made executable.
///
/// With only two alternating nulls, a slot's "empty" state *recurs* after
/// exactly two rounds. Thread 1's `enq(99)` is poised on
/// `CAS(a[0], ⊥₀, 99)`; the main thread then runs two complete
/// fill/empty rounds (so slot 0 holds `⊥₀` again) and the poised CAS is
/// released — planting 99 into a position whose round it does not own.
/// Listing 2's unbounded versions close exactly this window.
pub fn run_two_round_sleep(flavor: Flavor) -> AdversaryReport {
    let mut sim = build(flavor, 2, 2);

    // Victim targets position 0 / slot 0 on the empty queue.
    sim.invoke(1, Op::Enqueue(99));
    let poised = poise_before_value_update(&mut sim, 1);
    assert!(
        matches!(poised, RunOutcome::Poised(_)),
        "victim failed to reach a value-location update: {poised:?}"
    );

    // Two complete rounds: every slot's null state cycles ⊥₀ → ⊥₁ → ⊥₀.
    for (a, b) in [(1u64, 2u64), (3, 4)] {
        assert_eq!(sim.run_op(0, Op::Enqueue(a), STEPS), Ret::EnqOk);
        assert_eq!(sim.run_op(0, Op::Enqueue(b), STEPS), Ret::EnqOk);
        assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(a));
        assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(b));
    }

    // Release the victim after its two-round sleep, then drain.
    sim.run_to_completion(1, STEPS);
    for _ in 0..4 {
        if sim.run_op(0, Op::Dequeue, STEPS) == Ret::DeqEmpty {
            break;
        }
    }
    report(
        sim,
        "two-round sleep (poised enqueue across two null cycles)",
    )
}

/// The **Lemma A.2 interleaving** — the regression experiment for the
/// Listing 5 pseudo-code issue documented in DESIGN.md §7.
///
/// Schedule (capacity 1, four threads, `OptimalModel`):
///
/// 1. V's `enq(10)` succeeds logically (descriptor successful, covering
///    cell 0) and is poised inside `completeOp`, before the array
///    write-back.
/// 2. A helper `enq(99)` observes V's descriptor, helps the counter to 1,
///    and correctly reports full.
/// 3. A dequeue returns 10 *through the announcement* (`readElem`).
/// 4. Z's `enq(20)` (at counter 1) finds V's previous-round descriptor and
///    is poised on its replacement CAS.
/// 5. V resumes: stale write-back `a[0] = 10`, counter CAS fails, slot
///    cleared. Z's replacement CAS now fails.
/// 6. **Paper-faithful help**: Z still executes `CAS(enqueues, 1, 2)`,
///    which succeeds although no successful descriptor for position 1
///    exists; Z then sees "full" and returns false; the next dequeue reads
///    the resurrected `a[0] = 10` — the value is dequeued twice. The
///    checker certifies the history non-linearizable.
///    **Evidence help** (the fix, as implemented by
///    `bq_core::OptimalQueue`): Z re-reads the slot, finds no evidence,
///    retries, and enqueues 20 normally — linearizable.
pub fn run_lemma_a2_interleaving(mode: HelpMode) -> AdversaryReport {
    use crate::machine::Access;

    let mut mem = SimMemory::new();
    let q = OptimalModel::new(mode, 1, &mut mem);
    let ops_loc = q.ops_loc();
    let mut sim = Sim::new(q, mem, 4);

    // (1) V logically enqueues 10, poised before the array write-back.
    sim.invoke(1, Op::Enqueue(10));
    let poised = poise_before_value_update(&mut sim, 1);
    assert!(matches!(poised, RunOutcome::Poised(_)), "{poised:?}");

    // (2) helper observes the descriptor and pushes the counter to 1.
    assert_eq!(sim.run_op(3, Op::Enqueue(99), STEPS), Ret::EnqFull);

    // (3) the element is consumed through the announcement.
    assert_eq!(sim.run_op(0, Op::Dequeue, STEPS), Ret::DeqVal(10));

    // (4) Z reaches its previous-round replacement CAS and is poised.
    sim.invoke(2, Op::Enqueue(20));
    let z = sim.run_until(
        2,
        STEPS,
        |a, _| matches!(a, Access::Cas { loc, exp, .. } if *loc == ops_loc && *exp != 0),
    );
    assert!(matches!(z, RunOutcome::Poised(_)), "{z:?}");

    // (5) V completes: stale write-back, slot cleared.
    sim.run_to_completion(1, STEPS);

    // (6) Z resumes — the two modes diverge here.
    sim.run_to_completion(2, STEPS);

    // Drain.
    for _ in 0..3 {
        if sim.run_op(0, Op::Dequeue, STEPS) == Ret::DeqEmpty {
            break;
        }
    }
    report(
        sim,
        "Lemma A.2 interleaving (counter help without a descriptor)",
    )
}

/// Lemma 3.7 in miniature: with a victim poised on a value-location CAS, a
/// solo thread must still drive an up-to-date fill/empty pair to completion
/// (obstruction-freedom of the others).
pub fn solo_fill_empty_with_poised_victim(flavor: Flavor) -> bool {
    let mut sim = build(flavor, 4, 2);
    sim.invoke(1, Op::Enqueue(1000));
    let _ = poise_before_value_update(&mut sim, 1);

    let fills = sim.fill(0, &[21, 22, 23, 24], STEPS);
    if fills.iter().any(|r| *r != Ret::EnqOk) {
        return false;
    }
    let outs = sim.empty(0, 4, STEPS);
    outs == vec![
        Ret::DeqVal(21),
        Ret::DeqVal(22),
        Ret::DeqVal(23),
        Ret::DeqVal(24),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middle_steal_breaks_the_strawman() {
        let r = run_middle_steal(Flavor::Naive);
        assert!(
            !r.linearizable(),
            "the Θ(1)-overhead strawman must be non-linearizable:\n{}",
            r.render()
        );
    }

    #[test]
    fn middle_steal_breaks_listing2_under_duplicates() {
        // E4: Listing 2 is only correct under distinct elements; the
        // adversary reuses value 7 and the Figure 3 violation appears.
        let r = run_middle_steal(Flavor::Distinct);
        assert!(
            !r.linearizable(),
            "Listing 2 with duplicate values must be non-linearizable:\n{}",
            r.render()
        );
    }

    #[test]
    fn middle_steal_harmless_for_dcss() {
        // Positive control: the Θ(T)-overhead DCSS queue survives the same
        // schedule — the poised DCSS fails its counter comparison.
        let r = run_middle_steal(Flavor::Dcss);
        assert!(
            r.linearizable(),
            "Listing 4 must stay linearizable:\n{}",
            r.render()
        );
    }

    #[test]
    fn enqueue_hole_breaks_the_strawman() {
        let r = run_enqueue_hole(Flavor::Naive);
        assert!(
            !r.linearizable(),
            "counter runaway must yield a non-linearizable history:\n{}",
            r.render()
        );
    }

    #[test]
    fn enqueue_hole_harmless_for_listing2_and_dcss() {
        // The versioned null defeats the stale enqueue CAS (its expected
        // ⊥₀ is gone); the DCSS counter guard does the same.
        for flavor in [Flavor::Distinct, Flavor::Dcss] {
            let r = run_enqueue_hole(flavor);
            assert!(
                r.linearizable(),
                "{:?} must stay linearizable:\n{}",
                flavor,
                r.render()
            );
        }
    }

    #[test]
    fn poised_victims_do_not_block_others() {
        for flavor in [
            Flavor::Naive,
            Flavor::Distinct,
            Flavor::TwoNull,
            Flavor::Dcss,
        ] {
            assert!(
                solo_fill_empty_with_poised_victim(flavor),
                "solo fill/empty must complete with a poised victim ({flavor:?})"
            );
        }
    }

    #[test]
    fn two_round_sleep_breaks_tsigas_zhang() {
        // The paper §4: "if one process becomes asleep for two rounds …
        // waking up it can incorrectly place the element into the queue."
        let r = run_two_round_sleep(Flavor::TwoNull);
        assert!(
            !r.linearizable(),
            "two-null queue must fail after a two-round sleep:\n{}",
            r.render()
        );
    }

    #[test]
    fn two_round_sleep_also_breaks_naive() {
        let r = run_two_round_sleep(Flavor::Naive);
        assert!(!r.linearizable(), "{}", r.render());
    }

    #[test]
    fn two_round_sleep_harmless_with_unbounded_versions_or_dcss() {
        // Listing 2's version counter never recurs; DCSS checks the
        // counter. Both survive the same schedule.
        for flavor in [Flavor::Distinct, Flavor::Dcss] {
            let r = run_two_round_sleep(flavor);
            assert!(
                r.linearizable(),
                "{:?} must survive the two-round sleep:\n{}",
                flavor,
                r.render()
            );
        }
    }

    #[test]
    fn two_null_queue_correct_without_stalls() {
        // Within its (unstated) stall bound, the two-null queue behaves:
        // sequential rounds are fine, matching our real TwoNullQueue tests.
        let mut mem = SimMemory::new();
        let q = two_null(2, &mut mem);
        let mut sim = Sim::new(q, mem, 1);
        for round in 0..6u64 {
            let a = 10 + round * 2;
            let b = 11 + round * 2;
            assert_eq!(sim.fill(0, &[a, b], 1000), vec![Ret::EnqOk; 2]);
            assert_eq!(sim.empty(0, 2, 1000), vec![Ret::DeqVal(a), Ret::DeqVal(b)]);
        }
        assert!(check_history(sim.history(), 2).is_linearizable());
    }

    #[test]
    fn lemma_a2_paper_faithful_help_is_unsound() {
        // The regression test for DESIGN.md §7(1): the paper's
        // unconditional line-40 help admits a double dequeue.
        let r = run_lemma_a2_interleaving(HelpMode::PaperFaithful);
        assert!(
            !r.linearizable(),
            "the paper-faithful helping discipline must exhibit the bug:\n{}",
            r.render()
        );
    }

    #[test]
    fn lemma_a2_evidence_help_is_sound() {
        // The fix used by bq_core::OptimalQueue survives the identical
        // schedule.
        let r = run_lemma_a2_interleaving(HelpMode::Evidence);
        assert!(
            r.linearizable(),
            "the evidence-based helping discipline must survive:\n{}",
            r.render()
        );
    }

    #[test]
    fn report_renders() {
        let r = run_middle_steal(Flavor::Naive);
        let s = r.render();
        assert!(s.contains("NOT LINEARIZABLE"));
        assert!(s.contains("value-locations: 4"));
        assert!(s.contains("enq(11)"));
    }
}
