//! Workload drivers for the throughput experiments (E10).
//!
//! Two canonical workloads from the bounded-queue literature:
//!
//! * **pairs** — every thread alternates `enqueue`/`dequeue` on a
//!   half-full queue (uniform mixed contention);
//! * **producer/consumer** — half the threads enqueue a fixed item count,
//!   half drain, modelling the task-scheduler / io_uring-style usage the
//!   paper's introduction motivates.
//!
//! Hardware note: on a single-core host these measure contention behaviour
//! under preemption (retry rates, helping cost), not parallel speedup —
//! the relative *shape* across algorithms is still informative, and the
//! memory results (the paper's subject) are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::registry::DynQueue;

/// Result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Total completed operations (enqueues + dequeues).
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl WorkloadResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }
}

/// Mixed enqueue/dequeue pairs: `threads` workers each perform
/// `ops_per_thread` enqueue+dequeue pairs on a queue pre-filled to half
/// capacity. Returns aggregate throughput.
pub fn pairs_throughput(q: &dyn DynQueue, threads: usize, ops_per_thread: u64) -> WorkloadResult {
    assert!(threads <= q.threads());
    // Pre-fill to C/2 so both operations usually succeed.
    for i in 0..(q.capacity() / 2) as u64 {
        assert!(q.enqueue(0, 1 + i), "pre-fill failed");
    }
    let token_base = AtomicU64::new(1_000_000);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let token_base = &token_base;
            let q = &*q;
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    // Fresh tokens keep the distinct-elements queues honest.
                    let v = token_base.fetch_add(1, Ordering::Relaxed);
                    while !q.enqueue(tid, v) {
                        std::thread::yield_now();
                    }
                    while q.dequeue(tid).is_none() {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    WorkloadResult {
        ops: 2 * threads as u64 * ops_per_thread,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Batched mixed pairs: like [`pairs_throughput`], but each worker moves
/// elements `batch` at a time through the queue's batch interface —
/// `rounds_per_thread` iterations of `enqueue_many(batch)` followed by
/// `dequeue_many(batch)` on a half-full queue. With `batch == 1` this
/// degenerates to the single-element path (same call overhead shape), so
/// `batched_pairs_throughput(q, t, r, b)` vs `…(q, t, r·b, 1)` isolates
/// the amortization win of batching (experiment E11).
pub fn batched_pairs_throughput(
    q: &dyn DynQueue,
    threads: usize,
    rounds_per_thread: u64,
    batch: usize,
) -> WorkloadResult {
    assert!(threads <= q.threads());
    assert!(batch > 0, "batch must be positive");
    // Every worker must be able to finish its in-flight batch without any
    // other worker dequeuing, or the workload can wedge with all workers
    // stuck mid-batch on a full queue.
    assert!(
        threads * batch <= q.capacity() - q.capacity() / 2,
        "threads × batch must fit in the post-prefill free space"
    );
    for i in 0..(q.capacity() / 2) as u64 {
        assert!(q.enqueue(0, 1 + i), "pre-fill failed");
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let q = &*q;
            s.spawn(move || {
                // Token generation and buffers live outside the measured
                // per-element path: a per-thread counter and reused
                // vectors, so the B = 1 column pays no per-element
                // harness cost the B = 32 column amortizes — the speedup
                // isolates the queue's batch path, not the driver.
                let mut next = 1_000_000 + tid as u64 * rounds_per_thread * batch as u64;
                let mut vs = vec![0u64; batch];
                let mut buf = Vec::with_capacity(batch);
                for _ in 0..rounds_per_thread {
                    for slot in vs.iter_mut() {
                        *slot = next;
                        next += 1;
                    }
                    let mut sent = 0;
                    while sent < batch {
                        let n = q.enqueue_many(tid, &vs[sent..]);
                        sent += n;
                        if n == 0 {
                            std::thread::yield_now();
                        }
                    }
                    let mut got = 0;
                    while got < batch {
                        buf.clear();
                        let n = q.dequeue_many(tid, batch - got, &mut buf);
                        got += n;
                        if n == 0 {
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    WorkloadResult {
        ops: 2 * threads as u64 * rounds_per_thread * batch as u64,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Print the batched-vs-single comparison table shared by
/// `throughput_table` (E10d) and `shard_sweep` (E11b): for each kind,
/// move `elems_per_thread` elements per thread through the pairs
/// workload once with `B = 1` and once with `B = batch`, and report the
/// speedup. One implementation so the two published tables cannot drift
/// methodologically.
pub fn print_batch_win_table(
    kinds: &[crate::registry::QueueKind],
    c: usize,
    threads: usize,
    elems_per_thread: u64,
    batch: usize,
) {
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "queue",
        "single Mops",
        format!("B={batch} Mops"),
        "speedup"
    );
    for kind in kinds {
        let q1 = kind.build(c, threads);
        let single = batched_pairs_throughput(&*q1, threads, elems_per_thread, 1);
        let qb = kind.build(c, threads);
        let batched =
            batched_pairs_throughput(&*qb, threads, elems_per_thread / batch as u64, batch);
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>8.2}x",
            kind.name(),
            single.mops(),
            batched.mops(),
            batched.mops() / single.mops()
        );
    }
}

/// Producer/consumer transfer: `pairs` producers enqueue `items_per_producer`
/// fresh tokens each while `pairs` consumers drain until every item has been
/// observed.
pub fn producer_consumer_throughput(
    q: &dyn DynQueue,
    pairs: usize,
    items_per_producer: u64,
) -> WorkloadResult {
    assert!(2 * pairs <= q.threads());
    let total = pairs as u64 * items_per_producer;
    let consumed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let q = &*q;
            s.spawn(move || {
                let base = 1 + p as u64 * items_per_producer;
                for i in 0..items_per_producer {
                    while !q.enqueue(p, base + i) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for c in 0..pairs {
            let q = &*q;
            let consumed = &consumed;
            s.spawn(move || {
                let tid = pairs + c;
                // Exit once every produced item has been consumed by
                // someone; until then, keep draining.
                while consumed.load(Ordering::Relaxed) < total {
                    if q.dequeue(tid).is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    WorkloadResult {
        ops: 2 * total,
        secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QueueKind;

    #[test]
    fn pairs_runs_on_every_sound_queue() {
        for kind in crate::registry::ALL_KINDS {
            let q = kind.build(16, 2);
            if !q.sound() {
                continue; // the unsound models may corrupt under contention
            }
            let r = pairs_throughput(&*q, 2, 200);
            assert_eq!(r.ops, 800);
            assert!(r.secs > 0.0);
            assert!(r.mops() > 0.0);
        }
    }

    #[test]
    fn batched_pairs_runs_on_every_sound_queue() {
        for kind in crate::registry::ALL_KINDS {
            let q = kind.build(16, 2);
            if !q.sound() {
                continue;
            }
            let r = batched_pairs_throughput(&*q, 2, 50, 4);
            assert_eq!(r.ops, 800, "{}", q.name());
            assert!(r.mops() > 0.0);
            // Pairs preserve the pre-fill level.
            let mut out = Vec::new();
            assert_eq!(q.dequeue_many(0, 16, &mut out), 8, "{}", q.name());
        }
    }

    #[test]
    fn batched_pairs_batch_one_equals_single_path_ops() {
        let q = crate::registry::QueueKind::ShardedOptimal.build(16, 2);
        let r = batched_pairs_throughput(&*q, 1, 100, 1);
        assert_eq!(r.ops, 200);
    }

    #[test]
    fn producer_consumer_conserves_count() {
        let q = QueueKind::Optimal.build(8, 4);
        let r = producer_consumer_throughput(&*q, 2, 500);
        assert_eq!(r.ops, 2000);
        // Queue drained exactly.
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn pairs_leaves_queue_at_prefill_level() {
        let q = QueueKind::Vyukov.build(16, 2);
        let r = pairs_throughput(&*q, 1, 100);
        assert_eq!(r.ops, 200);
        // Pre-fill was C/2 = 8; pairs preserve the level.
        let mut n = 0;
        while q.dequeue(0).is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
