//! The **naive constant-overhead queue** — the design the paper's lower
//! bound proves impossible.
//!
//! This is Listing 2 with the versioned nulls stripped: a pre-allocated
//! array of `C` slots, two positioning counters, CAS everywhere, and a
//! single unversioned `⊥`. Its memory overhead is Θ(1) — exactly the
//! footprint practitioners keep trying to achieve (paper §1, "Practical
//! impact") — and it is **not linearizable**:
//!
//! * A thread poised on `CAS(&a[i], ⊥, e)` can fire a full round later and
//!   insert its element into the *middle* of the queue (the paper's
//!   Figure 3 scenario), after which the tail counter is driven past
//!   positions that never received an element and the full/empty equality
//!   checks are bypassed entirely.
//! * A thread poised on `CAS(&a[i], v, ⊥)` can, once the value `v` is
//!   re-enqueued into the same slot (values may repeat —
//!   value-independence!), steal it from the middle, violating FIFO.
//!
//! Both executions are constructed deterministically in `bq-sim`
//! (experiments E4/E8) and certified non-linearizable by the history
//! checker. The type is exported for those experiments and for the overhead
//! tables; it must not be used as a correct queue, which is the entire point
//! of the paper.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::queue::{ConcurrentQueue, Full};
use crate::token::{is_token, MAX_TOKEN, NULL};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// The ABA-unsound constant-overhead bounded queue (see module docs).
///
/// Overhead: two 8-byte counters — the Θ(1) the lower bound forbids for a
/// *correct* queue.
pub struct NaiveQueue {
    slots: Box<[AtomicU64]>,
    tail: AtomicU64,
    head: AtomicU64,
}

/// `NaiveQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveHandle;

impl NaiveQueue {
    /// Create a queue of capacity `c > 0`.
    pub fn with_capacity(c: usize) -> Self {
        assert!(c > 0, "capacity must be positive");
        NaiveQueue {
            slots: (0..c).map(|_| AtomicU64::new(NULL)).collect(),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
        }
    }
}

impl ConcurrentQueue for NaiveQueue {
    type Handle = NaiveHandle;

    fn register(&self) -> NaiveHandle {
        NaiveHandle
    }

    fn enqueue(&self, _h: &mut NaiveHandle, v: u64) -> Result<(), Full> {
        assert!(is_token(v), "naive queue tokens are non-zero 63-bit words");
        let c = self.slots.len() as u64;
        loop {
            let t = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if t == h + c {
                return Err(Full(v));
            }
            let i = (t % c) as usize;
            let done = self.slots[i]
                .compare_exchange(NULL, v, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            let _ = self
                .tail
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Ok(());
            }
        }
    }

    fn dequeue(&self, _h: &mut NaiveHandle) -> Option<u64> {
        let c = self.slots.len() as u64;
        loop {
            let t = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            let e = self.slots[(h % c) as usize].load(Ordering::SeqCst);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if t == h {
                return None;
            }
            let i = (h % c) as usize;
            let done = e != NULL
                && self.slots[i]
                    .compare_exchange(e, NULL, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok();
            let _ = self
                .head
                .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Some(e);
            }
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn max_token(&self) -> u64 {
        MAX_TOKEN
    }

    fn len(&self) -> usize {
        let t = self.tail.load(Ordering::SeqCst);
        let h = self.head.load(Ordering::SeqCst);
        t.saturating_sub(h) as usize
    }
}

impl MemoryFootprint for NaiveQueue {
    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown::with_elements(self.slots.len() * 8).add(
            "head + tail counters",
            16,
            OverheadClass::Counters,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(c: usize) -> (NaiveQueue, NaiveHandle) {
        (NaiveQueue::with_capacity(c), NaiveHandle)
    }

    #[test]
    fn sequential_fifo() {
        let (q, mut h) = q(4);
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn sequential_wraparound() {
        let (q, mut h) = q(3);
        for round in 0..50u64 {
            for i in 0..3 {
                q.enqueue(&mut h, 1 + round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.dequeue(&mut h), Some(1 + round * 3 + i));
            }
        }
    }

    #[test]
    fn overhead_is_constant() {
        let small = NaiveQueue::with_capacity(8);
        let large = NaiveQueue::with_capacity(1 << 14);
        assert_eq!(small.overhead_bytes(), 16);
        assert_eq!(large.overhead_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_null_token() {
        let (q, mut h) = q(2);
        let _ = q.enqueue(&mut h, 0);
    }
}
