//! Property-based tests for the zero-copy grant data path (DESIGN.md
//! §12): arbitrary interleavings of classic move operations
//! (`enqueue`/`dequeue`) with reserve/commit write grants — including
//! aborted ones — and read grants, checked step by step against a
//! `VecDeque` oracle.
//!
//! Two queues under test:
//!
//! * `SeqRingQueue` (the single-threaded ring): grants are pure cursor
//!   arithmetic, and `Full`/`None` reports are exact, so the oracle
//!   comparison is total;
//! * `VyukovQueue` (the concurrent ring): a dropped write grant *aborts*
//!   its slots (seq jumps a full round) and dequeues skip them, so
//!   aborted slots transiently occupy capacity — the oracle checks
//!   values and order exactly but treats `Full` as advisory.
//!
//! Both runs end with a full drain, so every sequence also proves
//! conservation: exactly the committed values come out, in FIFO order,
//! and aborted grants leak nothing.

use std::collections::VecDeque;

use membq::baselines::VyukovQueue;
use membq::core::{ConcurrentQueue, SeqRingQueue};
use proptest::prelude::*;

/// Smoke-sized case counts under `MEMBQ_SMOKE=1` (CI short path).
fn cases(full: u32) -> u32 {
    let smoke = std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke {
        (full / 4).max(4)
    } else {
        full
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Classic move enqueue of one fresh token.
    Enq,
    /// Classic move dequeue.
    Deq,
    /// Reserve up to `ask` slots, fill and commit the first
    /// `min(commit, granted)` of them (the rest of the run aborts).
    Grant { ask: usize, commit: usize },
    /// Reserve up to `ask` slots and drop the grant without committing.
    GrantAbort { ask: usize },
    /// Read up to `ask` elements in place, then consume a prefix.
    Read { ask: usize, release: usize },
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            Just(Op::Enq),
            Just(Op::Deq),
            (1usize..6, 0usize..6).prop_map(|(ask, commit)| Op::Grant { ask, commit }),
            (1usize..6).prop_map(|ask| Op::GrantAbort { ask }),
            (1usize..6, 1usize..6).prop_map(|(ask, release)| Op::Read { ask, release }),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// `SeqRingQueue`: grants interleaved with moves match the oracle
    /// exactly — including `Full`/empty reports and wrap-limited run
    /// lengths.
    #[test]
    fn seq_ring_grants_match_oracle(cap in 2usize..17, ops in op_strategy()) {
        let mut q = SeqRingQueue::with_capacity(cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 1u64;
        for op in &ops {
            match *op {
                Op::Enq => {
                    match q.enqueue(next) {
                        Ok(()) => {
                            prop_assert!(model.len() < cap);
                            model.push_back(next);
                        }
                        Err(_) => prop_assert_eq!(model.len(), cap),
                    }
                    next += 1;
                }
                Op::Deq => {
                    prop_assert_eq!(q.dequeue(), model.pop_front());
                }
                Op::Grant { ask, commit } => match q.try_reserve(ask) {
                    Some(mut g) => {
                        let run = g.len();
                        prop_assert!(run >= 1 && run <= ask);
                        prop_assert!(model.len() + run <= cap);
                        let k = commit.min(run);
                        for i in 0..k {
                            g.uninit_slice()[i].write(next + i as u64);
                        }
                        g.commit(k);
                        for i in 0..k {
                            model.push_back(next + i as u64);
                        }
                        next += k as u64;
                    }
                    // Reserve refuses only an empty run: zero ask or full.
                    None => prop_assert!(ask == 0 || model.len() == cap),
                },
                Op::GrantAbort { ask } => {
                    if let Some(g) = q.try_reserve(ask) {
                        let _ = g; // abort: nothing published, nothing leaked
                    }
                    prop_assert_eq!(q.len(), model.len());
                }
                Op::Read { ask, release } => match q.try_read(ask) {
                    Some(g) => {
                        let run = g.len();
                        prop_assert!(run >= 1 && run <= ask && run <= model.len());
                        for (i, v) in g.slice().iter().enumerate() {
                            prop_assert_eq!(*v, model[i]);
                        }
                        let k = release.min(run);
                        g.release(k);
                        for _ in 0..k {
                            model.pop_front();
                        }
                    }
                    None => prop_assert!(ask == 0 || model.is_empty()),
                },
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Conservation: drain everything, in order.
        while let Some(v) = q.dequeue() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// `VyukovQueue`: same interleavings on the concurrent ring. Aborted
    /// write grants burn their slots for one round (capacity is
    /// transiently reduced, so `Full` is advisory), but every value
    /// committed is delivered exactly once, in FIFO order, and dequeues
    /// skip aborted slots without losing anything.
    #[test]
    fn vyukov_grants_match_oracle(cap in 2usize..17, ops in op_strategy()) {
        let q = VyukovQueue::with_capacity(cap);
        let mut h = q.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 1u64;
        for op in &ops {
            match *op {
                Op::Enq => {
                    if q.enqueue(&mut h, next).is_ok() {
                        model.push_back(next);
                    }
                    next += 1;
                }
                Op::Deq => {
                    // None ⟹ genuinely empty: dequeues skip aborted
                    // slots, so a published value can't hide behind one.
                    prop_assert_eq!(q.dequeue(&mut h), model.pop_front());
                }
                Op::Grant { ask, commit } => {
                    if let Some(mut g) = q.try_reserve(ask) {
                        let run = g.len();
                        prop_assert!(run >= 1 && run <= ask);
                        let k = commit.min(run);
                        for i in 0..k {
                            g.uninit_slice()[i].write(next + i as u64);
                        }
                        g.commit(k); // publishes k, aborts run - k
                        for i in 0..k {
                            model.push_back(next + i as u64);
                        }
                        next += k as u64;
                    }
                }
                Op::GrantAbort { ask } => {
                    if let Some(g) = q.try_reserve(ask) {
                        drop(g); // aborts the whole run
                    }
                }
                Op::Read { ask, .. } => match q.try_read(ask) {
                    Some(g) => {
                        let run = g.len();
                        prop_assert!(run >= 1 && run <= ask && run <= model.len());
                        for (i, v) in g.slice().iter().enumerate() {
                            prop_assert_eq!(*v, model[i]);
                        }
                        g.release(); // the read grant consumes its whole run
                        for _ in 0..run {
                            model.pop_front();
                        }
                    }
                    None => prop_assert!(ask == 0 || model.is_empty()),
                },
            }
        }
        // Conservation: exactly the committed values drain out, in order;
        // aborted grants left no tokens and no permanently wedged slots.
        while let Some(v) = q.dequeue(&mut h) {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// After any interleaving, a drained Vyukov ring is reusable at full
    /// capacity — aborted slots recycle after head passes them, they are
    /// not lost forever.
    #[test]
    fn vyukov_aborts_recycle_capacity(cap in 2usize..9, ops in op_strategy()) {
        let q = VyukovQueue::with_capacity(cap);
        let mut h = q.register();
        let mut next = 1u64;
        for op in &ops {
            match *op {
                Op::Enq => {
                    let _ = q.enqueue(&mut h, next);
                    next += 1;
                }
                Op::Deq => {
                    q.dequeue(&mut h);
                }
                Op::Grant { ask, commit } => {
                    if let Some(mut g) = q.try_reserve(ask) {
                        let k = commit.min(g.len());
                        for i in 0..k {
                            g.uninit_slice()[i].write(next + i as u64);
                        }
                        g.commit(k);
                        next += k as u64;
                    }
                }
                Op::GrantAbort { ask } => {
                    if let Some(g) = q.try_reserve(ask) {
                        drop(g);
                    }
                }
                Op::Read { ask, .. } => {
                    if let Some(g) = q.try_read(ask) {
                        g.release();
                    }
                }
            }
        }
        while q.dequeue(&mut h).is_some() {}
        // Full capacity is available again.
        for i in 0..cap as u64 {
            prop_assert!(q.enqueue(&mut h, 1000 + i).is_ok(), "slot {} of {}", i, cap);
        }
        prop_assert!(q.enqueue(&mut h, 9999).is_err());
        for i in 0..cap as u64 {
            prop_assert_eq!(q.dequeue(&mut h), Some(1000 + i));
        }
    }
}
