//! Offline stand-in for `serde_derive`: a dependency-free
//! `#[derive(Serialize)]` that handles plain structs with named fields
//! (the only shape this workspace serializes). Generates an impl of the
//! shim `serde::Serialize` trait that writes a JSON object field by field.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut name: Option<String> = None;
    let mut fields: Vec<String> = Vec::new();

    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                other => panic!("derive(Serialize) shim: expected struct name, got {other:?}"),
            },
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive(Serialize) shim does not support generic structs");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = parse_named_fields(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive(Serialize) shim does not support tuple structs");
            }
            _ => {}
        }
    }

    let name = name.expect("derive(Serialize) shim: no struct found");
    assert!(
        !fields.is_empty(),
        "derive(Serialize) shim: struct {name} has no named fields"
    );

    let mut body = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');");

    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    );
    impl_src
        .parse()
        .expect("derive(Serialize) shim: generated code failed to parse")
}

/// Extract field names from the token stream of a `{ ... }` fields block.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Optional `pub(...)` restriction group.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("derive(Serialize) shim: unexpected token {other:?} in fields")
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive(Serialize) shim: expected `:` after {name}, got {other:?}"),
        }
        fields.push(name);
        // Skip the type tokens up to the next top-level comma (tracking
        // angle-bracket depth so `Map<K, V>` commas don't split fields).
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}
