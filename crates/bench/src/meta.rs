//! Run metadata stamped into every `BENCH_*.json` artifact, so archived
//! CI artifacts form a **performance trajectory**: each measurement is
//! attributable to a commit, a host width, and a workload size.
//!
//! Numbers without provenance rot instantly — a table produced under
//! `MEMBQ_SMOKE=1` on a 1-core CI runner must never be compared against
//! a full-size run on a wide box as if they were the same experiment.
//! Stamping `git_sha`/`smoke`/`host_cores` into the artifact makes the
//! comparison keys part of the data.

use serde::Serialize;

/// Provenance for one benchmark-binary run.
#[derive(Serialize, Clone, Debug)]
pub struct RunMeta {
    /// Short commit hash of the workspace (`git rev-parse --short HEAD`,
    /// falling back to `GITHUB_SHA`, then `"unknown"` outside a repo).
    pub git_sha: String,
    /// Whether the run used the tiny `MEMBQ_SMOKE=1` workload sizes —
    /// smoke numbers check plumbing, not performance.
    pub smoke: bool,
    /// `available_parallelism` on the host. On a 1-core host every
    /// multi-worker column measures contention under preemption, not
    /// parallel speedup (the tables repeat this caveat inline).
    pub host_cores: usize,
}

/// The shape of every `BENCH_*.json` file: provenance + rows. (Manual
/// `Serialize` impl: the vendored derive handles non-generic structs
/// only.)
pub struct BenchDoc<'a, R: Serialize> {
    /// Run provenance.
    pub meta: &'a RunMeta,
    /// The experiment's measurements.
    pub rows: &'a [R],
}

impl<R: Serialize> Serialize for BenchDoc<'_, R> {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"meta\":");
        self.meta.write_json(out);
        out.push_str(",\"rows\":");
        self.rows.write_json(out);
        out.push('}');
    }
}

/// The workspace-wide smoke-mode convention: `MEMBQ_SMOKE` set, non-empty
/// and not `"0"`.
pub fn smoke_mode() -> bool {
    std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn git_sha() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    "unknown".to_string()
}

/// Collect this run's provenance (reads the smoke convention itself).
pub fn run_meta() -> RunMeta {
    RunMeta {
        git_sha: git_sha(),
        smoke: smoke_mode(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Serialize `{meta, rows}` to `path` (pretty JSON, the artifact format).
pub fn write_bench_json<R: Serialize>(path: &str, meta: &RunMeta, rows: &[R]) {
    let doc = BenchDoc { meta, rows };
    let json = serde_json::to_string_pretty(&doc).expect("serialize bench doc");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Append one compact line to `BENCH_trajectory.jsonl` — the long-lived
/// per-commit summary CI archives next to the full tables. `summary` is
/// the experiment's headline numbers (small, hand-picked).
pub fn append_trajectory(meta: &RunMeta, experiment: &str, summary: &[(&str, f64)]) {
    use std::io::Write;
    let mut line = String::from("{\"git_sha\":");
    meta.git_sha.write_json(&mut line);
    line.push_str(",\"smoke\":");
    meta.smoke.write_json(&mut line);
    line.push_str(",\"host_cores\":");
    meta.host_cores.write_json(&mut line);
    line.push_str(",\"experiment\":");
    experiment.write_json(&mut line);
    for (key, v) in summary {
        line.push(',');
        serde::escape_str(key, &mut line);
        line.push(':');
        v.write_json(&mut line);
    }
    line.push('}');
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_trajectory.jsonl")
        .expect("open BENCH_trajectory.jsonl");
    writeln!(f, "{line}").expect("append BENCH_trajectory.jsonl");
}

// -- minimal JSON field extraction ---------------------------------------
//
// The vendored serde shim serializes only, so the few places that read
// bench artifacts back (the E17 two-pass comparison, `trajectory_check`)
// extract flat `"key": value` fields textually. Good enough for the
// machine-written one-level documents these tools consume; not a JSON
// parser.

/// First numeric value for `key` in a flat JSON text.
pub fn json_f64(text: &str, key: &str) -> Option<f64> {
    let rest = json_raw(text, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First string value for `key` in a flat JSON text (no escape handling:
/// the writers only emit plain identifiers here).
pub fn json_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_raw(text, key)?.strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// First boolean value for `key` in a flat JSON text.
pub fn json_bool(text: &str, key: &str) -> Option<bool> {
    let rest = json_raw(text, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn json_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    Some(text[at..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_extraction_reads_what_the_writers_emit() {
        let line =
            "{\"git_sha\":\"abc\",\"smoke\":true,\"experiment\":\"E17\",\"overhead_pct\":-1.25e0}";
        assert_eq!(json_str(line, "experiment"), Some("E17"));
        assert_eq!(json_bool(line, "smoke"), Some(true));
        assert_eq!(json_f64(line, "overhead_pct"), Some(-1.25));
        assert_eq!(json_f64(line, "missing"), None);
        assert_eq!(json_str(line, "smoke"), None, "non-string value");
    }

    #[test]
    fn meta_has_all_provenance_fields() {
        let m = run_meta();
        assert!(!m.git_sha.is_empty());
        assert!(m.host_cores >= 1);
        // In this test environment the workspace is a git repo, so the
        // sha must be real (hex), not the fallback.
        assert!(
            m.git_sha.chars().all(|c| c.is_ascii_hexdigit()),
            "expected a commit hash, got {}",
            m.git_sha
        );
    }

    #[test]
    fn bench_doc_serializes_meta_and_rows() {
        let m = RunMeta {
            git_sha: "abc123".into(),
            smoke: true,
            host_cores: 1,
        };
        let doc = BenchDoc {
            meta: &m,
            rows: &[1.5f64, 2.0],
        };
        let s = serde_json::to_string(&doc).unwrap();
        assert_eq!(
            s,
            "{\"meta\":{\"git_sha\":\"abc123\",\"smoke\":true,\"host_cores\":1},\"rows\":[1.5,2]}"
        );
    }
}
