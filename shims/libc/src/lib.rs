//! Offline stand-in for the `libc` crate: only the raw OS surface the
//! `bq-shm` crate needs — shared-memory mapping (`mmap`/`munmap`/
//! `ftruncate`), process control (`fork`/`waitpid`/`kill`/`getpid`/
//! `_exit`) and `errno` access. Declarations match the real crate's
//! Linux definitions, so swapping in the real `libc` is a one-line
//! manifest edit (DESIGN.md §6).
//!
//! Everything here is a direct FFI declaration against the platform C
//! library the Rust standard library already links; the shim adds no
//! code of its own beyond the `WIF*` status macros, which glibc defines
//! as C macros and the real `libc` crate re-implements as `const fn`s
//! exactly as done here.

#![deny(missing_docs)]
#![allow(non_camel_case_types)]
// The W* status macros keep their C names, as in the real crate.
#![allow(non_snake_case)]

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long`.
pub type c_long = i64;
/// C `void` (opaque).
pub type c_void = core::ffi::c_void;
/// POSIX `size_t`.
pub type size_t = usize;
/// POSIX `ssize_t`.
pub type ssize_t = isize;
/// POSIX `off_t` (64-bit on the supported targets).
pub type off_t = i64;
/// POSIX `pid_t`.
pub type pid_t = i32;
/// POSIX `time_t` (64-bit on the supported targets).
pub type time_t = i64;
/// POSIX `clockid_t` (Linux: a plain int).
pub type clockid_t = c_int;

/// `struct timespec` — seconds + nanoseconds, as `clock_gettime` and
/// `nanosleep` consume it.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `0..1_000_000_000`.
    pub tv_nsec: c_long,
}

/// `PROT_READ`: pages may be read.
pub const PROT_READ: c_int = 0x1;
/// `PROT_WRITE`: pages may be written.
pub const PROT_WRITE: c_int = 0x2;
/// `MAP_SHARED`: updates are visible to other processes mapping the
/// same region — the whole point of this crate's existence.
pub const MAP_SHARED: c_int = 0x0001;
/// `MAP_ANONYMOUS`: not backed by a file; combined with `MAP_SHARED`
/// the region is inherited — still shared, not copied — across `fork`.
pub const MAP_ANONYMOUS: c_int = 0x0020;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// `SIGKILL`.
pub const SIGKILL: c_int = 9;
/// `ESRCH`: no such process (the liveness probe's "dead" answer).
pub const ESRCH: c_int = 3;
/// `waitpid` flag: return immediately if no child has exited.
pub const WNOHANG: c_int = 1;
/// `CLOCK_MONOTONIC`: the non-settable since-boot clock the heartbeat
/// lease comparisons use (consistent across processes on one machine).
pub const CLOCK_MONOTONIC: clockid_t = 1;

extern "C" {
    /// Map memory. See `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmap memory. See `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Resize a file. See `ftruncate(2)`.
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    /// Create a child process. See `fork(2)`.
    pub fn fork() -> pid_t;
    /// Wait for a child. See `waitpid(2)`.
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    /// Send a signal (`sig = 0` probes existence). See `kill(2)`.
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// Calling process id. See `getpid(2)`.
    pub fn getpid() -> pid_t;
    /// Exit without running atexit handlers or flushing stdio — the
    /// only correct way out of a forked child of a threaded parent.
    pub fn _exit(status: c_int) -> !;
    /// Yield the CPU. See `sched_yield(2)`.
    pub fn sched_yield() -> c_int;
    /// Read a clock. See `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    /// High-resolution sleep (allocation-free, fork-child safe). See
    /// `nanosleep(2)`.
    pub fn nanosleep(req: *const timespec, rem: *mut timespec) -> c_int;
    /// Address of the thread-local `errno`.
    #[link_name = "__errno_location"]
    pub fn __errno_location() -> *mut c_int;
}

/// Did the child exit normally? (glibc's `WIFEXITED`.)
#[must_use]
pub const fn WIFEXITED(status: c_int) -> bool {
    (status & 0x7f) == 0
}

/// Exit code of a normally-exited child (glibc's `WEXITSTATUS`).
#[must_use]
pub const fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

/// Was the child terminated by a signal? (glibc's `WIFSIGNALED`.)
#[must_use]
pub const fn WIFSIGNALED(status: c_int) -> bool {
    ((status & 0x7f) + 1) >> 1 > 0
}

/// Terminating signal number (glibc's `WTERMSIG`).
#[must_use]
pub const fn WTERMSIG(status: c_int) -> c_int {
    status & 0x7f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_shared_mapping_round_trips() {
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            let w = p as *mut u64;
            w.write(0xDEAD_BEEF);
            assert_eq!(w.read(), 0xDEAD_BEEF);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn self_is_alive_per_kill_probe() {
        unsafe {
            assert_eq!(kill(getpid(), 0), 0);
        }
    }

    #[test]
    fn monotonic_clock_advances() {
        let read = || unsafe {
            let mut ts = timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            assert_eq!(clock_gettime(CLOCK_MONOTONIC, &mut ts), 0);
            ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
        };
        let a = read();
        let req = timespec {
            tv_sec: 0,
            tv_nsec: 1_000_000, // 1 ms
        };
        unsafe {
            nanosleep(&req, core::ptr::null_mut());
        }
        let b = read();
        assert!(b > a, "CLOCK_MONOTONIC moved across a nanosleep");
    }

    #[test]
    fn wait_macros_decode_glibc_layout() {
        // status 0x0900 = exited with code 9; 0x0009 = killed by SIGKILL.
        assert!(WIFEXITED(0x0900));
        assert_eq!(WEXITSTATUS(0x0900), 9);
        assert!(!WIFSIGNALED(0x0900));
        assert!(WIFSIGNALED(0x0009));
        assert_eq!(WTERMSIG(0x0009), SIGKILL);
        assert!(!WIFEXITED(0x0009));
    }
}
