//! A three-stage stream-processing pipeline over **batched sharded
//! queues** — the scale layer (DESIGN.md §8) applied to the DPDK/SPDK
//! style usage the paper's §1 cites.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```
//!
//! parse → checksum → aggregate, one thread per stage; each pair of
//! stages is connected by a `ShardedQueue<OptimalQueue>` and packets move
//! in `BATCH`-sized runs through `enqueue_many`/`dequeue_many`. Compared
//! to the old SPSC-ring version this trades strict global ordering for a
//! structure that admits *any* number of producers/consumers per stage
//! (per-shard FIFO, pool linearizability), while the batch runs keep the
//! per-packet overhead amortized. The aggregate stage therefore verifies
//! **exactly-once delivery** with a bitmap rather than strict order —
//! exactly the contract the queue documents.

use membq::core::{ConcurrentQueue, OptimalQueue, ShardedQueue};
use membq::prelude::MemoryFootprint;

const RING: usize = 256;
const SHARDS: usize = 4;
const BATCH: usize = 32;

/// Tiny-workload mode for the example smoke test (`MEMBQ_SMOKE=1`);
/// unset, empty, or `"0"` means full size. Same convention in every
/// heavy example.
fn smoke_mode() -> bool {
    std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Packet count: full-size by default, tiny under smoke mode (the CI
/// run that keeps examples from rotting).
fn packet_count() -> u64 {
    if smoke_mode() {
        5_000
    } else {
        200_000
    }
}

/// Push a whole batch, retrying until every element is accepted.
fn push_all(
    q: &ShardedQueue<OptimalQueue>,
    h: &mut <ShardedQueue<OptimalQueue> as ConcurrentQueue>::Handle,
    vs: &[u64],
) {
    let mut sent = 0;
    while sent < vs.len() {
        let n = q.enqueue_many(h, &vs[sent..]);
        sent += n;
        if n == 0 {
            std::thread::yield_now();
        }
    }
}

/// Stage 1: "parse" — tag each raw packet id with a length field and emit
/// in batch runs.
fn parse(packets: u64, q: &ShardedQueue<OptimalQueue>) {
    let mut h = q.register();
    let mut batch = Vec::with_capacity(BATCH);
    for id in 1..=packets {
        // Packed "packet": id in low 48 bits, synthetic length above.
        let len = 64 + (id * 37) % 1400;
        batch.push((len << 48) | id);
        if batch.len() == BATCH || id == packets {
            push_all(q, &mut h, &batch);
            batch.clear();
        }
    }
}

/// Stage 2: "checksum" — drain a batch, fold a cheap hash over each
/// packet word, forward the batch.
fn checksum(inq: &ShardedQueue<OptimalQueue>, outq: &ShardedQueue<OptimalQueue>, count: u64) {
    let mut hi = inq.register();
    let mut ho = outq.register();
    let mut done = 0u64;
    let mut buf = Vec::with_capacity(BATCH);
    let mut out = Vec::with_capacity(BATCH);
    while done < count {
        buf.clear();
        let n = inq.dequeue_many(&mut hi, BATCH, &mut buf);
        if n == 0 {
            std::thread::yield_now();
            continue;
        }
        out.clear();
        for &pkt in &buf {
            let sum = pkt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_add(pkt >> 48);
            // Keep 15 checksum bits with the id: the record must stay a
            // valid 63-bit token (OptimalQueue reserves the top bit).
            let id = pkt & ((1 << 48) - 1);
            out.push((sum & 0x7FFF) << 48 | id);
        }
        push_all(outq, &mut ho, &out);
        done += n as u64;
    }
}

fn main() {
    // Stage links: each admits both endpoint threads (T = 2 per link).
    let q1 = ShardedQueue::<OptimalQueue>::optimal(RING, SHARDS, 2);
    let q2 = ShardedQueue::<OptimalQueue>::optimal(RING, SHARDS, 2);
    println!(
        "stage links: two sharded queues ({SHARDS} shards × {} slots), \
         {} bytes overhead each (Θ(S·T), independent of depth)",
        RING / SHARDS,
        q1.overhead_bytes()
    );

    let packets = packet_count();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| parse(packets, &q1));
        s.spawn(|| checksum(&q1, &q2, packets));

        // Stage 3 (this thread): aggregate with an exactly-once bitmap —
        // sharding relaxes global order, so order is not asserted.
        let mut h = q2.register();
        let mut seen = vec![false; packets as usize + 1];
        let mut done = 0u64;
        let mut checksum_mix = 0u64;
        let mut buf = Vec::with_capacity(BATCH);
        while done < packets {
            buf.clear();
            let n = q2.dequeue_many(&mut h, BATCH, &mut buf);
            if n == 0 {
                std::thread::yield_now();
                continue;
            }
            for &rec in &buf {
                let id = (rec & ((1 << 48) - 1)) as usize;
                assert!(!seen[id], "packet {id} delivered twice");
                seen[id] = true;
                checksum_mix ^= rec >> 48;
            }
            done += n as u64;
        }
        assert!(
            seen[1..].iter().all(|&b| b),
            "every packet delivered exactly once"
        );
        let secs = start.elapsed().as_secs_f64();
        println!(
            "processed {packets} packets through 3 stages in {:.3}s \
             ({:.2} M packets/s end-to-end), checksum mix {checksum_mix:#06x}",
            secs,
            packets as f64 / secs / 1e6
        );
    });
    println!(
        "exactly-once delivery verified across both hops; batches of {BATCH} \
         amortize the per-packet queue cost (per-shard FIFO, pool semantics)"
    );
}
