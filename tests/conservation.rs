//! Concurrent conservation tests: under multi-producer/multi-consumer
//! load, every sound queue must deliver each enqueued token exactly once
//! (no loss, no duplication) and preserve per-producer FIFO order.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use membq::bench_registry::{DynQueue, QueueKind, ALL_KINDS};

fn mpmc_conservation(q: Arc<Box<dyn DynQueue>>, producers: usize, consumers: usize, per: u64) {
    let total = per * producers as u64;
    let consumed = Arc::new(AtomicU64::new(0));
    let mut outputs: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|s| {
        for p in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let base = 1 + p as u64 * per;
                for i in 0..per {
                    while !q.enqueue(p, base + i) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            handles.push(s.spawn(move || {
                let tid = producers + c;
                let mut got = Vec::new();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    match q.dequeue(tid) {
                        Some(v) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        }
                        None if done => break,
                        None => std::thread::yield_now(),
                    }
                }
                got
            }));
        }
        outputs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    // Exactly-once delivery.
    let mut seen = HashSet::new();
    for out in &outputs {
        for &v in out {
            assert!(seen.insert(v), "{}: duplicate token {v}", q.name());
        }
    }
    assert_eq!(seen.len() as u64, total, "{}: tokens lost", q.name());

    // Per-producer FIFO within each consumer's stream (a weaker but
    // schedule-independent consequence of linearizability).
    for out in &outputs {
        let mut last = vec![0u64; producers];
        for &v in out {
            let p = ((v - 1) / per) as usize;
            assert!(
                v > last[p],
                "{}: consumer saw producer {p}'s tokens out of order",
                q.name()
            );
            last[p] = v;
        }
    }
    assert_eq!(q.dequeue(0), None, "{}: residue after conservation", q.name());
}

#[test]
fn mpmc_conservation_all_sound_queues() {
    for kind in ALL_KINDS {
        let q = kind.build(16, 4);
        if !q.sound() {
            continue;
        }
        mpmc_conservation(Arc::new(q), 2, 2, 2_000);
    }
}

#[test]
fn mpmc_conservation_tiny_capacity_high_churn() {
    // Capacity 2 maximizes wraparound pressure: every slot is reused
    // thousands of times.
    for kind in [
        QueueKind::Distinct,
        QueueKind::Dcss,
        QueueKind::Optimal,
        QueueKind::Segment,
        QueueKind::LlSc,
        QueueKind::Vyukov,
    ] {
        let q = kind.build(2, 4);
        mpmc_conservation(Arc::new(q), 2, 2, 1_500);
    }
}

#[test]
fn spsc_strict_fifo_all_sound_queues() {
    for kind in ALL_KINDS {
        let q = kind.build(8, 2);
        if !q.sound() {
            continue;
        }
        let q = Arc::new(q);
        let n = 4_000u64;
        std::thread::scope(|s| {
            let qp = Arc::clone(&q);
            s.spawn(move || {
                for v in 1..=n {
                    while !qp.enqueue(0, v) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut expect = 1u64;
            while expect <= n {
                match q.dequeue(1) {
                    Some(v) => {
                        assert_eq!(v, expect, "{}: SPSC order broken", q.name());
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    }
}

#[test]
fn repeated_value_storm_on_value_independent_queues() {
    // Every producer enqueues the SAME token: the regime where Listing 2's
    // assumption fails but the value-independent designs must stay exact.
    for kind in [
        QueueKind::Dcss,
        QueueKind::Optimal,
        QueueKind::Segment,
        QueueKind::LlSc,
        QueueKind::Vyukov,
        QueueKind::Scq,
        QueueKind::MutexRing,
        QueueKind::Crossbeam,
        QueueKind::Ms,
    ] {
        let q = Arc::new(kind.build(4, 3));
        let per = 2_500u64;
        std::thread::scope(|s| {
            for p in 0..2 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for _ in 0..per {
                        while !q.enqueue(p, 42) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut got = 0u64;
            while got < 2 * per {
                match q.dequeue(2) {
                    Some(v) => {
                        assert_eq!(v, 42, "{}", q.name());
                        got += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
        assert_eq!(q.dequeue(0), None, "{}: exact count", q.name());
    }
}
