//! The lower bound, live: watch the adversary of Theorem 3.12 construct a
//! non-linearizable execution against a constant-overhead queue — and fail
//! against the Θ(T)-overhead DCSS queue.
//!
//! ```text
//! cargo run --release --example adversary_demo
//! ```
//!
//! This is a narrated, single-scenario version of the full experiment
//! (`cargo run -p bq-bench --bin adversary`).

use membq::sim::algos::Flavor;
use membq::sim::{run_middle_steal, LinResult};

fn main() {
    println!("Theorem 3.12 says: an obstruction-free, linearizable, value-independent");
    println!("bounded queue over read/write/CAS cannot have O(1) memory overhead.");
    println!("Here is the execution that proves it for the natural O(1) design.\n");

    println!("Scenario (Figure 3, 'middle steal'):");
    println!("  1. enq(1), enq(7); deq() → 1                      [queue: 7]");
    println!("  2. thread B starts deq(), reads the 7, and is PAUSED");
    println!("     one instruction before CAS(a[1], 7, ⊥)          (poised, Def. 3.5)");
    println!("  3. main: deq() → 7; refill enq(11,12,13,7)        [queue: 11 12 13 7]");
    println!("     — the second 7 lands in slot 1 again (values may repeat!)");
    println!("  4. thread B resumes: its CAS sees 7 in slot 1 and SUCCEEDS.");
    println!("     B's dequeue returns 7 — stolen from the MIDDLE of the queue.\n");

    let naive = run_middle_steal(Flavor::Naive);
    println!("--- recorded history (naive Θ(1) queue) ---");
    print!("{}", naive.history.render());
    match naive.verdict {
        LinResult::NotLinearizable => {
            println!("checker verdict: NOT LINEARIZABLE ✗");
            println!("  (B returned 7 while 11,12,13 were older and still present —");
            println!("   no linearization order can explain that FIFO violation.)\n");
        }
        LinResult::Linearizable(_) => unreachable!("the construction must violate"),
    }

    println!("--- the same schedule against Listing 4 (DCSS, Θ(T) overhead) ---");
    let dcss = run_middle_steal(Flavor::Dcss);
    print!("{}", dcss.history.render());
    match dcss.verdict {
        LinResult::Linearizable(order) => {
            println!(
                "checker verdict: LINEARIZABLE ✓ (witness order of {} ops found)",
                order.len()
            );
            println!("  B's poised DCSS fails its counter comparison and B retries,");
            println!("  correctly dequeuing the head instead. The Θ(T) descriptors are");
            println!("  exactly the memory the lower bound says you must spend.");
        }
        LinResult::NotLinearizable => unreachable!("Listing 4 must survive"),
    }
}
