//! Simulator ports of the paper's counter-based queue algorithms.
//!
//! All three share the Figure 1 layout — `C` value-location slots plus
//! `head`/`tail` metadata counters — and the same operation skeleton
//! (snapshot, validate, slot update, counter help). They differ only in how
//! the slot update is protected:
//!
//! * [`naive`] — plain CAS against a single `⊥` (the unsound strawman);
//! * [`distinct`] — CAS against the round's versioned `⊥` (Listing 2);
//! * [`dcss`] — DCSS guarded by the positioning counter (Listing 4, with
//!   DCSS as a primitive; the descriptor machinery lives in `bq-dcss` for
//!   the real implementation).
//!
//! The shared skeleton lives in [`counter_queue`]; each algorithm is a
//! flavor of it.

pub mod counter_queue;
pub mod optimal_model;

pub use counter_queue::{dcss, distinct, naive, two_null, Flavor};
pub use optimal_model::{HelpMode, OptimalModel};
