//! Criterion bench for **E7/E10b**: the memory-optimal queue's operation
//! cost as a function of the thread bound `T`.
//!
//! Every operation of Listing 5 scans the `T`-slot announcement array
//! (`findOp`/`readElem`), so solo per-op cost grows with `T` — the time
//! price of memory optimality the paper's §3.6 highlights.
//!
//! Run: `cargo bench -p bq-bench --bench optimal`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bq_core::{ConcurrentQueue, OptimalQueue};

fn bench_optimal_vs_t(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("optimal_solo_pairs_vs_T");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for t in [1usize, 4, 16, 64] {
        let ops = 2_000u64;
        group.throughput(Throughput::Elements(2 * ops));
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let q = OptimalQueue::with_capacity_and_threads(1024, t);
            let mut h = q.register();
            b.iter(|| {
                for v in 1..=ops {
                    q.enqueue(&mut h, v).unwrap();
                    q.dequeue(&mut h).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_vs_t);
criterion_main!(benches);
