//! **Listing 4** — Θ(T) memory overhead via DCSS.
//!
//! `DCSS(&a[i], expected, new, &counter, expectedCounter)` atomically
//! updates a slot *only if the positioning counter has not moved*, which
//! eliminates the ABA hazard without versioned nulls or distinct elements:
//! a delayed slot update from an old round necessarily carries an old
//! counter expectation and fails the second comparison.
//!
//! The DCSS primitive is built from recyclable descriptors (see `bq-dcss`);
//! only `2·T` descriptors ever exist, so the queue's total overhead is
//! Θ(T) — matching the paper's lower bound, with the trade-off (paper §2.5)
//! that slots must be able to hold descriptor references, which costs the
//! top bit of the value domain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bq_dcss::DcssArena;

use crate::queue::{ConcurrentQueue, Full};
use crate::token::{is_token, MAX_TOKEN, NULL};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Bounded queue with Θ(T) overhead using DCSS (paper Listing 4).
///
/// The descriptor arena can be **shared between queues**
/// ([`DcssQueue::group`]), reproducing the paper's §3.5 "system-wide
/// overhead" remark: `k` queues of capacity `C` need only one Θ(T)
/// descriptor pool between them, so the per-queue overhead amortizes to
/// the two counters.
pub struct DcssQueue {
    slots: Box<[AtomicU64]>,
    tail: AtomicU64,
    head: AtomicU64,
    arena: Arc<DcssArena>,
}

/// Per-thread handle carrying the DCSS descriptor-pool thread id.
#[derive(Debug)]
pub struct DcssHandle {
    tid: usize,
}

impl DcssHandle {
    /// Handle on tid 0 without consuming a registration slot. Only sound
    /// under exclusive access (used by `BoxedQueue::drop`).
    pub(crate) fn exclusive() -> Self {
        DcssHandle { tid: 0 }
    }
}

impl DcssQueue {
    /// Create a queue of capacity `c` serving up to `max_threads`
    /// registered threads.
    pub fn with_capacity_and_threads(c: usize, max_threads: usize) -> Self {
        Self::with_shared_arena(c, Arc::new(DcssArena::new(max_threads)))
    }

    /// Create a queue over an existing (possibly shared) descriptor arena.
    ///
    /// A thread uses the same `tid` across every queue of the group, so
    /// the per-thread registration must be coordinated by the caller when
    /// sharing manually; [`DcssQueue::group`] does this for you.
    pub fn with_shared_arena(c: usize, arena: Arc<DcssArena>) -> Self {
        assert!(c > 0, "capacity must be positive");
        DcssQueue {
            slots: (0..c).map(|_| AtomicU64::new(NULL)).collect(),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            arena,
        }
    }

    /// Create `k` queues of capacity `c` sharing **one** Θ(T) descriptor
    /// arena — the paper's §3.5 system-wide overhead observation: total
    /// overhead is `O(T + k)` counters, not `O(k·T)`.
    pub fn group(k: usize, c: usize, max_threads: usize) -> Vec<Self> {
        let arena = Arc::new(DcssArena::new(max_threads));
        (0..k)
            .map(|_| Self::with_shared_arena(c, Arc::clone(&arena)))
            .collect()
    }

    /// Bytes of the shared arena (counted once per group).
    pub fn arena_bytes(&self) -> usize {
        self.arena.footprint_bytes()
    }

    /// Does this queue share its arena with others?
    pub fn arena_is_shared(&self) -> bool {
        Arc::strong_count(&self.arena) > 1
    }

    /// Number of threads the descriptor pool serves.
    pub fn max_threads(&self) -> usize {
        self.arena.max_threads()
    }
}

impl ConcurrentQueue for DcssQueue {
    type Handle = DcssHandle;

    fn register(&self) -> DcssHandle {
        // Ids come from the arena so they stay unique across every queue
        // sharing it. Note: a thread touching several queues of a group
        // holds one handle (and descriptor pair) per queue.
        DcssHandle {
            tid: self.arena.register_tid(),
        }
    }

    fn enqueue(&self, h: &mut DcssHandle, v: u64) -> Result<(), Full> {
        assert!(
            is_token(v),
            "DCSS queue tokens are non-zero 63-bit words (top bit marks descriptors)"
        );
        let c = self.slots.len() as u64;
        loop {
            // Read the counters snapshot.
            let t = self.tail.load(Ordering::SeqCst);
            let hd = self.head.load(Ordering::SeqCst);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            // Is the queue full?
            if t == hd + c {
                return Err(Full(v));
            }
            // Try to insert the element iff `tail` is still `t`.
            let done = self
                .arena
                .dcss(h.tid, &self.slots[(t % c) as usize], NULL, v, &self.tail, t)
                .succeeded();
            // Increment the counter (helping).
            let _ = self
                .tail
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Ok(());
            }
        }
    }

    fn dequeue(&self, h: &mut DcssHandle) -> Option<u64> {
        let c = self.slots.len() as u64;
        loop {
            // Read the counters + element snapshot (the read helps any
            // in-flight DCSS on the slot to completion first).
            let t = self.tail.load(Ordering::SeqCst);
            let hd = self.head.load(Ordering::SeqCst);
            let e = self.arena.read(&self.slots[(hd % c) as usize]);
            if t != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            // Is the queue empty?
            if t == hd {
                return None;
            }
            // Try to extract the element iff `head` is still `hd`.
            let done = e != NULL
                && self
                    .arena
                    .dcss(
                        h.tid,
                        &self.slots[(hd % c) as usize],
                        e,
                        NULL,
                        &self.head,
                        hd,
                    )
                    .succeeded();
            // Increment the counter (helping).
            let _ = self
                .head
                .compare_exchange(hd, hd + 1, Ordering::SeqCst, Ordering::SeqCst);
            if done {
                return Some(e);
            }
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn max_token(&self) -> u64 {
        MAX_TOKEN
    }

    fn len(&self) -> usize {
        let t = self.tail.load(Ordering::SeqCst);
        let h = self.head.load(Ordering::SeqCst);
        t.saturating_sub(h) as usize
    }
}

impl MemoryFootprint for DcssQueue {
    fn footprint(&self) -> FootprintBreakdown {
        // A shared arena is charged to the group once; each member then
        // reports its amortized share.
        let sharers = Arc::strong_count(&self.arena).max(1);
        FootprintBreakdown::with_elements(self.slots.len() * 8)
            .add(
                format!(
                    "2T = {} DCSS descriptors{}",
                    2 * self.arena.max_threads(),
                    if sharers > 1 {
                        format!(" (shared {sharers} ways)")
                    } else {
                        String::new()
                    }
                ),
                self.arena.footprint_bytes() / sharers,
                OverheadClass::Descriptors,
            )
            .add("head + tail counters", 16, OverheadClass::Counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = DcssQueue::with_capacity_and_threads(4, 2);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn repeated_values_allowed() {
        // Unlike Listing 2, no distinctness assumption: the counter guard
        // in the DCSS provides ABA protection.
        let q = DcssQueue::with_capacity_and_threads(2, 1);
        let mut h = q.register();
        for _ in 0..300 {
            q.enqueue(&mut h, 5).unwrap();
            q.enqueue(&mut h, 5).unwrap();
            assert_eq!(q.dequeue(&mut h), Some(5));
            assert_eq!(q.dequeue(&mut h), Some(5));
        }
    }

    #[test]
    fn overhead_linear_in_threads_constant_in_capacity() {
        let ovh = |c: usize, t: usize| DcssQueue::with_capacity_and_threads(c, t).overhead_bytes();
        // Constant in C.
        assert_eq!(ovh(64, 4), ovh(1 << 14, 4));
        // Linear in T.
        let t1 = ovh(64, 1);
        let t8 = ovh(64, 8);
        let t64 = ovh(64, 64);
        assert_eq!((t8 - t1) / 7, (t64 - t8) / 56, "per-thread cost is uniform");
        assert!(t64 > t8 && t8 > t1);
    }

    #[test]
    fn registration_bounded_by_t() {
        let q = DcssQueue::with_capacity_and_threads(4, 2);
        let _a = q.register();
        let _b = q.register();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = q.register();
        }))
        .is_err());
    }

    #[test]
    fn shared_arena_amortizes_group_overhead() {
        // §3.5 "System-wide overhead": k queues, one Θ(T) pool.
        let k = 8;
        let group = DcssQueue::group(k, 64, 4);
        let solo = DcssQueue::with_capacity_and_threads(64, 4);
        let group_total: usize = group.iter().map(|q| q.overhead_bytes()).sum();
        let naive_total = k * solo.overhead_bytes();
        assert!(group[0].arena_is_shared());
        assert!(!solo.arena_is_shared());
        // The group pays the arena once plus per-queue counters; the naive
        // replication pays it k times.
        assert!(
            group_total < naive_total / 2,
            "shared: {group_total} B vs replicated: {naive_total} B"
        );
        assert_eq!(
            group_total,
            solo.arena_bytes() + k * 16,
            "group total = one arena + k counter pairs"
        );
    }

    #[test]
    fn shared_arena_queues_work_concurrently() {
        let group = DcssQueue::group(2, 8, 4);
        let (qa, qb) = (&group[0], &group[1]);
        let mut ha = qa.register();
        let mut hb = qb.register();
        // Interleaved use of both queues through the same descriptors.
        for v in 1..=200u64 {
            qa.enqueue(&mut ha, v).unwrap();
            qb.enqueue(&mut hb, v + 1000).unwrap();
            assert_eq!(qa.dequeue(&mut ha), Some(v));
            assert_eq!(qb.dequeue(&mut hb), Some(v + 1000));
        }
        // Cross-thread: one thread per queue, shared arena under load.
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut h = qa.register();
                for v in 1..=2000u64 {
                    while qa.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                    while qa.dequeue(&mut h).is_none() {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|| {
                let mut h = qb.register();
                for v in 1..=2000u64 {
                    while qb.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                    while qb.dequeue(&mut h).is_none() {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }

    #[test]
    fn concurrent_repeated_values_conserved() {
        let q = Arc::new(DcssQueue::with_capacity_and_threads(4, 4));
        let per = 3_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for _ in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for _ in 0..per {
                    while q.enqueue(&mut h, 42).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut got = 0u64;
        while got < total {
            match q.dequeue(&mut h) {
                Some(v) => {
                    assert_eq!(v, 42);
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert_eq!(q.dequeue(&mut h), None, "exact conservation");
    }

    #[test]
    fn concurrent_distinct_values_conserved() {
        let q = Arc::new(DcssQueue::with_capacity_and_threads(8, 4));
        let per = 2_000u64;
        let producers = 3u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while (seen.len() as u64) < total {
            match q.dequeue(&mut h) {
                Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        for v in 1..=total {
            assert!(seen.contains(&v), "missing {v}");
        }
    }
}
