//! Workload drivers for the throughput experiments (E10).
//!
//! Two canonical workloads from the bounded-queue literature:
//!
//! * **pairs** — every thread alternates `enqueue`/`dequeue` on a
//!   half-full queue (uniform mixed contention);
//! * **producer/consumer** — half the threads enqueue a fixed item count,
//!   half drain, modelling the task-scheduler / io_uring-style usage the
//!   paper's introduction motivates.
//!
//! Hardware note: on a single-core host these measure contention behaviour
//! under preemption (retry rates, helping cost), not parallel speedup —
//! the relative *shape* across algorithms is still informative, and the
//! memory results (the paper's subject) are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::registry::DynQueue;

/// Result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Total completed operations (enqueues + dequeues).
    pub ops: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl WorkloadResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }
}

/// Mixed enqueue/dequeue pairs: `threads` workers each perform
/// `ops_per_thread` enqueue+dequeue pairs on a queue pre-filled to half
/// capacity. Returns aggregate throughput.
pub fn pairs_throughput(
    q: &dyn DynQueue,
    threads: usize,
    ops_per_thread: u64,
) -> WorkloadResult {
    assert!(threads <= q.threads());
    // Pre-fill to C/2 so both operations usually succeed.
    for i in 0..(q.capacity() / 2) as u64 {
        assert!(q.enqueue(0, 1 + i), "pre-fill failed");
    }
    let token_base = AtomicU64::new(1_000_000);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let token_base = &token_base;
            let q = &*q;
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    // Fresh tokens keep the distinct-elements queues honest.
                    let v = token_base.fetch_add(1, Ordering::Relaxed);
                    while !q.enqueue(tid, v) {
                        std::thread::yield_now();
                    }
                    while q.dequeue(tid).is_none() {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    WorkloadResult {
        ops: 2 * threads as u64 * ops_per_thread,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Producer/consumer transfer: `pairs` producers enqueue `items_per_producer`
/// fresh tokens each while `pairs` consumers drain until every item has been
/// observed.
pub fn producer_consumer_throughput(
    q: &dyn DynQueue,
    pairs: usize,
    items_per_producer: u64,
) -> WorkloadResult {
    assert!(2 * pairs <= q.threads());
    let total = pairs as u64 * items_per_producer;
    let consumed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pairs {
            let q = &*q;
            s.spawn(move || {
                let base = 1 + p as u64 * items_per_producer;
                for i in 0..items_per_producer {
                    while !q.enqueue(p, base + i) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for c in 0..pairs {
            let q = &*q;
            let consumed = &consumed;
            s.spawn(move || {
                let tid = pairs + c;
                // Exit once every produced item has been consumed by
                // someone; until then, keep draining.
                while consumed.load(Ordering::Relaxed) < total {
                    if q.dequeue(tid).is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    WorkloadResult {
        ops: 2 * total,
        secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QueueKind;

    #[test]
    fn pairs_runs_on_every_sound_queue() {
        for kind in crate::registry::ALL_KINDS {
            let q = kind.build(16, 2);
            if !q.sound() {
                continue; // the unsound models may corrupt under contention
            }
            let r = pairs_throughput(&*q, 2, 200);
            assert_eq!(r.ops, 800);
            assert!(r.secs > 0.0);
            assert!(r.mops() > 0.0);
        }
    }

    #[test]
    fn producer_consumer_conserves_count() {
        let q = QueueKind::Optimal.build(8, 4);
        let r = producer_consumer_throughput(&*q, 2, 500);
        assert_eq!(r.ops, 2000);
        // Queue drained exactly.
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn pairs_leaves_queue_at_prefill_level() {
        let q = QueueKind::Vyukov.build(16, 2);
        let r = pairs_throughput(&*q, 1, 100);
        assert_eq!(r.ops, 200);
        // Pre-fill was C/2 = 8; pairs preserve the level.
        let mut n = 0;
        while q.dequeue(0).is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
