//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of proptest the test suites use: the [`Strategy`]
//! trait (ranges, tuples, [`Just`], `prop_map`, unions, `any`,
//! `collection::vec`), the `proptest!` macro, and the `prop_assert_*`
//! family. Differences from upstream, deliberately accepted:
//!
//! * cases are generated from a **fixed seed** — runs are deterministic
//!   and reproducible, with no persistence file;
//! * there is **no shrinking**: a failing case reports its inputs via the
//!   panic message instead of a minimized counterexample;
//! * `prop_assert!` panics (like `assert!`) instead of returning a
//!   `TestCaseError`.

#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by `proptest!` runs.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating test values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(S0.0);
impl_strategy_tuple!(S0.0, S1.1);
impl_strategy_tuple!(S0.0, S1.1, S2.2);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Weighted-free union over same-valued strategies ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Build from boxed alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Box a strategy for use in a [`Union`] (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Acceptable size arguments for [`vec`]: a fixed `usize` or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Number-of-cases configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {inputs}",
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Choose uniformly between the given strategies (same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (panics on failure, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` module path (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vec(xs in prop::collection::vec(0u64..10, 1..20), b in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = b;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), (2u32..5).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || (20..50).contains(&v), "{v}");
        }
    }
}
