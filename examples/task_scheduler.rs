//! A multi-worker task scheduler over the memory-optimal bounded queue —
//! the kind of system the paper's introduction motivates ("resource
//! management systems and task schedulers").
//!
//! ```text
//! cargo run --release --example task_scheduler
//! ```
//!
//! A fixed-capacity queue gives the scheduler natural backpressure: when
//! the queue is full, submitters must wait (or shed load) instead of
//! growing an unbounded backlog. Workers pull tasks, execute them, and
//! push results through a second bounded queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use membq::prelude::*;

/// A unit of work: compute the sum of a range (stand-in for real work).
struct Task {
    id: u64,
    from: u64,
    to: u64,
}

struct TaskResult {
    id: u64,
    sum: u64,
}

fn main() {
    const WORKERS: usize = 3;
    const SUBMITTERS: usize = 2;
    const TASKS_PER_SUBMITTER: u64 = 500;
    const QUEUE_DEPTH: usize = 32;

    // T = submitters + workers + main thread.
    let task_q: Arc<BoxedQueue<Task, OptimalQueue>> = Arc::new(BoxedQueue::new(
        OptimalQueue::with_capacity_and_threads(QUEUE_DEPTH, SUBMITTERS + WORKERS + 1),
    ));
    let result_q: Arc<BoxedQueue<TaskResult, OptimalQueue>> = Arc::new(BoxedQueue::new(
        OptimalQueue::with_capacity_and_threads(QUEUE_DEPTH, WORKERS + 1),
    ));

    let backpressure_events = Arc::new(AtomicU64::new(0));
    let total_tasks = SUBMITTERS as u64 * TASKS_PER_SUBMITTER;

    std::thread::scope(|s| {
        // Submitters: produce tasks, honoring backpressure.
        for sub in 0..SUBMITTERS {
            let task_q = Arc::clone(&task_q);
            let backpressure = Arc::clone(&backpressure_events);
            s.spawn(move || {
                let mut h = task_q.register();
                for i in 0..TASKS_PER_SUBMITTER {
                    let id = sub as u64 * TASKS_PER_SUBMITTER + i;
                    let mut task = Task {
                        id,
                        from: i * 10,
                        to: i * 10 + 100,
                    };
                    loop {
                        match task_q.enqueue(&mut h, task) {
                            Ok(()) => break,
                            Err(back) => {
                                // Queue full: the bounded capacity is the
                                // backpressure signal.
                                backpressure.fetch_add(1, Ordering::Relaxed);
                                task = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
        }

        // Workers: drain tasks, compute, emit results.
        let completed = Arc::new(AtomicU64::new(0));
        for _ in 0..WORKERS {
            let task_q = Arc::clone(&task_q);
            let result_q = Arc::clone(&result_q);
            let completed = Arc::clone(&completed);
            s.spawn(move || {
                let mut th = task_q.register();
                let mut rh = result_q.register();
                while completed.load(Ordering::Relaxed) < total_tasks {
                    let Some(task) = task_q.dequeue(&mut th) else {
                        std::thread::yield_now();
                        continue;
                    };
                    let sum: u64 = (task.from..task.to).sum();
                    let mut result = TaskResult { id: task.id, sum };
                    loop {
                        match result_q.enqueue(&mut rh, result) {
                            Ok(()) => break,
                            Err(back) => {
                                result = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Main thread: collect and verify results.
        let mut rh = result_q.register();
        let mut seen = vec![false; total_tasks as usize];
        let mut collected = 0u64;
        while collected < total_tasks {
            let Some(r) = result_q.dequeue(&mut rh) else {
                std::thread::yield_now();
                continue;
            };
            assert!(!seen[r.id as usize], "task {} completed twice", r.id);
            seen[r.id as usize] = true;
            // Independent check of the work.
            let i = r.id % TASKS_PER_SUBMITTER;
            let expect: u64 = (i * 10..i * 10 + 100).sum();
            assert_eq!(r.sum, expect, "task {} computed wrong sum", r.id);
            collected += 1;
        }
        assert!(seen.iter().all(|&b| b), "every task completed exactly once");
    });

    println!(
        "scheduled {} tasks across {} workers through a {}-deep bounded queue",
        total_tasks, WORKERS, QUEUE_DEPTH
    );
    println!(
        "backpressure events (full queue rejections): {}",
        backpressure_events.load(Ordering::Relaxed)
    );
    println!(
        "scheduler queue overhead: {} bytes for T = {} threads — independent of depth",
        // Rebuild an identical queue for the footprint (the Arc'd one is
        // inside the scope's Drop by now conceptually; this is the figure).
        OptimalQueue::with_capacity_and_threads(QUEUE_DEPTH, SUBMITTERS + WORKERS + 1)
            .overhead_bytes(),
        SUBMITTERS + WORKERS + 1,
    );
}
