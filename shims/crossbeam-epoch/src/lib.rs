//! Offline stand-in for the `crossbeam-epoch` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small but *real* epoch-based-reclamation engine behind the subset of
//! the crossbeam-epoch API the queues use: [`Atomic`], [`Owned`],
//! [`Shared`], [`Guard`], [`pin`] and [`unprotected`].
//!
//! Reclamation protocol (classic three-epoch EBR):
//!
//! * every thread registers a participant record on first [`pin`];
//! * [`pin`] publishes the global epoch in the participant record;
//! * garbage is tagged with the epoch at retirement; it may run once the
//!   global epoch has advanced **two** steps past it (no pinned thread can
//!   still hold a reference by then);
//! * the global epoch advances when every currently-pinned participant has
//!   observed it.
//!
//! Deferred closures run on whichever thread unpins and finds eligible
//! garbage. This is simpler (one global garbage bag guarded by a lock)
//! and slower than real crossbeam, but semantically equivalent, which is
//! what the memory-bound experiments need.

#![deny(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Global epoch machinery
// ---------------------------------------------------------------------------

/// A retired object: a closure that frees it, plus the epoch at retirement.
struct Deferred {
    epoch: usize,
    run: Box<dyn FnOnce()>,
}

// SAFETY: deferred closures capture raw pointers to retired objects. They
// are executed exactly once, after the grace period, by an arbitrary
// thread — the same contract as crossbeam's `defer_unchecked`.
unsafe impl Send for Deferred {}

struct Participant {
    /// Epoch the thread was pinned at, LSB set while pinned.
    state: AtomicUsize,
}

impl Participant {
    fn is_pinned(&self) -> (bool, usize) {
        let s = self.state.load(Ordering::SeqCst);
        (s & 1 == 1, s >> 1)
    }
}

struct Global {
    epoch: AtomicUsize,
    /// Number of deferred closures awaiting their grace period. Checked
    /// before taking any lock so that garbage-free pin/unpin cycles (the
    /// common case in benchmarks) never serialize on the mutexes below.
    garbage_count: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Deferred>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(2),
        garbage_count: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

impl Global {
    /// Try to advance the global epoch, then run every deferred closure
    /// whose grace period has elapsed. No-op (lock-free) without garbage.
    fn collect(&self) {
        if self.garbage_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let e = self.epoch.load(Ordering::SeqCst);
        let all_observed = {
            let parts = self.participants.lock().unwrap();
            parts.iter().all(|p| {
                let (pinned, at) = p.is_pinned();
                !pinned || at == e
            })
        };
        if all_observed {
            let _ = self
                .epoch
                .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
        let now = self.epoch.load(Ordering::SeqCst);
        let ready: Vec<Deferred> = {
            let mut bag = self.garbage.lock().unwrap();
            if bag.is_empty() {
                return;
            }
            let mut ready = Vec::new();
            bag.retain_mut(|d| {
                if d.epoch + 2 <= now {
                    ready.push(Deferred {
                        epoch: d.epoch,
                        run: std::mem::replace(&mut d.run, Box::new(|| ())),
                    });
                    false
                } else {
                    true
                }
            });
            ready
        };
        self.garbage_count.fetch_sub(ready.len(), Ordering::SeqCst);
        for d in ready {
            (d.run)();
        }
    }
}

struct LocalHandle {
    participant: Arc<Participant>,
    pin_depth: Cell<usize>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let mut parts = global().participants.lock().unwrap();
        parts.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let participant = Arc::new(Participant {
            state: AtomicUsize::new(0),
        });
        global().participants.lock().unwrap().push(Arc::clone(&participant));
        LocalHandle {
            participant,
            pin_depth: Cell::new(0),
        }
    };
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// Keeps the current thread pinned; retired objects stay alive while any
/// guard that may have observed them is held.
///
/// Like real crossbeam-epoch, a guard is `!Send` — it must drop on the
/// thread that pinned:
///
/// ```compile_fail
/// let g = crossbeam_epoch::pin();
/// std::thread::spawn(move || drop(g)); // error: `Guard` is not `Send`
/// ```
pub struct Guard {
    /// `false` for the [`unprotected`] pseudo-guard, whose deferred
    /// closures run immediately.
    protected: bool,
    /// `Drop` mutates the *pinning thread's* state, so a guard must not
    /// migrate to another thread — suppress auto-`Send`, matching real
    /// crossbeam-epoch's `!Send` guard.
    _not_send: PhantomData<*mut ()>,
}

// SAFETY: the unprotected guard is shared as a `&'static Guard`; it holds
// no thread-local state.
unsafe impl Sync for Guard {}

/// Pin the current thread and return a guard.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.pin_depth.get();
        if depth == 0 {
            let e = global().epoch.load(Ordering::SeqCst);
            local
                .participant
                .state
                .store((e << 1) | 1, Ordering::SeqCst);
        }
        local.pin_depth.set(depth + 1);
    });
    Guard {
        protected: true,
        _not_send: PhantomData,
    }
}

/// Return a dummy guard for contexts with exclusive access (construction,
/// `Drop`). Deferred closures run immediately.
///
/// # Safety
///
/// The caller must guarantee that no other thread can concurrently access
/// the data structure.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        protected: false,
        _not_send: PhantomData,
    };
    &UNPROTECTED
}

impl Guard {
    /// Defer `f` until the grace period has elapsed.
    ///
    /// # Safety
    ///
    /// `f` typically frees memory; the caller must ensure the object is
    /// unreachable to threads pinned after this call.
    pub unsafe fn defer_unchecked<F: FnOnce() + 'static>(&self, f: F) {
        if !self.protected {
            f();
            return;
        }
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        // Count first, push second: the counter must never lag the bag,
        // or a concurrent drain could subtract an uncounted item.
        g.garbage_count.fetch_add(1, Ordering::SeqCst);
        g.garbage.lock().unwrap().push(Deferred {
            epoch,
            run: Box::new(f),
        });
    }

    /// Defer dropping the heap allocation behind `shared`.
    ///
    /// # Safety
    ///
    /// `shared` must have come from [`Owned::into_shared`] and be
    /// unreachable to threads pinned after this call.
    pub unsafe fn defer_destroy<T: 'static>(&self, shared: Shared<'_, T>) {
        let raw = shared.ptr as usize;
        self.defer_unchecked(move || {
            drop(Box::from_raw(raw as *mut T));
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.protected {
            return;
        }
        let depth = LOCAL.try_with(|local| {
            let depth = local.pin_depth.get() - 1;
            local.pin_depth.set(depth);
            if depth == 0 {
                local.participant.state.store(0, Ordering::SeqCst);
            }
            depth
        });
        if depth == Ok(0) {
            global().collect();
        }
    }
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// Types that carry (ownership of) a raw pointer: [`Owned`] and [`Shared`].
pub trait Pointer<T> {
    /// The raw pointer value.
    fn as_ptr_value(&self) -> *mut T;
    /// Consume `self` without dropping the pointee.
    fn into_ptr_value(self) -> *mut T;
}

/// An owned heap allocation (like `Box<T>`) that can be published into an
/// [`Atomic`].
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Convert back into a `Box`.
    pub fn into_box(self) -> Box<T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        // SAFETY: `ptr` came from `Box::into_raw` and ownership is unique.
        unsafe { Box::from_raw(ptr) }
    }

    /// Publish under `guard`, yielding a [`Shared`] view.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> From<Box<T>> for Owned<T> {
    fn from(b: Box<T>) -> Self {
        Owned {
            ptr: Box::into_raw(b),
        }
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `ptr` is a live unique allocation owned by `self`.
        unsafe { &*self.ptr }
    }
}

impl<T> std::ops::DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, and `&mut self` gives exclusive access.
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: still-owned allocation (not consumed by into_*).
        unsafe { drop(Box::from_raw(self.ptr)) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn as_ptr_value(&self) -> *mut T {
        self.ptr
    }
    fn into_ptr_value(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }
}

/// A pointer protected by a [`Guard`]'s lifetime. `Copy`, possibly null.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.ptr, other.ptr)
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    fn from_ptr(ptr: *mut T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }

    /// Is this the null pointer?
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Dereference.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected (loaded under the guard,
    /// from a location whose pointees outlive the guard's grace period).
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }

    /// Reclaim ownership.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn as_ptr_value(&self) -> *mut T {
        self.ptr
    }
    fn into_ptr_value(self) -> *mut T {
        self.ptr
    }
}

/// Error type of [`Atomic::compare_exchange`]: the value actually found
/// plus the not-installed new value, returned to the caller.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic held at the failed exchange.
    pub current: Shared<'g, T>,
    /// The new value, handed back to the caller.
    pub new: P,
}

/// An atomic pointer cell holding null or a heap object.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: same contract as crossbeam — the cell itself is just an atomic
// pointer; safe traversal is the user's obligation via guards.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A cell holding null.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Allocate `value` and store it.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Load under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared::from_ptr(self.ptr.load(ord))
    }

    /// Store `new` (an [`Owned`] or [`Shared`]).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr_value(), ord);
    }

    /// Compare-and-exchange: install `new` if the cell holds `current`.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.as_ptr_value();
        match self
            .ptr
            .compare_exchange(current.ptr, new_ptr, success, failure)
        {
            Ok(_) => {
                let _ = new.into_ptr_value();
                Ok(Shared::from_ptr(new_ptr))
            }
            Err(found) => Err(CompareExchangeError {
                current: Shared::from_ptr(found),
                new,
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counts(#[allow(dead_code)] u64);
    impl Drop for Counts {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deferred_destruction_runs_after_grace_period() {
        let a: Atomic<Counts> = Atomic::new(Counts(1));
        {
            let guard = pin();
            let s = a.load(Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
        }
        // A few pin/unpin cycles advance the epoch twice and run garbage.
        for _ in 0..8 {
            drop(pin());
        }
        assert!(DROPS.load(Ordering::SeqCst) >= 1, "deferred drop must run");
    }
}
