//! Schedule-exploration instrumentation layer (DESIGN.md §11).
//!
//! The types here are drop-in stand-ins for the `std::sync::atomic` types
//! and the `parking_lot` lock/condvar that `bq-core`'s concurrent
//! algorithms use on their **shared** hot paths. They come in two builds:
//!
//! * default (no `sim-explore` feature): `#[inline]` pass-throughs — the
//!   wrappers compile to exactly the underlying primitive, and
//!   `#[repr(transparent)]` keeps every relocatable layout byte-stable;
//! * with the `sim-explore` feature: every operation is bracketed by
//!   [`simyield`] hook calls. On threads without an installed hook
//!   (everything outside the explorer) the bracket is one thread-local
//!   check; on explorer-controlled threads it is a cooperative
//!   scheduling point, which is how `bq_sim::explore` enumerates
//!   interleavings of the *real* queue code.
//!
//! Only shared-communication primitives are instrumented. Deliberately
//! uninstrumented (documented honest limits, DESIGN.md §11.4): the epoch
//! reclamation engine's internal atomics, diagnostic counters (e.g.
//! `SegmentQueue`'s allocation statistics), and `register()`'s thread-id
//! counter (registration happens in scenario setup, not in explored
//! bodies).

#![allow(clippy::needless_return)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar as PlCondvar, Mutex as PlMutex, MutexGuard as PlMutexGuard};

#[cfg(feature = "sim-explore")]
use simyield::{Access, Kind};

macro_rules! bracketed {
    ($self:ident, $kind:ident, $op1:expr, $op2:expr, $run:expr) => {{
        #[cfg(feature = "sim-explore")]
        {
            let a = Access::new(
                Kind::$kind,
                &$self.0 as *const _ as usize,
                $op1 as u64,
                $op2 as u64,
            );
            simyield::before(&a);
            let (ret, observed) = $run;
            simyield::after(&a, observed);
            return ret;
        }
        #[cfg(not(feature = "sim-explore"))]
        {
            let (ret, _observed) = $run;
            ret
        }
    }};
}

/// An `AtomicU64` whose operations are explorer scheduling points.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SimAtomicU64(AtomicU64);

impl SimAtomicU64 {
    /// New atomic holding `v`.
    pub const fn new(v: u64) -> Self {
        SimAtomicU64(AtomicU64::new(v))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, o: Ordering) -> u64 {
        bracketed!(self, Load, 0u64, 0u64, {
            let v = self.0.load(o);
            (v, v)
        })
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: u64, o: Ordering) {
        bracketed!(self, Store, v, 0u64, {
            self.0.store(v, o);
            ((), v)
        })
    }

    /// Compare-and-exchange; `Ok(old)` / `Err(actual)` like std.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        bracketed!(self, Cas, current, new, {
            let r = self.0.compare_exchange(current, new, success, failure);
            let old = match r {
                Ok(v) | Err(v) => v,
            };
            (r, old)
        })
    }

    /// Weak compare-and-exchange; may fail spuriously like std's.
    ///
    /// Under exploration it runs the *strong* variant: schedule replay
    /// must be deterministic, and a scheduling point already separates
    /// the read from the write, so spurious failure would only add
    /// schedules the strong CAS covers.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        bracketed!(self, Cas, current, new, {
            let r = if cfg!(feature = "sim-explore") {
                self.0.compare_exchange(current, new, success, failure)
            } else {
                self.0.compare_exchange_weak(current, new, success, failure)
            };
            let old = match r {
                Ok(v) | Err(v) => v,
            };
            (r, old)
        })
    }

    /// Atomic add returning the previous value.
    #[inline]
    pub fn fetch_add(&self, v: u64, o: Ordering) -> u64 {
        bracketed!(self, FetchAdd, v, 0u64, {
            let old = self.0.fetch_add(v, o);
            (old, old)
        })
    }

    /// Atomic subtract returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, v: u64, o: Ordering) -> u64 {
        bracketed!(self, FetchAdd, v.wrapping_neg(), 0u64, {
            let old = self.0.fetch_sub(v, o);
            (old, old)
        })
    }

    /// Non-atomic read through exclusive access (not a scheduling point).
    #[inline]
    pub fn get_mut(&mut self) -> &mut u64 {
        self.0.get_mut()
    }
}

/// An `AtomicUsize` whose operations are explorer scheduling points.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SimAtomicUsize(AtomicUsize);

impl SimAtomicUsize {
    /// New atomic holding `v`.
    pub const fn new(v: usize) -> Self {
        SimAtomicUsize(AtomicUsize::new(v))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, o: Ordering) -> usize {
        bracketed!(self, Load, 0u64, 0u64, {
            let v = self.0.load(o);
            (v, v as u64)
        })
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: usize, o: Ordering) {
        bracketed!(self, Store, v as u64, 0u64, {
            self.0.store(v, o);
            ((), v as u64)
        })
    }

    /// Atomic add returning the previous value.
    #[inline]
    pub fn fetch_add(&self, v: usize, o: Ordering) -> usize {
        bracketed!(self, FetchAdd, v as u64, 0u64, {
            let old = self.0.fetch_add(v, o);
            (old, old as u64)
        })
    }

    /// Atomic subtract returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, v: usize, o: Ordering) -> usize {
        bracketed!(self, FetchAdd, (v as u64).wrapping_neg(), 0u64, {
            let old = self.0.fetch_sub(v, o);
            (old, old as u64)
        })
    }

    /// Compare-and-exchange; `Ok(old)` / `Err(actual)` like std.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        bracketed!(self, Cas, current as u64, new as u64, {
            let r = self.0.compare_exchange(current, new, success, failure);
            let old = match r {
                Ok(v) | Err(v) => v,
            };
            (r, old as u64)
        })
    }
}

/// An `AtomicBool` whose operations are explorer scheduling points.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SimAtomicBool(AtomicBool);

impl SimAtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        SimAtomicBool(AtomicBool::new(v))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, o: Ordering) -> bool {
        bracketed!(self, Load, 0u64, 0u64, {
            let v = self.0.load(o);
            (v, v as u64)
        })
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: bool, o: Ordering) {
        bracketed!(self, Store, v as u64, 0u64, {
            self.0.store(v, o);
            ((), v as u64)
        })
    }
}

/// A mutex whose acquisition is an explorer scheduling point and whose
/// waiting is cooperative (a suspended lock-holder can never wedge the
/// explored world: contenders block *in the explorer*, not on the OS).
pub struct SimMutex<T> {
    inner: PlMutex<T>,
}

impl<T> SimMutex<T> {
    /// New mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        SimMutex {
            inner: PlMutex::new(value),
        }
    }

    #[cfg(feature = "sim-explore")]
    fn loc(&self) -> usize {
        self as *const _ as usize
    }

    /// Acquire the mutex.
    #[inline]
    pub fn lock(&self) -> SimMutexGuard<'_, T> {
        #[cfg(feature = "sim-explore")]
        {
            if simyield::hooked() {
                loop {
                    let a = Access::new(Kind::LockAcq, self.loc(), 0, 0);
                    simyield::before(&a);
                    if let Some(g) = self.inner.try_lock() {
                        simyield::after(&a, 1);
                        return SimMutexGuard {
                            mx: self,
                            inner: Some(g),
                            hooked: true,
                        };
                    }
                    simyield::after(&a, 0);
                    simyield::block_mutex(self.loc());
                }
            }
        }
        SimMutexGuard {
            mx: self,
            inner: Some(self.inner.lock()),
            hooked: false,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// RAII guard for [`SimMutex`]; releases (and notifies the explorer of
/// the release) on drop.
pub struct SimMutexGuard<'a, T> {
    mx: &'a SimMutex<T>,
    inner: Option<PlMutexGuard<'a, T>>,
    hooked: bool,
}

impl<T> std::ops::Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(feature = "sim-explore")]
            if self.hooked {
                simyield::mutex_released(self.mx.loc());
            }
        }
        let _ = self.hooked; // silence unused-field warning without the feature
        let _ = self.mx;
    }
}

/// A condvar whose wait is cooperative under exploration (see
/// [`SimMutex`]); delegates to `parking_lot` otherwise.
pub struct SimCondvar {
    inner: PlCondvar,
}

impl SimCondvar {
    /// New condvar.
    pub const fn new() -> Self {
        SimCondvar {
            inner: PlCondvar::new(),
        }
    }

    #[cfg(feature = "sim-explore")]
    fn loc(&self) -> usize {
        self as *const _ as usize
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    /// Spurious wakeups are possible in both builds; callers re-check
    /// their condition in a loop (the eventcount protocol does).
    pub fn wait<T>(&self, guard: &mut SimMutexGuard<'_, T>) {
        #[cfg(feature = "sim-explore")]
        {
            if guard.hooked {
                // Announce *before* unlocking so a notify landing in the
                // unlock→wait window is recorded, not lost — the same
                // reasoning as the eventcount's own announce step.
                simyield::cv_announce(self.loc());
                drop(guard.inner.take());
                simyield::mutex_released(guard.mx.loc());
                simyield::cv_block(self.loc());
                // Re-acquire cooperatively.
                loop {
                    let a = Access::new(Kind::LockAcq, guard.mx.loc(), 0, 0);
                    simyield::before(&a);
                    if let Some(g) = guard.mx.inner.try_lock() {
                        simyield::after(&a, 1);
                        guard.inner = Some(g);
                        return;
                    }
                    simyield::after(&a, 0);
                    simyield::block_mutex(guard.mx.loc());
                }
            }
        }
        self.inner
            .wait(guard.inner.as_mut().expect("guard holds the lock"));
    }

    /// Block until notified or until `deadline` passes, releasing the
    /// guard's mutex while waiting. Returns `true` when (possibly
    /// spuriously) notified, `false` when the deadline fired. A deadline
    /// at or before now returns `false` without sleeping.
    ///
    /// Under exploration the wall clock does not exist: whether the
    /// timeout fires is a *scheduling choice* (`simyield::cv_block_timed`),
    /// so the explorer enumerates both the wake-first and the
    /// timeout-first interleavings of a timed wait.
    pub fn wait_deadline<T>(
        &self,
        guard: &mut SimMutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> bool {
        #[cfg(feature = "sim-explore")]
        {
            if guard.hooked {
                // Same unlock→wait window reasoning as `wait`; the
                // deadline itself is delegated to the scheduler.
                simyield::cv_announce(self.loc());
                drop(guard.inner.take());
                simyield::mutex_released(guard.mx.loc());
                let woke = simyield::cv_block_timed(self.loc());
                // Re-acquire cooperatively.
                loop {
                    let a = Access::new(Kind::LockAcq, guard.mx.loc(), 0, 0);
                    simyield::before(&a);
                    if let Some(g) = guard.mx.inner.try_lock() {
                        simyield::after(&a, 1);
                        guard.inner = Some(g);
                        return woke;
                    }
                    simyield::after(&a, 0);
                    simyield::block_mutex(guard.mx.loc());
                }
            }
        }
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        if timeout.is_zero() {
            return false;
        }
        let res = self
            .inner
            .wait_for(guard.inner.as_mut().expect("guard holds the lock"), timeout);
        !res.timed_out()
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        #[cfg(feature = "sim-explore")]
        if simyield::hooked() {
            simyield::cv_notify(self.loc());
        }
        self.inner.notify_all();
    }
}

impl Default for SimCondvar {
    fn default() -> Self {
        SimCondvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_pass_through() {
        let a = SimAtomicU64::new(5);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        a.store(9, Ordering::SeqCst);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
        assert_eq!(a.fetch_sub(2, Ordering::SeqCst), 10);
        assert_eq!(
            a.compare_exchange(8, 3, Ordering::SeqCst, Ordering::SeqCst),
            Ok(8)
        );
        assert_eq!(
            a.compare_exchange(8, 4, Ordering::SeqCst, Ordering::SeqCst),
            Err(3)
        );
        let b = SimAtomicBool::new(false);
        b.store(true, Ordering::SeqCst);
        assert!(b.load(Ordering::SeqCst));
        let u = SimAtomicUsize::new(1);
        assert_eq!(u.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(u.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn layout_is_transparent() {
        use std::mem::{align_of, size_of};
        assert_eq!(size_of::<SimAtomicU64>(), size_of::<AtomicU64>());
        assert_eq!(align_of::<SimAtomicU64>(), align_of::<AtomicU64>());
        assert_eq!(size_of::<SimAtomicBool>(), 1);
    }

    #[test]
    fn mutex_and_condvar_delegate_without_hook() {
        let m = SimMutex::new(3);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 4);
        // A notified wait returns.
        let cv = std::sync::Arc::new(SimCondvar::new());
        let mx = std::sync::Arc::new(SimMutex::new(false));
        let (cv2, mx2) = (std::sync::Arc::clone(&cv), std::sync::Arc::clone(&mx));
        let t = std::thread::spawn(move || {
            let mut g = mx2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *mx.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
