//! Criterion bench for **E10a**: mixed enqueue/dequeue pair cost per
//! algorithm, single-threaded (the uncontended fast path) and with 2
//! threads (contended).
//!
//! Run: `cargo bench -p bq-bench --bench throughput`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bq_bench::registry::ALL_KINDS;
use bq_bench::workload::pairs_throughput;

fn bench_pairs(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("pairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for kind in ALL_KINDS {
        {
            let probe = kind.build(4, 1);
            if !probe.sound() {
                continue;
            }
        }
        for threads in [1usize, 2] {
            let ops = 1_000u64;
            group.throughput(Throughput::Elements(2 * threads as u64 * ops));
            group.bench_with_input(BenchmarkId::new(kind.name(), threads), &threads, |b, &t| {
                b.iter(|| {
                    let q = kind.build(1024, t);
                    pairs_throughput(&*q, t, ops)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pairs);
criterion_main!(benches);
