//! The yield-point seam between the production queue code and the
//! `bq-sim` schedule explorer.
//!
//! Under the `sim-explore` feature, `bq-core` routes every shared atomic
//! access (and every lock/condvar transition of the waiter subsystem)
//! through the free functions in this crate **before and after** executing
//! the real operation. Each call consults a **thread-local** hook:
//!
//! * no hook installed (every production thread, every test outside the
//!   explorer): the call is a single thread-local check and returns
//!   immediately — behavior is unchanged;
//! * hook installed (a thread the explorer controls): the hook gets a
//!   chance to *pause the thread right here* and hand execution to another
//!   thread, which is exactly the capability a loom-style interleaving
//!   explorer needs ("poising" a thread before a primitive, in the
//!   vocabulary of the paper's Definition 3.5).
//!
//! The crate is dependency-free and carries no scheduling logic of its
//! own; the controller lives in `bq_sim::explore`. Keeping the seam in a
//! shim-level crate lets both `bq-core` and (potentially) other vendored
//! shims call into it without a dependency cycle on `bq-sim`.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

/// What kind of shared-memory primitive is about to run / just ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Atomic load; `observed` in [`Hook::after`] is the value read.
    Load,
    /// Atomic store of `operand`.
    Store,
    /// `compare_exchange(operand, operand2)`; `observed` is the old value
    /// (success iff `observed == operand`).
    Cas,
    /// `fetch_add(operand)` (subtraction encodes as two's-complement);
    /// `observed` is the old value.
    FetchAdd,
    /// Lock acquisition attempt on a mutex.
    LockAcq,
}

/// One shared access, identified by the primitive's address (`loc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Primitive kind.
    pub kind: Kind,
    /// Stable-within-an-execution identity: the address of the atomic /
    /// lock. The explorer normalizes this to a dense id by first touch.
    pub loc: usize,
    /// First operand (stored value / CAS expected / add delta).
    pub operand: u64,
    /// Second operand (CAS replacement), 0 otherwise.
    pub operand2: u64,
}

impl Access {
    /// Convenience constructor.
    pub fn new(kind: Kind, loc: usize, operand: u64, operand2: u64) -> Self {
        Access {
            kind,
            loc,
            operand,
            operand2,
        }
    }
}

/// The explorer-side controller interface. All methods are called on the
/// explored thread itself; `before`, `block_mutex` and `cv_block` may
/// cooperatively suspend the calling thread until the scheduler grants it
/// the next step.
pub trait Hook {
    /// Called immediately before a shared access executes. This is the
    /// scheduling point: the hook may park the thread and run others.
    fn before(&self, a: &Access);

    /// Called immediately after the access, with the observed value
    /// (loaded value / CAS old value / RMW old value; the stored value
    /// for stores). The thread still holds the run token; no suspension.
    fn after(&self, a: &Access, observed: u64);

    /// The thread failed to acquire the mutex at `loc` (some suspended
    /// thread holds it). Suspend until a release makes a retry sensible.
    fn block_mutex(&self, loc: usize);

    /// The thread released the mutex at `loc` (runs inside guard drop —
    /// must not suspend and must not panic).
    fn mutex_released(&self, loc: usize);

    /// The thread is about to release the mutex and wait on condvar
    /// `loc`: record it as a waiter *before* the unlock so a notify in
    /// the unlock–wait window is not lost. Does not suspend.
    fn cv_announce(&self, loc: usize);

    /// Suspend until condvar `loc` is notified (or immediately return if
    /// a notification arrived since [`cv_announce`](Hook::cv_announce)).
    fn cv_block(&self, loc: usize);

    /// Timed variant of [`cv_block`](Hook::cv_block): the wait may end
    /// either because condvar `loc` was notified (return `true`) or
    /// because the deadline fired (return `false`). Under exploration
    /// there is no wall clock — whether the timeout fires is a
    /// *scheduling choice*, so the explorer can enumerate both the
    /// wake-first and the timeout-first interleavings. The default
    /// implementation degrades to an untimed block (timeouts never
    /// fire), which keeps old hooks source-compatible.
    fn cv_block_timed(&self, loc: usize) -> bool {
        self.cv_block(loc);
        true
    }

    /// `notify_all` on condvar `loc`. Does not suspend.
    fn cv_notify(&self, loc: usize);
}

thread_local! {
    static HOOK: RefCell<Option<Rc<dyn Hook>>> = const { RefCell::new(None) };
}

/// Is a hook installed on the current thread?
#[inline]
pub fn hooked() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

fn current() -> Option<Rc<dyn Hook>> {
    HOOK.with(|h| h.borrow().clone())
}

/// Install `hook` on the current thread for the duration of `f`
/// (restored on unwind, so a panicking explored body cannot leak its
/// hook into the worker's next job).
pub fn with_hook<R>(hook: Rc<dyn Hook>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Rc<dyn Hook>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            HOOK.with(|h| *h.borrow_mut() = prev);
        }
    }
    let prev = HOOK.with(|h| h.borrow_mut().replace(hook));
    let _restore = Restore(prev);
    f()
}

/// Pre-access scheduling point. No-op without a hook.
#[inline]
pub fn before(a: &Access) {
    if let Some(h) = current() {
        h.before(a);
    }
}

/// Post-access observation report. No-op without a hook.
#[inline]
pub fn after(a: &Access, observed: u64) {
    if let Some(h) = current() {
        h.after(a, observed);
    }
}

/// Mutex acquisition failed; cooperatively wait for a release.
#[inline]
pub fn block_mutex(loc: usize) {
    if let Some(h) = current() {
        h.block_mutex(loc);
    }
}

/// Mutex released (called from guard drop).
#[inline]
pub fn mutex_released(loc: usize) {
    if let Some(h) = current() {
        h.mutex_released(loc);
    }
}

/// Announce intent to wait on a condvar (before the unlock).
#[inline]
pub fn cv_announce(loc: usize) {
    if let Some(h) = current() {
        h.cv_announce(loc);
    }
}

/// Cooperatively wait for a condvar notification.
#[inline]
pub fn cv_block(loc: usize) {
    if let Some(h) = current() {
        h.cv_block(loc);
    }
}

/// Cooperatively wait for a condvar notification *or* a timeout chosen
/// by the scheduler; `true` means notified, `false` means the deadline
/// fired. Without a hook this returns `true` immediately (the caller
/// falls back to its real timed wait).
#[inline]
pub fn cv_block_timed(loc: usize) -> bool {
    match current() {
        Some(h) => h.cv_block_timed(loc),
        None => true,
    }
}

/// Broadcast a condvar notification to explored waiters.
#[inline]
pub fn cv_notify(loc: usize) {
    if let Some(h) = current() {
        h.cv_notify(loc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Counting(Cell<usize>);
    impl Hook for Counting {
        fn before(&self, _a: &Access) {
            self.0.set(self.0.get() + 1);
        }
        fn after(&self, _a: &Access, _o: u64) {}
        fn block_mutex(&self, _l: usize) {}
        fn mutex_released(&self, _l: usize) {}
        fn cv_announce(&self, _l: usize) {}
        fn cv_block(&self, _l: usize) {}
        fn cv_notify(&self, _l: usize) {}
    }

    #[test]
    fn no_hook_is_a_noop() {
        assert!(!hooked());
        before(&Access::new(Kind::Load, 1, 0, 0));
        after(&Access::new(Kind::Load, 1, 0, 0), 7);
    }

    #[test]
    fn with_hook_installs_and_restores() {
        let h = Rc::new(Counting(Cell::new(0)));
        let h2 = Rc::clone(&h);
        with_hook(h2, || {
            assert!(hooked());
            before(&Access::new(Kind::Store, 2, 5, 0));
            before(&Access::new(Kind::Cas, 2, 5, 6));
        });
        assert!(!hooked());
        assert_eq!(h.0.get(), 2);
    }

    #[test]
    fn hook_restored_on_unwind() {
        let h: Rc<dyn Hook> = Rc::new(Counting(Cell::new(0)));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_hook(Rc::clone(&h), || panic!("boom"));
        }));
        assert!(r.is_err());
        assert!(!hooked(), "hook must not leak past an unwinding scope");
    }
}
