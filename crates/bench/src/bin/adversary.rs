//! **Experiments E4 / E8** — the lower-bound adversary.
//!
//! Runs the executable Figure 3 constructions from `bq-sim` against each
//! simulated algorithm and prints the recorded histories together with the
//! linearizability checker's verdicts. The headline result:
//!
//! * the Θ(1)-overhead strawman → **NOT linearizable** (both scenarios);
//! * Listing 2 with its distinct-elements assumption violated → **NOT
//!   linearizable** (middle-steal);
//! * Listing 4 (Θ(T) overhead via DCSS) → linearizable under the same
//!   schedules,
//!
//! which is the paper's Theorem 3.12 made concrete: constant overhead and
//! linearizability cannot coexist for value-independent CAS algorithms.
//!
//! Run: `cargo run --release -p bq-bench --bin adversary`

use bq_sim::algos::{Flavor, HelpMode};
use bq_sim::{
    run_enqueue_hole, run_lemma_a2_interleaving, run_middle_steal, run_two_round_sleep,
    AdversaryReport,
};

fn banner(r: &AdversaryReport) {
    println!("{}", "-".repeat(72));
    println!("{}", r.render());
}

fn main() {
    println!("=== E8: the lower-bound adversary (Theorem 3.12 / Figure 3) ===\n");
    println!(
        "Each algorithm is driven through the same adversarial schedule:\n\
         a thread is poised immediately before a CAS on a value-location\n\
         (Definition 3.5), the queue is drained and refilled (fill/empty\n\
         procedures, Definition 3.6), and the poised CAS is released.\n"
    );

    let mut summary = Vec::new();
    for flavor in [
        Flavor::Naive,
        Flavor::Distinct,
        Flavor::TwoNull,
        Flavor::Dcss,
    ] {
        for (scenario, report) in [
            ("middle-steal", run_middle_steal(flavor)),
            ("enqueue-into-hole", run_enqueue_hole(flavor)),
            ("two-round-sleep", run_two_round_sleep(flavor)),
        ] {
            banner(&report);
            summary.push((
                report.algorithm,
                scenario,
                report.value_locations,
                report.metadata_locations,
                report.linearizable(),
            ));
        }
    }

    println!("{}", "=".repeat(72));
    println!("\n=== Lemma A.2 regression (Listing 5 helping discipline, DESIGN.md §7) ===\n");
    for mode in [HelpMode::PaperFaithful, HelpMode::Evidence] {
        let report = run_lemma_a2_interleaving(mode);
        banner(&report);
        summary.push((
            report.algorithm,
            "lemma-A.2 interleaving",
            report.value_locations,
            report.metadata_locations,
            report.linearizable(),
        ));
    }

    println!("{}", "=".repeat(72));
    println!("\n=== Theorem 3.12 Step 1: the catching census ===\n");
    println!(
        "For each algorithm, fresh processes run fill attempts and are poised\n\
         before their first CAS-from-⊥ on an uncovered value-location. The proof\n\
         needs T/2 < C for every process to be caught on a distinct location:\n"
    );
    println!(
        "{:<22} {:>4} {:>4} {:>9} {:>9} {:>16} {:>14}",
        "algorithm", "C", "try", "caught", "distinct", "completed enq", "Step 1 holds?"
    );
    for flavor in [
        Flavor::Naive,
        Flavor::Distinct,
        Flavor::TwoNull,
        Flavor::Dcss,
    ] {
        for (c, catchers) in [(32usize, 6usize), (4, 6)] {
            let mut mem = bq_sim::SimMemory::new();
            let q = match flavor {
                Flavor::Naive => bq_sim::algos::naive(c, &mut mem),
                Flavor::Distinct => bq_sim::algos::distinct(c, &mut mem),
                Flavor::TwoNull => bq_sim::algos::two_null(c, &mut mem),
                Flavor::Dcss => bq_sim::algos::dcss(c, &mut mem),
            };
            let name = {
                use bq_sim::machine::SimQueue as _;
                q.name()
            };
            let mut sim = bq_sim::Sim::new(q, mem, catchers + 2);
            let r = bq_sim::step1_catch(&mut sim, catchers, 1000, 10_000);
            println!(
                "{:<22} {:>4} {:>4} {:>9} {:>9} {:>16} {:>14}",
                name,
                c,
                r.attempted,
                r.caught,
                r.covered.len(),
                r.completed_enqueues,
                if r.step1_holds() {
                    "yes"
                } else {
                    "NO (C too small)"
                }
            );
        }
    }
    println!(
        "\nWith C = 32 > 6 catchers, Step 1 holds for every algorithm; with C = 4\n\
         it cannot (only C locations exist to cover) — the theorem's T/2 < C\n\
         hypothesis, observed.\n"
    );

    println!("{}", "=".repeat(72));
    println!("\n=== summary (E4 = listing2 row, E8 = all rows) ===\n");
    println!(
        "{:<22} {:<20} {:>10} {:>10} {:>18}",
        "algorithm", "scenario", "value-locs", "meta-locs", "linearizable?"
    );
    for (alg, sc, v, m, lin) in &summary {
        println!(
            "{:<22} {:<20} {:>10} {:>10} {:>18}",
            alg,
            sc,
            v,
            m,
            if *lin { "yes" } else { "NO — violation" }
        );
    }
    println!(
        "\nReading: with only C value-locations and O(1) metadata, the adversary\n\
         constructs non-linearizable executions (naive rows; listing2 row once\n\
         values repeat). The Θ(T) DCSS design survives the identical schedules —\n\
         the overhead the lower bound demands is exactly what buys correctness."
    );
}
