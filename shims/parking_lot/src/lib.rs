//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal API-compatible subset of `parking_lot` implemented
//! over `std::sync`. Semantics match what the workspace relies on:
//! `Mutex::lock` never returns a poison error (poisoning is swallowed,
//! like real parking_lot), and `Condvar::wait_for` takes the guard by
//! `&mut` and returns a [`WaitTimeoutResult`].

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (no poisoning on panic).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // out by value while the caller keeps holding `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
