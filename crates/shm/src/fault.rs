//! The unified fault-injection plan (DESIGN.md §13.4): one declarative
//! description of *what goes wrong when*, consumed by every harness that
//! injects faults — the crash-injection tests, the soak binary's
//! randomized fault rounds, and the §11 explorer scenarios — and
//! rendered as a replayable one-line text artifact.
//!
//! The plan generalizes the original single-knob
//! `arm_crash_after_writes(n)` (which survives as a compat wrapper on
//! [`ShmHandle`](crate::ShmHandle)):
//!
//! * **kill** — `SIGKILL` self after exactly N shared protocol writes
//!   (0 = before the first), the crash-injection countdown;
//! * **delay** — sleep `delay_micros` before every `delay_period`-th
//!   shared write, widening the crash windows so races that need a slow
//!   writer actually happen;
//! * **refuse** — report the first N operations as full/empty without
//!   touching shared state, exercising callers' refusal paths (shard
//!   quarantine thresholds, timed-wait retries);
//! * **drop_wakes** — a *driver-side* fault: the harness running the
//!   plan withholds its wake notifications, so only deadline-carrying
//!   waiters make progress. The handle ignores it; drivers honor it.
//!
//! ## The artifact
//!
//! `render` produces `plan:v1:kill=..,delayp=..,delayus=..,refuse=..,dropw=..,seed=..`
//! and `parse` round-trips it, so a failing soak round prints one line
//! that replays the exact fault schedule (the same contract as the
//! explorer's `sched:v1:` artifacts).

use std::fmt;
use std::str::FromStr;

/// A declarative fault schedule. `Default` is the no-fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// `Some(n)`: `SIGKILL` self after `n` shared protocol writes.
    pub kill_after: Option<u64>,
    /// Sleep before every `delay_period`-th shared write (0 = never).
    pub delay_period: u64,
    /// How long each injected delay sleeps, in microseconds.
    pub delay_micros: u64,
    /// Report the first `refuse_first` operations full/empty without
    /// touching shared state.
    pub refuse_first: u64,
    /// Driver-side: withhold wake notifications while running the plan.
    pub drop_wakes: bool,
    /// The seed this plan was derived from (0 = hand-written); carried in
    /// the artifact so a replay can also re-derive sibling plans.
    pub seed: u64,
}

impl FaultPlan {
    /// Derive a randomized plan from a seed (splitmix64 over the seed, so
    /// equal seeds give equal plans on every platform). Used by the soak
    /// binary's fault rounds; kills are bounded to land inside a typical
    /// round's write budget.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let kill_after = match next() % 4 {
            0 => None, // a quarter of rounds run fault-free as control
            _ => Some(next() % 64),
        };
        FaultPlan {
            kill_after,
            delay_period: next() % 8, // 0 disables delays
            delay_micros: 1 + next() % 50,
            refuse_first: next() % 4,
            drop_wakes: next() % 4 == 0,
            seed,
        }
    }

    /// The replayable one-line artifact for this plan.
    pub fn render(&self) -> String {
        format!(
            "plan:v1:kill={},delayp={},delayus={},refuse={},dropw={},seed={}",
            self.kill_after.map_or(-1i64, |n| n as i64),
            self.delay_period,
            self.delay_micros,
            self.refuse_first,
            u64::from(self.drop_wakes),
            self.seed,
        )
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A `plan:v1:` artifact failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPlan(String);

impl fmt::Display for BadPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan artifact: {}", self.0)
    }
}

impl std::error::Error for BadPlan {}

impl FromStr for FaultPlan {
    type Err = BadPlan;

    fn from_str(s: &str) -> Result<FaultPlan, BadPlan> {
        let body = s
            .strip_prefix("plan:v1:")
            .ok_or_else(|| BadPlan(format!("missing plan:v1: prefix in {s:?}")))?;
        let mut plan = FaultPlan::default();
        for field in body.split(',') {
            let (key, val) = field
                .split_once('=')
                .ok_or_else(|| BadPlan(format!("field {field:?} has no '='")))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| BadPlan(format!("field {key}={v:?} is not a number")))
            };
            match key {
                // kill=-1 is the "no kill" sentinel; anything else is a
                // plain write count.
                "kill" if val == "-1" => plan.kill_after = None,
                "kill" => plan.kill_after = Some(num(val)?),
                "delayp" => plan.delay_period = num(val)?,
                "delayus" => plan.delay_micros = num(val)?,
                "refuse" => plan.refuse_first = num(val)?,
                "dropw" => plan.drop_wakes = num(val)? != 0,
                "seed" => plan.seed = num(val)?,
                _ => return Err(BadPlan(format!("unknown field {key:?}"))),
            }
        }
        Ok(plan)
    }
}

/// The per-handle execution state of a plan: countdowns consumed as the
/// protocol writes go by. Lives inside [`ShmHandle`](crate::ShmHandle).
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    kill_after: Option<u64>,
    delay_period: u64,
    delay_micros: u64,
    refuse_left: u64,
    writes_seen: u64,
}

impl FaultState {
    pub(crate) fn apply(&mut self, plan: &FaultPlan) {
        self.kill_after = plan.kill_after;
        self.delay_period = plan.delay_period;
        self.delay_micros = plan.delay_micros;
        self.refuse_left = plan.refuse_first;
        self.writes_seen = 0;
    }

    pub(crate) fn arm_kill(&mut self, n: u64) {
        self.kill_after = Some(n);
    }

    /// Consume one forced refusal, if any are budgeted. Called at
    /// operation entry, before any shared access.
    pub(crate) fn take_refusal(&mut self) -> bool {
        if self.refuse_left > 0 {
            self.refuse_left -= 1;
            true
        } else {
            false
        }
    }

    /// The write gate: fired once on operation entry and once after each
    /// shared protocol write. Injects the scheduled delay, then the kill.
    #[inline]
    pub(crate) fn gate(&mut self) {
        if self.kill_after.is_none() && self.delay_period == 0 {
            return; // no plan armed: stay off the hot path
        }
        self.writes_seen += 1;
        if self.delay_period > 0 && self.writes_seen.is_multiple_of(self.delay_period) {
            // Widen the crash window: nanosleep is allocation-free, so
            // this is safe inside forked children too.
            let ts = libc::timespec {
                tv_sec: 0,
                tv_nsec: (self.delay_micros as i64) * 1_000,
            };
            // SAFETY: valid timespec; EINTR just shortens the delay.
            unsafe {
                libc::nanosleep(&ts, std::ptr::null_mut());
            }
        }
        if let Some(left) = self.kill_after.as_mut() {
            if *left == 0 {
                // SAFETY: killing ourselves with SIGKILL has no
                // preconditions; the process ends here.
                unsafe {
                    libc::kill(libc::getpid(), libc::SIGKILL);
                }
                unreachable!("survived SIGKILL to self");
            }
            *left -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_exactly() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let plan = FaultPlan::from_seed(seed);
            let line = plan.render();
            assert_eq!(line.parse::<FaultPlan>().unwrap(), plan, "{line}");
        }
        // The no-kill case renders kill=-1 and parses back to None.
        let calm = FaultPlan::default();
        assert!(calm.render().contains("kill=-1"));
        assert_eq!(calm.render().parse::<FaultPlan>().unwrap(), calm);
    }

    #[test]
    fn equal_seeds_give_equal_plans() {
        assert_eq!(FaultPlan::from_seed(7), FaultPlan::from_seed(7));
        // And the derivation actually varies across seeds.
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| FaultPlan::from_seed(s).render()).collect();
        assert!(distinct.len() > 16, "seeds must diversify the plans");
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        for bad in [
            "plan:v2:kill=1",
            "kill=1",
            "plan:v1:kill",
            "plan:v1:kill=x",
            "plan:v1:unknown=3",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn refusals_are_consumed_then_exhausted() {
        let mut st = FaultState::default();
        st.apply(&FaultPlan {
            refuse_first: 2,
            ..FaultPlan::default()
        });
        assert!(st.take_refusal());
        assert!(st.take_refusal());
        assert!(!st.take_refusal(), "budget spent: operations proceed");
    }
}
