//! A three-stage stream-processing pipeline over **blocking batched
//! sharded queues** — the scale layer (DESIGN.md §8) plus the waiting
//! stack (§9) applied to the DPDK/SPDK style usage the paper's §1 cites.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```
//!
//! parse → checksum → aggregate, one thread per stage; each pair of
//! stages is connected by a `BlockingQueue<u64, ShardedQueue<OptimalQueue>>`
//! and packets move in `BATCH`-sized runs through `send_all`/`recv_many`.
//! The blocking façade buys two things over the previous raw-queue
//! version: full/empty conditions **park** the stage thread on the shared
//! eventcount (no yield-spinning), and shutdown is **`close()`-driven** —
//! a stage drains until `recv_many` returns empty (closed + drained) and
//! then closes its own downstream queue, so no stage needs to know the
//! packet count and no sentinel value flows through the data path. The
//! aggregate stage verifies **exactly-once delivery** with a bitmap
//! rather than strict order — sharding keeps per-shard FIFO only,
//! exactly the contract the queue documents.

use membq::core::{BlockingQueue, OptimalQueue, ShardedQueue};
use membq::prelude::MemoryFootprint;

const RING: usize = 256;
const SHARDS: usize = 4;
const BATCH: usize = 32;

/// Tiny-workload mode for the example smoke test (`MEMBQ_SMOKE=1`);
/// unset, empty, or `"0"` means full size. Same convention in every
/// heavy example.
fn smoke_mode() -> bool {
    std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Packet count: full-size by default, tiny under smoke mode (the CI
/// run that keeps examples from rotting). Only the parse stage knows it.
fn packet_count() -> u64 {
    if smoke_mode() {
        5_000
    } else {
        200_000
    }
}

type Link = BlockingQueue<u64, ShardedQueue<OptimalQueue>>;

/// Stage 1: "parse" — tag each raw packet id with a length field, emit
/// in batch runs, then close the link: downstream drains and stops.
fn parse(packets: u64, q: &Link) {
    let mut h = q.register();
    let mut batch = Vec::with_capacity(BATCH);
    for id in 1..=packets {
        // Packed "packet": id in low 48 bits, synthetic length above.
        let len = 64 + (id * 37) % 1400;
        batch.push((len << 48) | id);
        if batch.len() == BATCH || id == packets {
            q.send_all(&mut h, std::mem::take(&mut batch))
                .expect("downstream closed the link early");
            batch = Vec::with_capacity(BATCH);
        }
    }
    q.close();
}

/// Stage 2: "checksum" — drain batches until the upstream closes, fold a
/// cheap hash over each packet word, forward; then close downstream.
fn checksum(inq: &Link, outq: &Link) {
    let mut hi = inq.register();
    let mut ho = outq.register();
    loop {
        let buf = inq.recv_many(&mut hi, BATCH);
        if buf.is_empty() {
            break; // upstream closed and fully drained
        }
        let out: Vec<u64> = buf
            .into_iter()
            .map(|pkt| {
                let sum = pkt
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17)
                    .wrapping_add(pkt >> 48);
                // Keep 15 checksum bits with the id: the record must stay
                // a valid 63-bit token (OptimalQueue reserves the top bit).
                let id = pkt & ((1 << 48) - 1);
                (sum & 0x7FFF) << 48 | id
            })
            .collect();
        outq.send_all(&mut ho, out)
            .expect("aggregate closed the link early");
    }
    outq.close();
}

fn main() {
    // Stage links: each admits both endpoint threads (T = 2 per link).
    let q1: Link = BlockingQueue::new(ShardedQueue::<OptimalQueue>::optimal(RING, SHARDS, 2));
    let q2: Link = BlockingQueue::new(ShardedQueue::<OptimalQueue>::optimal(RING, SHARDS, 2));
    println!(
        "stage links: two blocking sharded queues ({SHARDS} shards × {} slots), \
         {} bytes overhead each (Θ(S·T), independent of depth)",
        RING / SHARDS,
        q1.inner_queue().overhead_bytes()
    );

    let packets = packet_count();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| parse(packets, &q1));
        s.spawn(|| checksum(&q1, &q2));

        // Stage 3 (this thread): aggregate with an exactly-once bitmap —
        // sharding relaxes global order, so order is not asserted. Runs
        // until the checksum stage closes q2: no shared count, no
        // sentinel.
        let mut h = q2.register();
        let mut seen = vec![false; packets as usize + 1];
        let mut done = 0u64;
        let mut checksum_mix = 0u64;
        loop {
            let buf = q2.recv_many(&mut h, BATCH);
            if buf.is_empty() {
                break; // pipeline shut down cleanly
            }
            for rec in buf {
                let id = (rec & ((1 << 48) - 1)) as usize;
                assert!(!seen[id], "packet {id} delivered twice");
                seen[id] = true;
                checksum_mix ^= rec >> 48;
                done += 1;
            }
        }
        assert_eq!(done, packets, "close-driven shutdown lost packets");
        assert!(
            seen[1..].iter().all(|&b| b),
            "every packet delivered exactly once"
        );
        let secs = start.elapsed().as_secs_f64();
        println!(
            "processed {packets} packets through 3 stages in {:.3}s \
             ({:.2} M packets/s end-to-end), checksum mix {checksum_mix:#06x}",
            secs,
            packets as f64 / secs / 1e6
        );
    });
    println!(
        "exactly-once delivery verified across both hops; batches of {BATCH} \
         amortize the per-packet queue cost, close() propagates shutdown \
         stage-to-stage (per-shard FIFO, pool semantics)"
    );
}
