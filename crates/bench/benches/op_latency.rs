//! Criterion bench: single uncontended enqueue+dequeue latency for every
//! algorithm (the fast-path cost a library user pays when contention is
//! low — the common case the paper's §1 says standard-library queues must
//! optimize for).
//!
//! Run: `cargo bench -p bq-bench --bench op_latency`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bq_bench::registry::ALL_KINDS;

fn bench_op_latency(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("solo_pair_latency");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for kind in ALL_KINDS {
        {
            let probe = kind.build(4, 1);
            if !probe.sound() {
                continue;
            }
        }
        group.throughput(Throughput::Elements(2));
        group.bench_function(kind.name(), |b| {
            let q = kind.build(1024, 1);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                assert!(q.enqueue(0, v));
                q.dequeue(0).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_op_latency);
criterion_main!(benches);
