//! Property-based sequential specification tests: every queue in the
//! workspace, driven single-threaded through an arbitrary operation
//! sequence, must behave exactly like the sequential bounded queue of
//! Figure 1 — now including the scale layer's batch operations, replayed
//! against the `SeqRingQueue` batch oracle.
//!
//! The sharded kinds relax global FIFO to per-shard FIFO (DESIGN.md §8),
//! so they are excluded from the FIFO-oracle properties (via
//! `DynQueue::fifo`) and covered by their own pool-semantics property:
//! single-threaded, a sharded queue's `Full`/`None` reports are *exact*
//! (the scan is not raced), so acceptance counts and conservation must
//! match the oracle — only the ordering is permuted.

use std::collections::VecDeque;

use membq::bench_registry::{DynQueue, ALL_KINDS};
use membq::core::SeqRingQueue;
use proptest::prelude::*;

/// Smoke-sized case counts under `MEMBQ_SMOKE=1` (CI short path).
fn cases(full: u32) -> u32 {
    let smoke = std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    if smoke {
        (full / 4).max(4)
    } else {
        full
    }
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    Enq,
    Deq,
}

fn op_strategy() -> impl Strategy<Value = Vec<OpKind>> {
    prop::collection::vec(prop_oneof![Just(OpKind::Enq), Just(OpKind::Deq)], 1..200)
}

/// Interleaved single + batch operations for the batch-extension property.
#[derive(Debug, Clone, Copy)]
enum BatchOp {
    Enq,
    Deq,
    EnqMany(usize),
    DeqMany(usize),
}

fn batch_op_strategy() -> impl Strategy<Value = Vec<BatchOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(BatchOp::Enq),
            Just(BatchOp::Deq),
            (0usize..7).prop_map(BatchOp::EnqMany),
            (0usize..7).prop_map(BatchOp::DeqMany),
        ],
        1..120,
    )
}

fn run_against_model(q: &dyn DynQueue, ops: &[OpKind]) {
    let c = q.capacity();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next_token = 1u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            OpKind::Enq => {
                let v = next_token;
                next_token += 1;
                let accepted = q.enqueue(0, v);
                let model_accepts = model.len() < c;
                assert_eq!(
                    accepted,
                    model_accepts,
                    "{}: step {step}: enqueue acceptance diverged (len {})",
                    q.name(),
                    model.len()
                );
                if model_accepts {
                    model.push_back(v);
                }
            }
            OpKind::Deq => {
                let got = q.dequeue(0);
                let want = model.pop_front();
                assert_eq!(got, want, "{}: step {step}: dequeue diverged", q.name());
            }
        }
    }
    // Drain and compare the residue.
    while let Some(want) = model.pop_front() {
        assert_eq!(q.dequeue(0), Some(want), "{}: residue diverged", q.name());
    }
    assert_eq!(q.dequeue(0), None, "{}: queue must end empty", q.name());
}

/// Replay interleaved single/batch ops against the `SeqRingQueue` batch
/// oracle: acceptance counts and delivered values must agree elementwise.
fn run_batches_against_oracle(q: &dyn DynQueue, ops: &[BatchOp]) {
    let mut oracle = SeqRingQueue::with_capacity(q.capacity());
    let mut next_token = 1u64;
    let mut fresh = |n: usize| -> Vec<u64> {
        let vs: Vec<u64> = (0..n as u64).map(|i| next_token + i).collect();
        next_token += n as u64;
        vs
    };
    for (step, op) in ops.iter().enumerate() {
        match *op {
            BatchOp::Enq => {
                let v = fresh(1)[0];
                assert_eq!(
                    q.enqueue(0, v),
                    oracle.enqueue(v).is_ok(),
                    "{}: step {step}: single enqueue diverged",
                    q.name()
                );
            }
            BatchOp::Deq => {
                assert_eq!(
                    q.dequeue(0),
                    oracle.dequeue(),
                    "{}: step {step}: single dequeue diverged",
                    q.name()
                );
            }
            BatchOp::EnqMany(n) => {
                let vs = fresh(n);
                let got = q.enqueue_many(0, &vs);
                let want = oracle.enqueue_many(&vs);
                assert_eq!(
                    got,
                    want,
                    "{}: step {step}: enqueue_many accepted count diverged",
                    q.name()
                );
            }
            BatchOp::DeqMany(max) => {
                let mut got = Vec::new();
                let mut want = Vec::new();
                assert_eq!(
                    q.dequeue_many(0, max, &mut got),
                    oracle.dequeue_many(max, &mut want),
                    "{}: step {step}: dequeue_many count diverged",
                    q.name()
                );
                assert_eq!(
                    got,
                    want,
                    "{}: step {step}: batch values diverged",
                    q.name()
                );
            }
        }
    }
    // Drain both and compare the residue in one batched sweep.
    let mut got = Vec::new();
    let mut want = Vec::new();
    q.dequeue_many(0, q.capacity() + 1, &mut got);
    oracle.dequeue_many(q.capacity() + 1, &mut want);
    assert_eq!(got, want, "{}: residue diverged", q.name());
}

/// The sharded kinds, single-threaded: counts are exact, ordering is a
/// permutation — conservation against a multiset model.
fn run_sharded_pool_semantics(q: &dyn DynQueue, ops: &[BatchOp]) {
    let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let c = q.capacity();
    let mut next_token = 1u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            BatchOp::Enq | BatchOp::EnqMany(_) => {
                let n = if let BatchOp::EnqMany(n) = *op { n } else { 1 };
                let vs: Vec<u64> = (0..n as u64).map(|i| next_token + i).collect();
                next_token += n as u64;
                let accepted = q.enqueue_many(0, &vs);
                // Quiescent sharded full-reports are exact: accept until C.
                assert_eq!(
                    accepted,
                    n.min(c - live.len()),
                    "{}: step {step}: acceptance count not exact when quiescent",
                    q.name()
                );
                live.extend(&vs[..accepted]);
            }
            BatchOp::Deq | BatchOp::DeqMany(_) => {
                let max = if let BatchOp::DeqMany(m) = *op { m } else { 1 };
                let mut out = Vec::new();
                let n = q.dequeue_many(0, max, &mut out);
                assert_eq!(
                    n,
                    max.min(live.len()),
                    "{}: step {step}: dequeue count not exact when quiescent",
                    q.name()
                );
                for v in out {
                    assert!(
                        live.remove(&v),
                        "{}: step {step}: fabricated or duplicated {v}",
                        q.name()
                    );
                }
            }
        }
    }
    let mut rest = Vec::new();
    q.dequeue_many(0, c + 1, &mut rest);
    assert_eq!(rest.len(), live.len(), "{}: residue count", q.name());
    for v in rest {
        assert!(live.remove(&v), "{}: residue fabricated {v}", q.name());
    }
    assert!(live.is_empty(), "{}: elements lost: {live:?}", q.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    #[test]
    fn all_fifo_queues_match_the_sequential_spec(ops in op_strategy(), cap in 1usize..9) {
        for kind in ALL_KINDS {
            // Vyukov's sequence encoding requires C ≥ 2 (see its docs).
            if cap < 2 && matches!(kind, membq::bench_registry::QueueKind::Vyukov) {
                continue;
            }
            let q = kind.build(cap, 1);
            if !q.fifo() {
                continue; // sharded kinds: per-shard FIFO only (see below)
            }
            run_against_model(&*q, &ops);
        }
    }

    #[test]
    fn batch_ops_match_the_seq_ring_oracle(ops in batch_op_strategy(), cap in 2usize..9) {
        // Every FIFO queue in the registry, including the native batch
        // fast paths (segment runs, Vyukov slot runs), against Figure 1's
        // batch oracle.
        for kind in ALL_KINDS {
            let q = kind.build(cap, 1);
            if !q.fifo() {
                continue;
            }
            run_batches_against_oracle(&*q, &ops);
        }
    }

    #[test]
    fn sharded_kinds_obey_pool_semantics_sequentially(
        ops in batch_op_strategy(),
        cap in 4usize..17,
    ) {
        for kind in [
            membq::bench_registry::QueueKind::ShardedOptimal,
            membq::bench_registry::QueueKind::ShardedSegment,
        ] {
            let q = kind.build(cap, 1);
            assert!(!q.fifo(), "sharded kinds must be flagged relaxed");
            run_sharded_pool_semantics(&*q, &ops);
        }
    }

    #[test]
    fn wraparound_heavy_sequences(cap in 2usize..5, rounds in 1usize..40) {
        // Alternating fill/empty exercises many rounds through each slot —
        // the regime where versioned nulls, sequence numbers and descriptor
        // rounds must all keep working.
        for kind in ALL_KINDS {
            let q = kind.build(cap, 1);
            if !q.fifo() {
                // Sharded kinds: fill/empty counts stay exact, order is
                // per-shard — covered by the pool-semantics property.
                continue;
            }
            let mut next = 1u64;
            for _ in 0..rounds {
                for _ in 0..cap {
                    assert!(q.enqueue(0, next), "{}", q.name());
                    next += 1;
                }
                assert!(!q.enqueue(0, next), "{} must report full", q.name());
                for i in 0..cap {
                    let want = next - (cap - i) as u64;
                    assert_eq!(q.dequeue(0), Some(want), "{}", q.name());
                }
                assert_eq!(q.dequeue(0), None, "{} must report empty", q.name());
            }
        }
    }

    #[test]
    fn wraparound_heavy_batch_runs(cap in 2usize..6, rounds in 1usize..30) {
        // The batch paths under maximal wraparound: full-capacity runs,
        // every round, against the oracle.
        for kind in ALL_KINDS {
            let q = kind.build(cap, 1);
            if !q.fifo() {
                continue;
            }
            let mut oracle = SeqRingQueue::with_capacity(cap);
            let mut next = 1u64;
            for _ in 0..rounds {
                let vs: Vec<u64> = (0..(cap + 1) as u64).map(|i| next + i).collect();
                next += vs.len() as u64;
                assert_eq!(
                    q.enqueue_many(0, &vs),
                    oracle.enqueue_many(&vs),
                    "{}: full-capacity run must accept exactly C",
                    q.name()
                );
                let mut got = Vec::new();
                let mut want = Vec::new();
                assert_eq!(
                    q.dequeue_many(0, cap + 1, &mut got),
                    oracle.dequeue_many(cap + 1, &mut want),
                    "{}",
                    q.name()
                );
                assert_eq!(got, want, "{}: wraparound batch order", q.name());
            }
        }
    }
}
