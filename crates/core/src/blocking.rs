//! A blocking façade over the non-blocking queues: `send` waits for space,
//! `recv` waits for an element.
//!
//! The paper's §1 mentions the trivial blocking solution (a lock has Θ(1)
//! overhead but poor scalability). This type shows the practical middle
//! ground real systems use: the *data path* stays the lock-free queue —
//! all transfers go through it, no element is ever protected by a lock —
//! and waiting is delegated to the [`EventCount`] waiter subsystem
//! (DESIGN.md §9), one instance per direction, used **only to park**
//! threads that found the queue full/empty. The memory cost of the
//! parking layer is Θ(1) on top of whatever the underlying queue pays,
//! so e.g. `BlockingQueue<T, OptimalQueue>` is a blocking-API queue with
//! Θ(T) total overhead.
//!
//! ## Wake protocol: wake generations, no timed polling
//!
//! The classic lost-wake race — a counterpart transitions the queue
//! between our failed attempt and our park — is closed by the
//! eventcount's announce → snapshot → re-attempt → park-if-unchanged
//! protocol; see the [`crate::event`] module docs for the full argument.
//! This file contains **no parking machinery of its own**: every wait is
//! an [`EventCount::wait_until`] call whose attempt closure is the
//! non-blocking operation, and every successful transition publishes a
//! wake to the opposite direction via [`EventCount::wake_all`]. The
//! async façade ([`crate::AsyncQueue`]) drives futures off the *same two
//! eventcount instances*, so blocking threads and async tasks can wait
//! on one queue simultaneously. Waits are untimed, the uncontended wake
//! fast path is one atomic load, and blocking throughput has no built-in
//! millisecond floor.
//!
//! ## Shutdown: `close()` with drain semantics
//!
//! [`close`](BlockingQueue::close) disconnects the queue without needing
//! sentinel ("poison") values: subsequent and parked `send`s return the
//! value back as an error, while receivers **drain every element already
//! accepted** and only then observe the closed state (`recv` → `None`,
//! `recv_many` → empty vector). A send racing `close` may still deposit
//! its element — it is never lost: it remains in the queue for later
//! receivers (or the destructor's drain). Conservation is unaffected.

use std::sync::atomic::Ordering;

use crate::simx::SimAtomicBool;

use crate::boxed::{BoxedHandle, BoxedQueue, PointerCapable};
use crate::event::EventCount;

/// Error returned by a blocking/async `send` on a closed queue: carries
/// the unsent value(s) back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by `try_send`: the queue was full or already closed.
/// Either way the value comes back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue holds `C` elements (retry may succeed later).
    Full(T),
    /// The queue is closed (no send will ever succeed again).
    Closed(T),
}

impl<T> TrySendError<T> {
    /// The rejected value, whatever the reason.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

/// Error returned by `try_recv`: nothing to take right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue was observed empty but is still open.
    Empty,
    /// The queue was observed empty after it was closed. (A send racing
    /// `close` may still deposit later; see the module docs.)
    Closed,
}

/// Blocking bounded queue over any pointer-capable token queue.
///
/// ```
/// use bq_core::{BlockingQueue, OptimalQueue};
///
/// let q: BlockingQueue<String, OptimalQueue> =
///     BlockingQueue::new(OptimalQueue::with_capacity_and_threads(8, 2));
/// let mut h = q.register();
/// q.send(&mut h, "job".to_string()).unwrap();
/// assert_eq!(q.recv(&mut h), Some("job".to_string()));
/// q.close();
/// assert_eq!(q.recv(&mut h), None, "closed and drained");
/// ```
pub struct BlockingQueue<T: Send, Q: PointerCapable> {
    inner: BoxedQueue<T, Q>,
    not_full: EventCount,
    not_empty: EventCount,
    closed: SimAtomicBool,
}

impl<T: Send, Q: PointerCapable> BlockingQueue<T, Q> {
    /// Wrap an empty token queue.
    pub fn new(inner: Q) -> Self {
        BlockingQueue {
            inner: BoxedQueue::new(inner),
            not_full: EventCount::new(),
            not_empty: EventCount::new(),
            closed: SimAtomicBool::new(false),
        }
    }

    /// Obtain a per-thread handle.
    pub fn register(&self) -> BoxedHandle<Q> {
        self.inner.register()
    }

    /// The eventcount senders wait on ("not full"). Exposed so the async
    /// façade can register wakers against the same generations, and for
    /// instrumentation (waiter counts in tests).
    pub fn not_full_event(&self) -> &EventCount {
        &self.not_full
    }

    /// The eventcount receivers wait on ("not empty"); see
    /// [`not_full_event`](Self::not_full_event).
    pub fn not_empty_event(&self) -> &EventCount {
        &self.not_empty
    }

    /// Borrow the underlying token queue (footprint accounting and other
    /// read-only introspection — the façade's typed API is the only safe
    /// transfer path).
    pub fn inner_queue(&self) -> &Q {
        self.inner.inner()
    }

    /// Close the queue: wakes every parked sender and receiver. Senders
    /// fail from now on; receivers drain the remaining elements and then
    /// observe the closed state. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.not_full.wake_all();
        self.not_empty.wake_all();
    }

    /// Has [`close`](Self::close) been called?
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Non-blocking enqueue (delegates to the lock-free path).
    pub fn try_send(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), TrySendError<T>> {
        if self.is_closed() {
            return Err(TrySendError::Closed(value));
        }
        match self.inner.enqueue(h, value) {
            Ok(()) => {
                self.not_empty.wake_all();
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Enqueue, waiting while the queue is full. Fails only when the
    /// queue is (or becomes) closed, returning the value.
    pub fn send(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), SendError<T>> {
        let mut item = Some(value);
        self.not_full.wait_until(
            || match self.try_send(h, item.take().expect("item present")) {
                Ok(()) => Some(Ok(())),
                Err(TrySendError::Closed(v)) => Some(Err(SendError(v))),
                Err(TrySendError::Full(v)) => {
                    item = Some(v);
                    None
                }
            },
        )
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self, h: &mut BoxedHandle<Q>) -> Result<T, TryRecvError> {
        match self.inner.dequeue(h) {
            Some(v) => {
                self.not_full.wake_all();
                Ok(v)
            }
            None => Err(if self.is_closed() {
                TryRecvError::Closed
            } else {
                TryRecvError::Empty
            }),
        }
    }

    /// Dequeue, waiting while the queue is empty. Returns `None` only
    /// once the queue is closed **and** observed empty after the closed
    /// flag (drain semantics: every accepted element is delivered first).
    pub fn recv(&self, h: &mut BoxedHandle<Q>) -> Option<T> {
        self.not_empty.wait_until(|| match self.try_recv(h) {
            Ok(v) => Some(Some(v)),
            // Closed: one final drain check *after* observing the flag
            // catches elements deposited between the failed dequeue and
            // the flag read.
            Err(TryRecvError::Closed) => Some(self.try_recv(h).ok()),
            Err(TryRecvError::Empty) => None,
        })
    }

    /// Non-blocking batch enqueue: accepts a prefix (through the inner
    /// queue's batch path) and returns the rejected suffix — everything,
    /// untouched, when the queue is closed (check
    /// [`is_closed`](Self::is_closed) to tell the cases apart).
    pub fn try_send_many(&self, h: &mut BoxedHandle<Q>, items: Vec<T>) -> Vec<T> {
        if self.is_closed() {
            return items;
        }
        let total = items.len();
        let rejected = self.inner.enqueue_many(h, items);
        if rejected.len() < total {
            self.not_empty.wake_all();
        }
        rejected
    }

    /// Batch enqueue, waiting until **every** item is accepted. On close,
    /// returns the unsent suffix (already-accepted items stay in the
    /// queue for receivers to drain).
    pub fn send_all(&self, h: &mut BoxedHandle<Q>, items: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        // Box once and retry on the token run: a parked batch would
        // otherwise round-trip every pending item through Box on each
        // wake. (If a retry panics, the unsent suffix leaks its boxes —
        // a memory leak only, and the inner enqueue does not panic on
        // tokens produced by `box_token`.)
        let tokens: Vec<u64> = items
            .into_iter()
            .map(BoxedQueue::<T, Q>::box_token)
            .collect();
        let mut sent = 0usize;
        self.not_full.wait_until(|| {
            if self.is_closed() {
                let unsent = tokens[sent..]
                    .iter()
                    .map(|&t| BoxedQueue::<T, Q>::unbox_token(t))
                    .collect();
                sent = tokens.len(); // the suffix's ownership moved out
                return Some(Err(SendError(unsent)));
            }
            let n = self.inner.enqueue_tokens(h, &tokens[sent..]);
            if n > 0 {
                self.not_empty.wake_all();
            }
            sent += n;
            (sent == tokens.len()).then_some(Ok(()))
        })
    }

    /// Non-blocking batch dequeue into `out`; returns the count taken.
    pub fn try_recv_many(&self, h: &mut BoxedHandle<Q>, max: usize, out: &mut Vec<T>) -> usize {
        let n = self.inner.dequeue_many(h, max, out);
        if n > 0 {
            self.not_full.wake_all();
        }
        n
    }

    /// Batch dequeue, waiting until at least one element arrives; returns
    /// 1..=`max` values. An **empty vector** means the queue is closed
    /// and fully drained (for `max > 0` that is the only way it can be
    /// empty).
    pub fn recv_many(&self, h: &mut BoxedHandle<Q>, max: usize) -> Vec<T> {
        assert!(max > 0, "recv_many needs a positive batch bound");
        // One buffer across park/retry cycles; failed attempts push
        // nothing into it and allocate nothing.
        let mut out = Vec::new();
        self.not_empty.wait_until(|| {
            if self.try_recv_many(h, max, &mut out) > 0 {
                return Some(());
            }
            if self.is_closed() {
                // Final drain check after observing the flag, as in recv.
                self.try_recv_many(h, max, &mut out);
                return Some(());
            }
            None
        });
        out
    }

    /// Capacity of the underlying queue.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Approximate emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalQueue;
    use crate::sharded::ShardedQueue;
    use std::sync::Arc;
    use std::time::Duration;

    fn make(c: usize, t: usize) -> BlockingQueue<u64, OptimalQueue> {
        BlockingQueue::new(OptimalQueue::with_capacity_and_threads(c, t))
    }

    #[test]
    fn try_paths_mirror_inner_queue() {
        let q = make(2, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        q.try_send(&mut h, 2).unwrap();
        assert_eq!(q.try_send(&mut h, 3), Err(TrySendError::Full(3)));
        assert_eq!(q.try_recv(&mut h), Ok(1));
        assert_eq!(q.try_recv(&mut h), Ok(2));
        assert_eq!(q.try_recv(&mut h), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_blocks_until_space() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h2 = q2.register();
            // Blocks until the main thread drains.
            q2.send(&mut h2, 2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_recv(&mut h), Ok(1));
        sender.join().unwrap();
        assert_eq!(q.recv(&mut h), Some(2));
    }

    #[test]
    fn recv_blocks_until_element() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut h = q.register();
        q.send(&mut h, 77).unwrap();
        assert_eq!(receiver.join().unwrap(), Some(77));
    }

    #[test]
    fn blocking_transfer_full_stream() {
        let q = Arc::new(make(4, 2));
        let n = 5_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=n {
                q2.send(&mut h, v).unwrap();
            }
        });
        let mut h = q.register();
        for expect in 1..=n {
            assert_eq!(q.recv(&mut h), Some(expect), "single-producer order");
        }
        producer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn batch_send_all_blocks_until_everything_fits() {
        let q = Arc::new(make(2, 2));
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            // 5 items through a 2-slot queue: must park at least once.
            q2.send_all(&mut h, (1..=5).collect()).unwrap();
        });
        let mut h = q.register();
        let mut got = Vec::new();
        while got.len() < 5 {
            got.extend(q.recv_many(&mut h, 3));
        }
        sender.join().unwrap();
        assert_eq!(got, vec![1, 2, 3, 4, 5], "SPSC batch order preserved");
        assert!(q.is_empty());
    }

    #[test]
    fn blocking_over_sharded_queue_composes() {
        // The Θ(1) parking layer stacks on the scale layer: a blocking
        // sharded queue with batch transfer.
        let q: Arc<BlockingQueue<u64, ShardedQueue<OptimalQueue>>> = Arc::new(BlockingQueue::new(
            ShardedQueue::<OptimalQueue>::optimal(8, 4, 2),
        ));
        let n = 2_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            let mut next = 1u64;
            while next <= n {
                let batch: Vec<u64> = (next..=(next + 7).min(n)).collect();
                next += batch.len() as u64;
                q2.send_all(&mut h, batch).unwrap();
            }
        });
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while seen.len() < n as usize {
            for v in q.recv_many(&mut h, 8) {
                assert!(seen.insert(v), "duplicate {v}");
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty(), "exact conservation through both layers");
    }

    #[test]
    fn many_parked_senders_all_wake() {
        let q = Arc::new(make(1, 4));
        let mut h = q.register();
        q.try_send(&mut h, 99).unwrap();
        let mut senders = Vec::new();
        for v in 1..=3u64 {
            let q = Arc::clone(&q);
            senders.push(std::thread::spawn(move || {
                let mut h = q.register();
                q.send(&mut h, v).unwrap();
            }));
        }
        // All three park on the full queue; drain one slot at a time.
        let mut got = vec![q.recv(&mut h).unwrap()];
        for _ in 0..3 {
            got.push(q.recv(&mut h).unwrap());
        }
        for s in senders {
            s.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 99]);
        assert!(q.is_empty());
    }

    #[test]
    fn close_fails_senders_and_drains_receivers() {
        let q = make(4, 1);
        let mut h = q.register();
        q.send(&mut h, 1).unwrap();
        q.send(&mut h, 2).unwrap();
        q.close();
        assert!(q.is_closed());
        // Senders see errors, values come back.
        assert_eq!(q.send(&mut h, 3), Err(SendError(3)));
        assert_eq!(q.try_send(&mut h, 4), Err(TrySendError::Closed(4)));
        assert_eq!(q.try_send_many(&mut h, vec![5, 6]), vec![5, 6]);
        assert_eq!(q.send_all(&mut h, vec![7, 8]), Err(SendError(vec![7, 8])));
        // Receivers drain, then observe closed.
        assert_eq!(q.recv(&mut h), Some(1));
        assert_eq!(q.recv_many(&mut h, 4), vec![2]);
        assert_eq!(q.recv(&mut h), None);
        assert_eq!(q.recv_many(&mut h, 4), Vec::<u64>::new());
        assert_eq!(q.try_recv(&mut h), Err(TryRecvError::Closed));
    }

    #[test]
    fn close_wakes_parked_receiver() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(
            receiver.join().unwrap(),
            None,
            "woken by close, not a value"
        );
    }

    #[test]
    fn close_wakes_parked_sender_with_value_back() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.send(&mut h, 2)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
        // The accepted element survives for draining.
        assert_eq!(q.recv(&mut h), Some(1));
        assert_eq!(q.recv(&mut h), None);
    }

    #[test]
    fn close_mid_send_all_returns_unsent_suffix() {
        let q = Arc::new(make(2, 2));
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h = q2.register();
            // 5 items through 2 slots: parks after the first 2.
            q2.send_all(&mut h, (1..=5).collect())
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let unsent = sender.join().unwrap().unwrap_err().0;
        let mut h = q.register();
        let mut drained = Vec::new();
        while let Some(v) = q.recv(&mut h) {
            drained.push(v);
        }
        // Conservation: accepted prefix + returned suffix = everything.
        drained.extend(unsent.iter().copied());
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn waiter_accounting_rises_and_returns_to_zero() {
        // The façade's waiting state is exactly the two eventcounts (the
        // waiter subsystem the async façade also reads): a parked
        // receiver must become visible through the shared
        // instrumentation and disappear from it after the hand-off.
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        // The receiver announces itself before parking; wait for that.
        while q.not_empty_event().waiter_count() == 0 {
            std::thread::yield_now();
        }
        let mut h = q.register();
        q.send(&mut h, 9).unwrap();
        assert_eq!(receiver.join().unwrap(), Some(9));
        assert_eq!(q.not_empty_event().waiter_count(), 0, "waiter released");
        assert_eq!(q.not_empty_event().registered_wakers(), 0);
        assert_eq!(q.not_full_event().waiter_count(), 0);
    }
}
