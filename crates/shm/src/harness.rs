//! A minimal `fork` harness for multi-process tests, benches and
//! examples: spawn a child running a closure, wait for it with a
//! deadline (so a wedged queue fails a test instead of hanging it), and
//! decode how it died.
//!
//! ## Fork discipline (IMPORTANT)
//!
//! The child of a multi-threaded parent inherits a single thread and a
//! *snapshot* of all process state — including any lock another thread
//! held at fork time, which would deadlock the child on first use. The
//! closure passed to [`fork_child`] must therefore restrict itself to
//! operations on shared-memory segments (which are lock-free by
//! construction) and must not rely on the allocator, stdio buffering, or
//! any std synchronization. The child always leaves via `_exit` (no
//! atexit handlers, no unwinding, no buffers flushed); a panic in the
//! closure becomes `_exit(101)`.

use std::time::{Duration, Instant};

/// How a child ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildExit {
    /// Normal exit with this status code.
    Exited(i32),
    /// Terminated by this signal (e.g. `libc::SIGKILL`).
    Signaled(i32),
}

impl ChildExit {
    /// Did the child exit normally with status 0?
    pub fn success(&self) -> bool {
        matches!(self, ChildExit::Exited(0))
    }
}

/// A forked child process. Must be waited on (reaping is what arms the
/// authoritative dead-flag path); dropping without waiting leaks a
/// zombie until the parent exits.
#[derive(Debug)]
pub struct Child {
    pid: libc::pid_t,
}

/// Fork a child that runs `f` and then `_exit(0)`.
///
/// See the module docs for what `f` may safely do. The closure's panics
/// are caught and turned into exit status 101 (mirroring Rust test
/// binaries) — unwinding out of a forked context is never allowed.
pub fn fork_child<F: FnOnce()>(f: F) -> std::io::Result<Child> {
    // SAFETY: fork has no preconditions; the child-side restrictions are
    // the caller contract documented on this function.
    let pid = unsafe { libc::fork() };
    if pid < 0 {
        return Err(std::io::Error::last_os_error());
    }
    if pid == 0 {
        // Child. Run the closure and leave without touching any parent
        // state (no unwinding past this frame, no atexit, no stdio flush).
        let status = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(()) => 0,
            Err(_) => 101,
        };
        // SAFETY: terminating the child; nothing below this runs.
        unsafe { libc::_exit(status) };
    }
    Ok(Child { pid })
}

impl Child {
    /// The child's pid.
    pub fn pid(&self) -> u32 {
        self.pid as u32
    }

    fn decode(status: libc::c_int) -> ChildExit {
        if libc::WIFSIGNALED(status) {
            ChildExit::Signaled(libc::WTERMSIG(status))
        } else {
            ChildExit::Exited(libc::WEXITSTATUS(status))
        }
    }

    /// Block until the child exits and reap it.
    pub fn wait(self) -> std::io::Result<ChildExit> {
        let mut status: libc::c_int = 0;
        // SAFETY: waiting on our own child with a valid status pointer.
        let r = unsafe { libc::waitpid(self.pid, &mut status, 0) };
        if r < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self::decode(status))
    }

    /// Wait for up to `timeout`, polling with `WNOHANG`. Returns
    /// `Ok(None)` if the child is still running at the deadline (the
    /// caller decides whether that is a wedge); `Ok(Some(_))` reaps it.
    pub fn wait_deadline(&mut self, timeout: Duration) -> std::io::Result<Option<ChildExit>> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut status: libc::c_int = 0;
            // SAFETY: as in `wait`, with WNOHANG.
            let r = unsafe { libc::waitpid(self.pid, &mut status, libc::WNOHANG) };
            if r < 0 {
                return Err(std::io::Error::last_os_error());
            }
            if r == self.pid {
                return Ok(Some(Self::decode(status)));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Send `SIGKILL` to the child (it still needs waiting afterwards).
    ///
    /// Until the wait, the child lingers as a **zombie**, which
    /// `kill(pid, 0)` still reports as existing — so the liveness
    /// oracle's ESRCH probe will NOT confirm the death, and claim steals
    /// or `recover` sweeps keyed on it will refuse to fire. Reap via
    /// [`wait`](Self::wait)/[`wait_deadline`](Self::wait_deadline) (or
    /// set the authoritative flag with
    /// [`ShmSegment::mark_dead`](crate::ShmSegment::mark_dead) after
    /// reaping) before expecting survivors to take over the victim's
    /// holdings.
    pub fn kill(&self) {
        // SAFETY: signaling our own child.
        unsafe {
            libc::kill(self.pid, libc::SIGKILL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::ShmSegment;
    use std::sync::atomic::Ordering;
    use std::sync::Mutex;

    /// Forky tests in this binary are serialized: fork from a test
    /// binary is only safe while no *other* test thread is mid-allocation
    /// or holding a lock the child might need.
    static FORK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn child_writes_into_shared_segment() {
        let _g = FORK_LOCK.lock().unwrap();
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let child = fork_child(|| {
            seg.scratch(0).store(1234, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(child.wait().unwrap(), ChildExit::Exited(0));
        assert_eq!(
            seg.scratch(0).load(Ordering::SeqCst),
            1234,
            "anonymous MAP_SHARED mapping is shared, not copied, across fork"
        );
    }

    #[test]
    fn killed_child_is_decoded_and_flaggable() {
        let _g = FORK_LOCK.lock().unwrap();
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let child = fork_child(|| loop {
            // SAFETY: yield has no preconditions.
            unsafe {
                libc::sched_yield();
            }
        })
        .unwrap();
        let idx = seg.register_proc(child.pid());
        assert!(!seg.proc_is_dead(idx), "spinning child is alive");
        child.kill();
        assert_eq!(child.wait().unwrap(), ChildExit::Signaled(libc::SIGKILL));
        // Reaped ⇒ the parent may authoritatively flag the slot; the
        // ESRCH probe now also answers dead.
        seg.mark_dead(idx);
        assert!(seg.proc_is_dead(idx));
    }

    #[test]
    fn wait_deadline_reports_still_running() {
        let _g = FORK_LOCK.lock().unwrap();
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let mut child = fork_child(|| {
            while seg.scratch(1).load(Ordering::SeqCst) == 0 {
                // SAFETY: yield has no preconditions.
                unsafe {
                    libc::sched_yield();
                }
            }
        })
        .unwrap();
        assert_eq!(
            child.wait_deadline(Duration::from_millis(30)).unwrap(),
            None,
            "child waits for the release word"
        );
        seg.scratch(1).store(1, Ordering::SeqCst);
        let end = child.wait_deadline(Duration::from_secs(10)).unwrap();
        assert_eq!(end, Some(ChildExit::Exited(0)));
    }
}
