//! Bounded-backoff retry: the fault-containment replacement for bare
//! spin loops.
//!
//! The steal/claim paths (shard rotation here, endpoint claims and
//! dead-owner takeovers in `bq-shm`) all have the same shape: an
//! optimistic attempt that can lose a race and should be retried — but a
//! *bare* `loop { try }` turns a wedged counterpart into a 100%-CPU hang.
//! [`Backoff`] provides the standard spin → yield escalation (the
//! `crossbeam-utils` idiom) and [`with_backoff`] bounds the number of
//! attempts, so every retry loop in the tree has an explicit failure
//! outcome instead of an implicit infinite one.

use std::hint;
use std::thread;

/// Exponential spin/yield backoff for optimistic-concurrency retry loops.
///
/// Each [`snooze`](Backoff::snooze) doubles the spin count up to
/// `2^SPIN_LIMIT`, after which it yields the thread instead — contending
/// peers get cache-line relief first, the scheduler second. The struct is
/// deliberately tiny (one counter) and lives on the caller's stack.
#[derive(Debug, Clone, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps spent busy-spinning before escalating to `yield_now`.
    const SPIN_LIMIT: u32 = 6;

    /// Fresh backoff (first snooze spins just once).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Wait a little longer than last time: `2^step` spin hints while
    /// `step < SPIN_LIMIT`, a thread yield afterwards.
    pub fn snooze(&mut self) {
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// Has the backoff escalated past pure spinning? Callers use this to
    /// switch strategies (e.g. park instead of steal) once contention is
    /// evidently persistent.
    pub fn is_yielding(&self) -> bool {
        self.step >= Self::SPIN_LIMIT
    }

    /// Restart the escalation (after a successful attempt).
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

/// Retry `attempt` with escalating backoff for at most `max_attempts`
/// tries; `None` means the bound was exhausted with every attempt
/// refused. The first attempt runs immediately (no backoff before it),
/// so `with_backoff(1, f)` is exactly one bare try.
pub fn with_backoff<R>(max_attempts: usize, mut attempt: impl FnMut() -> Option<R>) -> Option<R> {
    let mut backoff = Backoff::new();
    for i in 0..max_attempts {
        if i > 0 {
            backoff.snooze();
        }
        if let Some(r) = attempt() {
            return Some(r);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_runs_without_backoff() {
        let mut calls = 0;
        assert_eq!(
            with_backoff(1, || {
                calls += 1;
                Some(7)
            }),
            Some(7)
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn bounded_attempts_then_gives_up() {
        let mut calls = 0;
        let r: Option<()> = with_backoff(5, || {
            calls += 1;
            None
        });
        assert_eq!(r, None, "exhausted bound is an explicit failure");
        assert_eq!(calls, 5);
    }

    #[test]
    fn succeeds_midway_and_stops_retrying() {
        let mut calls = 0;
        let r = with_backoff(100, || {
            calls += 1;
            (calls == 3).then_some(calls)
        });
        assert_eq!(r, Some(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn backoff_escalates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..10 {
            b.snooze();
        }
        assert!(b.is_yielding(), "persistent contention is visible");
        b.reset();
        assert!(!b.is_yielding());
    }
}
