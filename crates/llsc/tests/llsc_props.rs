//! Property-based tests for the LL/SC emulation: the cell must behave as a
//! linearizable register whose `SC` succeeds exactly when no store
//! intervened since the matching `LL` — including A→B→A histories.

use bq_llsc::LlScCell;
use proptest::prelude::*;

/// A script of operations against one cell, replayed against a reference
/// model that tracks the true modification count.
#[derive(Debug, Clone)]
enum Step {
    /// Take (or retake) the link via LL into register `r` (0..4).
    Ll(usize),
    /// Attempt SC through register `r` with this value.
    Sc(usize, u32),
    /// Unconditional store.
    Store(u32),
}

fn step_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4).prop_map(Step::Ll),
            ((0usize..4), any::<u32>()).prop_map(|(r, v)| Step::Sc(r, v)),
            any::<u32>().prop_map(Step::Store),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sc_succeeds_iff_no_intervening_store(steps in step_strategy(), init in any::<u32>()) {
        let cell = LlScCell::new(init);
        // Model: current value + a global modification counter; each link
        // register remembers the counter at its LL.
        let mut value = init;
        let mut mods = 0u64;
        let mut links: [Option<(u64, bq_llsc::Link)>; 4] = [None, None, None, None];

        for step in steps {
            match step {
                Step::Ll(r) => {
                    let (v, link) = cell.ll();
                    prop_assert_eq!(v, value, "LL must read the current value");
                    links[r] = Some((mods, link));
                }
                Step::Sc(r, new) => {
                    let Some((seen_mods, link)) = links[r] else { continue };
                    let expect_ok = seen_mods == mods;
                    let ok = cell.sc(link, new);
                    prop_assert_eq!(
                        ok, expect_ok,
                        "SC outcome must track intervening stores exactly"
                    );
                    if ok {
                        value = new;
                        mods += 1;
                        // The successful SC invalidates every other link.
                    }
                }
                Step::Store(v) => {
                    cell.store(v);
                    value = v;
                    mods += 1;
                }
            }
            prop_assert_eq!(cell.load(), value);
        }
    }

    #[test]
    fn aba_always_detected(a in any::<u32>(), b in any::<u32>()) {
        prop_assume!(a != b);
        let cell = LlScCell::new(a);
        let (_, stale) = cell.ll();
        cell.store(b);
        cell.store(a); // value restored — tag is not
        prop_assert!(!cell.sc(stale, 99), "A→B→A must invalidate the link");
        prop_assert_eq!(cell.load(), a);
    }
}
