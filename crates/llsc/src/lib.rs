//! # bq-llsc — software Load-Link / Store-Conditional cells
//!
//! Section 2.3 of *Memory Bounds for Concurrent Bounded Queues* shows that a
//! bounded queue with **O(1)** memory overhead is possible when the hardware
//! provides LL/SC, because LL/SC is ABA-immune: an `SC` fails if the cell was
//! written at all since the matching `LL`, even if the value was restored.
//!
//! Stable Rust (and x86-64) exposes only compare-and-swap, so this crate
//! provides the closest software equivalent, [`LlScCell`]: a 32-bit value and
//! a 32-bit modification tag packed into one `AtomicU64`. Every successful
//! `SC` increments the tag, so an `SC` whose link observed an older tag fails
//! — exactly the ABA-immunity Listing 3 relies on.
//!
//! ## Fidelity notes (see DESIGN.md §3)
//!
//! * The emulation narrows values to 32 bits and *spends* 32 tag bits per
//!   cell. On real LL/SC hardware those bits are free; in the overhead
//!   accounting of the reproduction we report them explicitly as
//!   per-slot-metadata cost of emulating LL/SC on CAS hardware, which is the
//!   paper's own point in §2.5 ("stealing bits").
//! * Hardware LL/SC may fail spuriously; this emulation never does, which
//!   only makes the queue built on top *more* live, never less correct.
//! * The tag wraps after 2³² successful stores to one cell. All tests and
//!   benchmarks stay far below that; a wrap would need the same cell to be
//!   written 2³² times between one thread's `LL` and `SC`.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// A word supporting `load`, `ll`, and `sc` with ABA-immune semantics.
///
/// The cell stores a `u32` value. [`LlScCell::ll`] returns the current value
/// together with a [`Link`] token; [`LlScCell::sc`] installs a new value only
/// if the cell has not been successfully stored to since that `LL`.
///
/// ```
/// use bq_llsc::LlScCell;
///
/// let cell = LlScCell::new(5);
/// let (v, link) = cell.ll();
/// assert_eq!(v, 5);
/// // A → B → A: the value is restored, but the link is dead — no ABA.
/// cell.store(6);
/// cell.store(5);
/// assert!(!cell.sc(link, 99));
/// assert_eq!(cell.load(), 5);
/// ```
#[derive(Debug)]
pub struct LlScCell {
    /// Layout: `(tag: u32) << 32 | (value: u32)`.
    word: AtomicU64,
}

/// Proof of a prior `LL` on a specific cell.
///
/// A `Link` is only meaningful for the cell that produced it; using it with a
/// different cell makes the `SC` semantics vacuous (it compares tags of the
/// wrong cell). The queue code in `bq-core` always pairs them correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    observed: u64,
}

impl Link {
    /// The value that was read by the `LL` that produced this link.
    #[inline]
    pub fn value(&self) -> u32 {
        unpack_value(self.observed)
    }
}

#[inline]
fn pack(tag: u32, value: u32) -> u64 {
    ((tag as u64) << 32) | value as u64
}

#[inline]
fn unpack_value(word: u64) -> u32 {
    word as u32
}

#[inline]
fn unpack_tag(word: u64) -> u32 {
    (word >> 32) as u32
}

impl LlScCell {
    /// Create a cell holding `value` with tag 0.
    pub fn new(value: u32) -> Self {
        LlScCell {
            word: AtomicU64::new(pack(0, value)),
        }
    }

    /// Plain read of the current value (no link established).
    #[inline]
    pub fn load(&self) -> u32 {
        unpack_value(self.word.load(Ordering::SeqCst))
    }

    /// Load-link: read the current value and remember the modification tag.
    #[inline]
    pub fn ll(&self) -> (u32, Link) {
        let w = self.word.load(Ordering::SeqCst);
        (unpack_value(w), Link { observed: w })
    }

    /// Store-conditional: install `new` iff the cell has not been stored to
    /// since the `LL` that produced `link`. Returns `true` on success.
    ///
    /// On success the modification tag advances, invalidating every other
    /// outstanding link on this cell.
    #[inline]
    pub fn sc(&self, link: Link, new: u32) -> bool {
        let next = pack(unpack_tag(link.observed).wrapping_add(1), new);
        self.word
            .compare_exchange(link.observed, next, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Check whether the link is still valid (no store since the `LL`).
    ///
    /// Advisory only: a successful `validate` does not reserve anything.
    #[inline]
    pub fn validate(&self, link: Link) -> bool {
        self.word.load(Ordering::SeqCst) == link.observed
    }

    /// Unconditional store. Advances the tag so all outstanding links fail.
    ///
    /// Provided for initialization paths; the Listing 3 queue never needs it
    /// after construction.
    pub fn store(&self, value: u32) {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let next = pack(unpack_tag(cur).wrapping_add(1), value);
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(w) => cur = w,
            }
        }
    }

    /// The modification tag, exposed for tests and diagnostics.
    pub fn tag(&self) -> u32 {
        unpack_tag(self.word.load(Ordering::SeqCst))
    }
}

/// Size in bytes of the *tag* portion of a cell — the emulation overhead the
/// reproduction charges per slot (see crate docs).
pub const EMULATION_TAG_BYTES: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ll_sc_basic() {
        let c = LlScCell::new(7);
        let (v, link) = c.ll();
        assert_eq!(v, 7);
        assert!(c.sc(link, 9));
        assert_eq!(c.load(), 9);
    }

    #[test]
    fn sc_fails_after_intervening_store() {
        let c = LlScCell::new(1);
        let (_, link) = c.ll();
        let (_, other) = c.ll();
        assert!(c.sc(other, 2));
        // The first link observed tag 0 which is now stale.
        assert!(!c.sc(link, 3));
        assert_eq!(c.load(), 2);
    }

    #[test]
    fn sc_is_aba_immune() {
        // A -> B -> A must still invalidate an old link: this is exactly the
        // property CAS lacks and the paper's Listing 3 depends on.
        let c = LlScCell::new(10);
        let (v, stale) = c.ll();
        assert_eq!(v, 10);

        let (_, l1) = c.ll();
        assert!(c.sc(l1, 20)); // A -> B
        let (_, l2) = c.ll();
        assert!(c.sc(l2, 10)); // B -> A (value restored!)

        assert_eq!(c.load(), 10);
        assert!(!c.sc(stale, 99), "SC must fail despite the value matching");
        assert_eq!(c.load(), 10);
    }

    #[test]
    fn validate_reflects_staleness() {
        let c = LlScCell::new(0);
        let (_, link) = c.ll();
        assert!(c.validate(link));
        c.store(0); // same value, but a store happened
        assert!(!c.validate(link));
    }

    #[test]
    fn store_bumps_tag() {
        let c = LlScCell::new(0);
        let t0 = c.tag();
        c.store(5);
        c.store(6);
        assert_eq!(c.tag(), t0 + 2);
        assert_eq!(c.load(), 6);
    }

    #[test]
    fn link_value_accessor() {
        let c = LlScCell::new(42);
        let (_, link) = c.ll();
        assert_eq!(link.value(), 42);
    }

    #[test]
    fn concurrent_sc_only_one_wins() {
        // Many threads LL the same state and race to SC; exactly one SC per
        // tag generation can succeed.
        let c = Arc::new(LlScCell::new(0));
        let threads = 8;
        let iters = 200;
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u32;
                for i in 0..iters {
                    let (_, link) = c.ll();
                    if c.sc(link, (t * iters + i) as u32) {
                        wins += 1;
                    }
                    std::thread::yield_now();
                }
                wins
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Total successful SCs equals the tag advance.
        assert_eq!(total, c.tag());
    }
}
