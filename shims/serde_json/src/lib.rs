//! Offline stand-in for `serde_json`: renders values implementing the shim
//! `serde::Serialize` trait. Vendored because the build environment has no
//! crates.io access. Serialization cannot fail for the supported types, so
//! the `Result` layer exists purely for API compatibility.

#![deny(missing_docs)]

use serde::Serialize;

/// Serialization error (never produced; API compatibility only).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent a compact JSON document. Tracks string/escape state so
/// structural characters inside string literals are left alone.
fn prettify(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    // Keep empty containers on one line.
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    indent(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                indent(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&Some(1usize)).unwrap(), "1");
        assert_eq!(to_string(&None::<usize>).unwrap(), "null");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_preserves_strings() {
        let pretty = to_string_pretty(&vec!["a{b".to_string(), "c,d".to_string()]).unwrap();
        assert!(pretty.contains("\"a{b\""), "{pretty}");
        assert!(pretty.contains("\"c,d\""), "{pretty}");
    }
}
