//! Vyukov's bounded MPMC queue — the de-facto industrial design the paper
//! cites [24]: each slot carries a 64-bit **sequence number** that encodes
//! which round may read/write it. That per-slot word is exactly the Θ(C)
//! metadata the paper's lower bound says you cannot get rid of without
//! paying Θ(T) elsewhere.
//!
//! ## Semantic relaxation (paper §1, "ring buffers … relax the semantics")
//!
//! `enqueue` may report *full* spuriously: if the consumer of the same slot
//! one round earlier has claimed it (won the head CAS) but not yet released
//! its sequence word, the producer observes a stale sequence and fails even
//! though fewer than `C` elements are present. Symmetrically `dequeue` may
//! report *empty* while an in-flight producer holds the head slot. This is
//! inherent to the design and is precisely the trade-off the paper predicts
//! Θ(C)-overhead ring buffers must make somewhere: strict bounded-queue
//! linearizability, the progress guarantee, or constant overhead. Under a
//! retry discipline (as in all workloads here) no element is ever lost or
//! duplicated.

use bq_core::queue::{ConcurrentQueue, Full};
use bq_core::relocatable::{PadAtomicU64, RelocBuf, RelocRing, RingReadGrant, RingWriteGrant};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

/// Vyukov bounded MPMC queue (Θ(C) overhead baseline).
///
/// Since the relocatable refactor (DESIGN.md §10) this is a thin heap-backed
/// wrapper: the sequenced-slot array and the cache-padded counters live in a
/// [`RelocRing<u64>`](bq_core::relocatable::RelocRing) layout inside an owned
/// [`RelocBuf`](bq_core::relocatable::RelocBuf), and the protocol itself is
/// the ring's `vy_*` methods — the same bytes `bq-shm` places into an
/// `mmap`-shared segment.
pub struct VyukovQueue {
    _buf: RelocBuf,
    ring: RelocRing<u64>,
}

// SAFETY: the sequence protocol gives each slot a unique writer per round;
// readers synchronize through `seq` (Acquire/Release pairs). The raw
// pointers inside the view target memory owned by `self.buf`.
unsafe impl Send for VyukovQueue {}
unsafe impl Sync for VyukovQueue {}

/// `VyukovQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct VyukovHandle;

impl VyukovQueue {
    /// Create a queue of capacity `c ≥ 2`.
    ///
    /// Capacity 1 is rejected: with a single slot, the "written this
    /// round" sequence value (`pos + 1`) collides with the next round's
    /// "free" expectation (`pos + C = pos + 1`), making slot states
    /// ambiguous. This is an inherent constraint of the original
    /// algorithm's encoding, not of this port.
    pub fn with_capacity(c: usize) -> Self {
        assert!(c >= 2, "Vyukov's sequence encoding requires capacity ≥ 2");
        let buf = RelocBuf::zeroed(RelocRing::<u64>::layout(c));
        // SAFETY: `buf` was allocated with exactly `layout(c)` and is
        // exclusively owned here.
        let ring = unsafe { RelocRing::<u64>::init_at(buf.base(), c) };
        VyukovQueue { _buf: buf, ring }
    }

    /// Reserve up to `n` slots for a zero-copy in-place write (DESIGN.md
    /// §12): the run is claimed with one tail CAS and handed out as
    /// `&mut [MaybeUninit<u64>]`; committed slots publish through the
    /// normal sequence-word protocol, the rest abort (consumers skip
    /// them). `None` when full (same relaxed report as `enqueue`).
    pub fn try_reserve(&self, n: usize) -> Option<RingWriteGrant<'_, u64>> {
        self.ring.try_reserve(n)
    }

    /// Claim up to `n` published elements for a zero-copy in-place read
    /// (DESIGN.md §12), borrowing them as `&[u64]` straight over the
    /// slot memory; the slots recycle when the grant drops. `None` when
    /// empty (same relaxed report as `dequeue`).
    pub fn try_read(&self, n: usize) -> Option<RingReadGrant<'_, u64>> {
        self.ring.try_read(n)
    }
}

impl ConcurrentQueue for VyukovQueue {
    type Handle = VyukovHandle;

    fn register(&self) -> VyukovHandle {
        VyukovHandle
    }

    fn enqueue(&self, _h: &mut VyukovHandle, v: u64) -> Result<(), Full> {
        self.ring.vy_enqueue(v).map_err(Full)
    }

    fn dequeue(&self, _h: &mut VyukovHandle) -> Option<u64> {
        self.ring.vy_dequeue()
    }

    /// Native batch fast path: **slot runs**. Scan forward from the tail
    /// for a run of free slots (`seq == pos + i`), claim the whole run
    /// with a *single* tail CAS, then fill the claimed slots and release
    /// their sequence words in order. Winning the CAS for `[pos, pos+m)`
    /// grants exclusive write access to every claimed slot: a slot's
    /// sequence reaches `pos + i` exactly once, and only the round-owner
    /// (us, post-CAS) advances it — so the pre-scan cannot go stale in a
    /// way that matters. One CAS per run replaces one CAS per element.
    /// (Implementation: `RelocRing::vy_enqueue_many`.)
    fn enqueue_many(&self, _h: &mut VyukovHandle, vs: &[u64]) -> usize {
        self.ring.vy_enqueue_many(vs)
    }

    /// Native batch dequeue: the mirror slot-run claim over the head
    /// counter (`seq == pos + i + 1` marks a filled slot).
    fn dequeue_many(&self, _h: &mut VyukovHandle, max: usize, out: &mut Vec<u64>) -> usize {
        self.ring.vy_dequeue_many(max, out)
    }

    fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    fn max_token(&self) -> u64 {
        u64::MAX
    }

    fn len(&self) -> usize {
        self.ring.counter_len()
    }
}

impl MemoryFootprint for VyukovQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let c = self.ring.capacity();
        FootprintBreakdown::with_elements(c * 8)
            .add(
                "per-slot sequence numbers (8 B × C)",
                c * 8,
                OverheadClass::PerSlotMetadata,
            )
            .add(
                "head + tail counters (cache-padded)",
                2 * std::mem::size_of::<PadAtomicU64>(),
                OverheadClass::Counters,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = VyukovQueue::with_capacity(4);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn accepts_any_token_including_zero() {
        // The sequence word, not the value, encodes slot state: unlike the
        // constant-overhead designs there is no reserved null.
        let q = VyukovQueue::with_capacity(2);
        let mut h = q.register();
        q.enqueue(&mut h, 0).unwrap();
        q.enqueue(&mut h, u64::MAX).unwrap();
        assert_eq!(q.dequeue(&mut h), Some(0));
        assert_eq!(q.dequeue(&mut h), Some(u64::MAX));
    }

    #[test]
    fn wraparound_repeated_values() {
        let q = VyukovQueue::with_capacity(3);
        let mut h = q.register();
        for _ in 0..200 {
            for _ in 0..3 {
                q.enqueue(&mut h, 7).unwrap();
            }
            for _ in 0..3 {
                assert_eq!(q.dequeue(&mut h), Some(7));
            }
        }
    }

    #[test]
    fn pow2_and_non_pow2_capacities_behave_identically() {
        // S1 (ISSUE 8): indexing uses a mask when C is a power of two
        // and `%` otherwise; the observable behaviour must be the same
        // apart from the capacity itself. Drive both shapes through the
        // identical op sequence, including wraparound and full/empty
        // reports, and compare against the FIFO model.
        for &c in &[2usize, 3, 4, 5, 7, 8, 16, 17] {
            let q = VyukovQueue::with_capacity(c);
            let mut h = q.register();
            let mut next = 0u64;
            let mut expect = 0u64;
            for _ in 0..5 {
                // Fill to the exact capacity, then observe full.
                loop {
                    match q.enqueue(&mut h, next) {
                        Ok(()) => next += 1,
                        Err(Full(v)) => {
                            assert_eq!(v, next);
                            break;
                        }
                    }
                }
                assert_eq!(q.len(), c, "single-threaded full is exact");
                // Drain fully, then observe empty.
                while let Some(v) = q.dequeue(&mut h) {
                    assert_eq!(v, expect, "FIFO across the wrap");
                    expect += 1;
                }
                assert_eq!(expect, next, "drained exactly what was queued");
            }
            assert_eq!(next, 5 * c as u64);
        }
    }

    #[test]
    fn grant_paths_interoperate_with_moves() {
        let q = VyukovQueue::with_capacity(8);
        let mut h = q.register();
        q.enqueue(&mut h, 1).unwrap();
        {
            let mut g = q.try_reserve(3).unwrap();
            assert_eq!(g.len(), 3);
            for (i, s) in g.uninit_slice().iter_mut().enumerate() {
                s.write(2 + i as u64);
            }
            g.commit(3);
        }
        {
            let g = q.try_read(2).unwrap();
            assert_eq!(&*g, &[1, 2]);
        }
        assert_eq!(q.dequeue(&mut h), Some(3));
        // An aborted reservation is skipped, not delivered.
        drop(q.try_reserve(2).unwrap());
        q.enqueue(&mut h, 5).unwrap();
        assert_eq!(q.dequeue(&mut h), Some(4));
        assert_eq!(q.dequeue(&mut h), Some(5));
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn overhead_linear_in_capacity() {
        let o1 = VyukovQueue::with_capacity(1 << 8).overhead_bytes();
        let o2 = VyukovQueue::with_capacity(1 << 12).overhead_bytes();
        assert!(o2 > o1);
        // The per-slot term dominates: ratio approaches 16×.
        assert_eq!((o2 - o1) / ((1 << 12) - (1 << 8)), 8);
    }

    #[test]
    fn slot_run_batches_match_fifo() {
        let q = VyukovQueue::with_capacity(4);
        let mut h = q.register();
        assert_eq!(
            q.enqueue_many(&mut h, &[1, 2, 3, 4, 5, 6]),
            4,
            "run stops at full"
        );
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 2, &mut out), 2);
        assert_eq!(out, vec![1, 2]);
        // Run wraps around the ring boundary.
        assert_eq!(q.enqueue_many(&mut h, &[5, 6]), 2);
        assert_eq!(q.dequeue_many(&mut h, 10, &mut out), 4);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6], "slot runs preserve FIFO");
        assert_eq!(q.dequeue_many(&mut h, 1, &mut out), 0);
    }

    #[test]
    fn batch_claims_entire_ring_in_one_cas() {
        let q = VyukovQueue::with_capacity(8);
        let mut h = q.register();
        let vs: Vec<u64> = (1..=8).collect();
        assert_eq!(q.enqueue_many(&mut h, &vs), 8);
        let mut out = Vec::new();
        assert_eq!(q.dequeue_many(&mut h, 8, &mut out), 8);
        assert_eq!(out, vs);
    }

    #[test]
    fn concurrent_batch_transfer_conserves() {
        let q = Arc::new(VyukovQueue::with_capacity(8));
        let per = 4_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            let vals: Vec<u64> = (1..=per).collect();
            let mut sent = 0usize;
            while sent < vals.len() {
                let end = (sent + 5).min(vals.len());
                sent += q2.enqueue_many(&mut h, &vals[sent..end]);
                if sent < end {
                    std::thread::yield_now();
                }
            }
        });
        let mut h = q.register();
        let mut got = Vec::new();
        while got.len() < per as usize {
            if q.dequeue_many(&mut h, 7, &mut got) == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        let expect: Vec<u64> = (1..=per).collect();
        assert_eq!(got, expect, "SPSC batch runs preserve order exactly");
    }

    #[test]
    fn concurrent_transfer_conserves() {
        let q = Arc::new(VyukovQueue::with_capacity(8));
        let per = 4_000u64;
        let producers = 2u64;
        let total = per * producers;
        let mut ths = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            ths.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..per {
                    let v = 1 + p * per + i;
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut h = q.register();
        let mut seen = std::collections::HashSet::new();
        while (seen.len() as u64) < total {
            match q.dequeue(&mut h) {
                Some(v) => assert!(seen.insert(v), "duplicate {v}"),
                None => std::thread::yield_now(),
            }
        }
        for t in ths {
            t.join().unwrap();
        }
        assert!(q.dequeue(&mut h).is_none());
    }
}
