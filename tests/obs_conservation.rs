//! The obs layer's conservation law under real threaded contention
//! (DESIGN.md §14): on every instrumented facade,
//! `enq_attempts == enq_success + enq_full` and
//! `deq_attempts == deq_success + deq_empty` — an operation is counted
//! exactly once, as exactly one outcome, no matter how the scheduler
//! interleaves the CAS loops. With the `obs` feature off the same
//! snapshots are empty and the counter blocks are zero-sized, which is
//! the compile-time shape of the "always cheap" claim.
//!
//! Run both lanes: `cargo test --test obs_conservation` and
//! `cargo test --features obs --test obs_conservation`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use membq::core::obs::MetricsSnapshot;
use membq::prelude::*;

/// Assert the two-sided conservation law on a snapshot, given the exact
/// number of values that flowed through the queue.
fn assert_conserved(m: &MetricsSnapshot, total: u64, what: &str) {
    if !cfg!(feature = "obs") {
        assert!(
            m.is_empty(),
            "{what}: obs is off but the snapshot has entries: {m}"
        );
        return;
    }
    let g = |k: &str| m.get(k).unwrap_or_else(|| panic!("{what}: missing {k}"));
    assert_eq!(
        g("enq_attempts"),
        g("enq_success") + g("enq_full"),
        "{what}: enqueue counters do not reconcile: {m}"
    );
    assert_eq!(
        g("deq_attempts"),
        g("deq_success") + g("deq_empty"),
        "{what}: dequeue counters do not reconcile: {m}"
    );
    assert_eq!(g("enq_success"), total, "{what}: successful enqueues");
    assert_eq!(g("deq_success"), total, "{what}: successful dequeues");
}

// 2 producers vs 2 consumers hammering a tiny queue: plenty of genuine
// `Full`/empty refusals and CAS retries on both sides.

#[test]
fn optimal_queue_counters_reconcile_under_stress() {
    let producers = 2usize;
    let consumers = 2usize;
    let per = 2_000u64;
    let total = per * producers as u64;
    let q = Arc::new(OptimalQueue::with_capacity_and_threads(
        4,
        producers + consumers,
    ));
    let consumed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut h = q.register();
                for v in 1..=per {
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                let mut h = q.register();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    match q.dequeue(&mut h) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None if done => break,
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });

    assert_conserved(&q.metrics(), total, "OptimalQueue");
}

#[test]
fn sharded_queue_counters_reconcile_under_stress() {
    let workers = 4usize;
    let per = 1_500u64;
    let total = per * 2;
    let q = Arc::new(ShardedQueue::<OptimalQueue>::optimal(4, 2, workers));
    let consumed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut h = q.register();
                for v in 1..=per {
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                let mut h = q.register();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    match q.dequeue(&mut h) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None if done => break,
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });

    // The scale layer nests each sub-queue's block under `shardN.`; the
    // conservation law holds shard-wise, so it holds on the sums.
    let m = q.metrics();
    if !cfg!(feature = "obs") {
        assert!(m.is_empty(), "obs off but sharded snapshot has entries");
        return;
    }
    let mut summed = MetricsSnapshot::new();
    for key in [
        "enq_attempts",
        "enq_success",
        "enq_full",
        "deq_attempts",
        "deq_success",
        "deq_empty",
    ] {
        let suffix = format!(".{key}");
        let sum: u64 = m
            .entries()
            .iter()
            .filter(|(k, _)| k.ends_with(&suffix))
            .map(|(_, v)| *v)
            .sum();
        summed.push(key, sum);
    }
    assert_conserved(&summed, total, "ShardedQueue<OptimalQueue>");
}

/// The zero-cost half of the contract, checked at the type level: with
/// obs off every counter block is a ZST, so the queue structs carry
/// exactly the fields they carried before the layer existed.
#[test]
fn obs_off_counters_are_zero_sized() {
    use membq::core::obs::Counter;
    if cfg!(feature = "obs") {
        assert!(std::mem::size_of::<Counter>() > 0);
    } else {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(Counter::new().get(), 0, "obs-off reads are constant 0");
    }
}
