//! The Michael–Scott queue (PODC 1996) with a capacity bound — the paper's
//! introductory example of a memory-*unfriendly* design: every element
//! costs a heap node with a next pointer, so the overhead is Θ(n).
//!
//! Bounding: MS is naturally unbounded; we bound it with an element counter
//! checked before linking. The full check is therefore *approximate* under
//! contention (the counter is read before the link), which is one of the
//! practical trade-offs the paper notes real systems accept when they
//! insist on linked designs. Memory reclamation uses epochs
//! (crossbeam-epoch), standing in for hazard pointers in the original.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};

use bq_core::queue::{ConcurrentQueue, Full};
use bq_core::token::{is_token, MAX_TOKEN};
use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

struct Node {
    value: u64,
    next: Atomic<Node>,
}

/// Bounded Michael–Scott queue (Θ(n) overhead baseline).
pub struct MsQueue {
    head: Atomic<Node>,
    tail: Atomic<Node>,
    len: AtomicU64,
    capacity: usize,
    nodes_allocated: AtomicUsize,
    nodes_retired: AtomicUsize,
}

/// `MsQueue` needs no per-thread state.
#[derive(Debug, Default, Clone, Copy)]
pub struct MsHandle;

impl MsQueue {
    /// Create a queue bounded at `c` elements.
    pub fn with_capacity(c: usize) -> Self {
        assert!(c > 0, "capacity must be positive");
        let dummy = Owned::new(Node {
            value: 0,
            next: Atomic::null(),
        })
        .into_shared(unsafe { epoch::unprotected() });
        let q = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
            len: AtomicU64::new(0),
            capacity: c,
            nodes_allocated: AtomicUsize::new(1),
            nodes_retired: AtomicUsize::new(0),
        };
        q.head.store(dummy, Ordering::SeqCst);
        q.tail.store(dummy, Ordering::SeqCst);
        q
    }

    /// Nodes currently allocated (including the dummy and nodes pending
    /// epoch reclamation).
    pub fn nodes_live(&self) -> usize {
        self.nodes_allocated.load(Ordering::Relaxed) - self.nodes_retired.load(Ordering::Relaxed)
    }
}

impl ConcurrentQueue for MsQueue {
    type Handle = MsHandle;

    fn register(&self) -> MsHandle {
        MsHandle
    }

    fn enqueue(&self, _h: &mut MsHandle, v: u64) -> Result<(), Full> {
        assert!(is_token(v), "MS queue tokens are non-zero 63-bit words");
        // Approximate bound check (see module docs).
        if self.len.load(Ordering::SeqCst) >= self.capacity as u64 {
            return Err(Full(v));
        }
        let guard = epoch::pin();
        let node = Owned::new(Node {
            value: v,
            next: Atomic::null(),
        })
        .into_shared(&guard);
        self.nodes_allocated.fetch_add(1, Ordering::Relaxed);
        loop {
            let t = self.tail.load(Ordering::SeqCst, &guard);
            let tref = unsafe { t.deref() };
            let next = tref.next.load(Ordering::SeqCst, &guard);
            if !next.is_null() {
                // Tail lagging: help it forward.
                let _ =
                    self.tail
                        .compare_exchange(t, next, Ordering::SeqCst, Ordering::SeqCst, &guard);
                continue;
            }
            if tref
                .next
                .compare_exchange(
                    Shared::null(),
                    node,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    &guard,
                )
                .is_ok()
            {
                let _ =
                    self.tail
                        .compare_exchange(t, node, Ordering::SeqCst, Ordering::SeqCst, &guard);
                self.len.fetch_add(1, Ordering::SeqCst);
                return Ok(());
            }
        }
    }

    fn dequeue(&self, _h: &mut MsHandle) -> Option<u64> {
        let guard = epoch::pin();
        loop {
            let h = self.head.load(Ordering::SeqCst, &guard);
            let t = self.tail.load(Ordering::SeqCst, &guard);
            let next = unsafe { h.deref() }.next.load(Ordering::SeqCst, &guard);
            if next.is_null() {
                return None;
            }
            if h == t {
                let _ =
                    self.tail
                        .compare_exchange(t, next, Ordering::SeqCst, Ordering::SeqCst, &guard);
                continue;
            }
            let value = unsafe { next.deref() }.value;
            if self
                .head
                .compare_exchange(h, next, Ordering::SeqCst, Ordering::SeqCst, &guard)
                .is_ok()
            {
                self.len.fetch_sub(1, Ordering::SeqCst);
                self.nodes_retired.fetch_add(1, Ordering::Relaxed);
                unsafe { guard.defer_destroy(h) };
                return Some(value);
            }
        }
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn max_token(&self) -> u64 {
        MAX_TOKEN
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst) as usize
    }
}

impl MemoryFootprint for MsQueue {
    fn footprint(&self) -> FootprintBreakdown {
        let live = self.nodes_live();
        let node_bytes = std::mem::size_of::<Node>();
        // One value word per non-dummy node is element storage; the rest
        // (next pointer, dummy node, allocation rounding) is overhead.
        let elements = self.len() * 8;
        FootprintBreakdown::with_elements(elements)
            .add(
                format!("per-node linkage ({live} nodes × next ptr + dummy)"),
                live * node_bytes - elements,
                OverheadClass::Linkage,
            )
            .add(
                "head + tail pointers + len counter",
                24,
                OverheadClass::Counters,
            )
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        unsafe {
            let guard = epoch::unprotected();
            let mut n = self.head.load(Ordering::SeqCst, guard);
            while !n.is_null() {
                let next = n.deref().next.load(Ordering::SeqCst, guard);
                drop(n.into_owned());
                n = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_fifo() {
        let q = MsQueue::with_capacity(4);
        let mut h = q.register();
        for v in 1..=4 {
            q.enqueue(&mut h, v).unwrap();
        }
        assert_eq!(q.enqueue(&mut h, 5), Err(Full(5)));
        for v in 1..=4 {
            assert_eq!(q.dequeue(&mut h), Some(v));
        }
        assert_eq!(q.dequeue(&mut h), None);
    }

    #[test]
    fn overhead_grows_with_occupancy() {
        // The paper's point about MS: overhead is linear in the number of
        // stored elements, not constant.
        let q = MsQueue::with_capacity(1024);
        let mut h = q.register();
        let empty_ovh = q.overhead_bytes();
        for v in 1..=512 {
            q.enqueue(&mut h, v).unwrap();
        }
        let half_ovh = q.overhead_bytes();
        assert!(
            half_ovh >= empty_ovh + 512 * 8,
            "512 nodes must cost ≥ one pointer each: {empty_ovh} → {half_ovh}"
        );
    }

    #[test]
    fn nodes_reclaimed_after_dequeue() {
        let q = MsQueue::with_capacity(64);
        let mut h = q.register();
        for round in 0..50u64 {
            for i in 0..64 {
                q.enqueue(&mut h, 1 + round * 64 + i).unwrap();
            }
            for _ in 0..64 {
                q.dequeue(&mut h).unwrap();
            }
        }
        // Retirement is epoch-deferred but accounted immediately.
        assert!(q.nodes_live() <= 2, "live nodes: {}", q.nodes_live());
    }

    #[test]
    fn concurrent_transfer() {
        let q = Arc::new(MsQueue::with_capacity(32));
        let n = 5_000u64;
        let q2 = Arc::clone(&q);
        let p = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=n {
                while q2.enqueue(&mut h, v).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut h = q.register();
        let mut last = 0u64;
        let mut got = 0u64;
        while got < n {
            if let Some(v) = q.dequeue(&mut h) {
                assert!(v > last, "FIFO violated: {v} after {last}");
                last = v;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        p.join().unwrap();
    }
}
