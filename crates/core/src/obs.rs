//! Always-cheap observability: relaxed-atomic counter blocks, metrics
//! snapshots, and a binary trace ring (DESIGN.md §14).
//!
//! The paper's claims are *overhead* claims, and ROADMAP item 3
//! (adaptive shard count, contention-aware stealing) is blocked on
//! "observed CAS-failure or refusal rates" — this module is that signal
//! surface. Three layers:
//!
//! 1. **Counter blocks** ([`QueueCounters`], [`WaitCounters`],
//!    [`ShardCounters`]) — cache-padded groups of `Relaxed` atomics
//!    embedded in the hot structures. With the `obs` feature off every
//!    type here is a ZST and every recording method an empty
//!    `#[inline(always)]` body, so the instrumented code compiles to
//!    exactly the uninstrumented code (the same zero-cost contract as
//!    `simx`, asserted by the tests at the bottom). Per-operation hot
//!    paths do not touch the shared block at all: they accumulate in a
//!    [`LocalQueueCounters`] carried by the per-thread handle (plain
//!    unsynchronized `u64`s, one register-width add each) and fold into
//!    the shared [`SharedQueueCounters`] block on handle drop, on an
//!    explicit `flush_metrics`, or every [`LOCAL_FLUSH_PERIOD`] calls —
//!    so `obs` *on* costs no atomic RMW per operation either (the E17
//!    budget, DESIGN.md §14.5).
//! 2. **[`MetricsSnapshot`]** — a cold-path, always-compiled view:
//!    ordered `(name, value)` pairs with delta arithmetic, a `Display`
//!    table, and serde-shim JSON. Reachable from every queue via
//!    [`ConcurrentQueue::metrics`](crate::ConcurrentQueue::metrics).
//! 3. **[`TraceRing`]** — fixed-size binary events over the repo's own
//!    [`byte_ring`](crate::byte_ring) (dog-fooding DESIGN.md §12),
//!    dumped as a replayable `trace:v1:` artifact when a harness round
//!    fails. Events are stamped from a process-local monotonic counter —
//!    never a wall clock — and stamp 0 under `sim-explore` so explored
//!    schedules stay deterministic.
//!
//! ## Why `Relaxed` ordering is enough (and required)
//!
//! Counters are *statistics*, not synchronization: no protocol decision
//! reads them (the one functional counter, the shard quarantine refusal
//! count, stays `SeqCst` in `sharded.rs` and is merely *reported* here).
//! `Relaxed` increments cannot create happens-before edges, so turning
//! `obs` on cannot mask or introduce a memory-ordering bug in the
//! algorithms it observes. For the same reason the counters use plain
//! `std` atomics rather than the `simx` wrappers: they must not become
//! scheduling points, so the §11 explorer enumerates *identical*
//! execution sets (and state hashes) with the feature on or off.

use std::fmt;

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Counter — one relaxed u64, the unit every block is built from
// ---------------------------------------------------------------------------

/// A single relaxed event counter. With `obs` off this is a ZST and all
/// methods are no-ops.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

/// A single relaxed event counter. With `obs` off this is a ZST and all
/// methods are no-ops.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct Counter;

#[cfg(feature = "obs")]
impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn hit(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raise the recorded high-watermark to `v` if it is higher.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "obs"))]
impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter
    }

    /// Count one event. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn hit(&self) {}

    /// Count `n` events. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Raise the recorded high-watermark. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn record_max(&self, _v: u64) {}

    /// Current value — always 0 with `obs` off.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Hist32 — a log2-bucket histogram
// ---------------------------------------------------------------------------

/// Number of log2 buckets in [`Hist32`]: bucket `i` counts values whose
/// bit length is `i` (bucket 0 holds the value 0, bucket 31 saturates).
pub const HIST_BUCKETS: usize = 32;

/// A log2-bucket histogram of `u64` samples (park latencies in
/// nanoseconds). With `obs` off this is a ZST and recording is a no-op.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct Hist32 {
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A log2-bucket histogram of `u64` samples (park latencies in
/// nanoseconds). With `obs` off this is a ZST and recording is a no-op.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct Hist32;

/// Bucket index for a sample: its bit length, saturated to the last
/// bucket. 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …
pub fn hist_bucket(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

#[cfg(feature = "obs")]
impl Hist32 {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist32 {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket counts, index = bit length of the sample.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(feature = "obs")]
impl Default for Hist32 {
    fn default() -> Self {
        Hist32::new()
    }
}

#[cfg(not(feature = "obs"))]
impl Hist32 {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist32
    }

    /// Record one sample. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Bucket counts — all zero with `obs` off.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        [0; HIST_BUCKETS]
    }
}

// ---------------------------------------------------------------------------
// Counter blocks — one cache-padded group per hot structure
// ---------------------------------------------------------------------------

/// Per-queue operation counters: attached to the algorithm structs
/// (`OptimalQueue`, `ShardedQueue`) behind the `obs` feature. The block
/// is padded to its own cache-line pair so the statistics traffic never
/// shares a line with protocol words.
///
/// Invariant (asserted by `tests/obs_conservation.rs`): every `enqueue`
/// call ends as exactly one of success/full, and every `dequeue` call as
/// one of success/empty, so
/// `enq_attempts == enq_success + enq_full` and
/// `deq_attempts == deq_success + deq_empty`. Retries and helps count
/// *extra* loop iterations and are not part of the identity.
#[cfg_attr(feature = "obs", repr(align(128)))]
#[derive(Debug, Default)]
pub struct QueueCounters {
    /// `enqueue` calls entered.
    pub enq_attempts: Counter,
    /// `enqueue` calls that returned `Ok`.
    pub enq_success: Counter,
    /// `enqueue` calls refused with `Full`.
    pub enq_full: Counter,
    /// Extra enqueue loop iterations (failed CAS / stale counter reload).
    pub enq_retries: Counter,
    /// `dequeue` calls entered.
    pub deq_attempts: Counter,
    /// `dequeue` calls that returned an element.
    pub deq_success: Counter,
    /// `dequeue` calls that observed empty.
    pub deq_empty: Counter,
    /// Extra dequeue loop iterations (failed CAS on `dequeues`).
    pub deq_retries: Counter,
    /// Descriptor-helping steps performed on *another* thread's
    /// operation (Listing 5's `start_put_op` scan).
    pub helps: Counter,
    /// Highest occupancy ever observed at an enqueue linearization.
    pub occupancy_hwm: Counter,
}

impl QueueCounters {
    /// A zeroed block.
    pub fn new() -> Self {
        QueueCounters::default()
    }

    /// Append this block's counters to `snap` under `prefix`. With `obs`
    /// off nothing is appended (no fabricated zeros).
    #[cfg(not(feature = "obs"))]
    pub fn snapshot_into(&self, _prefix: &str, _snap: &mut MetricsSnapshot) {}

    /// Append this block's counters to `snap` under `prefix`. With `obs`
    /// off nothing is appended (no fabricated zeros).
    #[cfg(feature = "obs")]
    pub fn snapshot_into(&self, prefix: &str, snap: &mut MetricsSnapshot) {
        for (name, c) in [
            ("enq_attempts", &self.enq_attempts),
            ("enq_success", &self.enq_success),
            ("enq_full", &self.enq_full),
            ("enq_retries", &self.enq_retries),
            ("deq_attempts", &self.deq_attempts),
            ("deq_success", &self.deq_success),
            ("deq_empty", &self.deq_empty),
            ("deq_retries", &self.deq_retries),
            ("helps", &self.helps),
            ("occupancy_hwm", &self.occupancy_hwm),
        ] {
            snap.push(format!("{prefix}{name}"), c.get());
        }
    }
}

// ---------------------------------------------------------------------------
// SharedQueueCounters / LocalQueueCounters — the hot-path split
// ---------------------------------------------------------------------------

/// Shared ownership of a queue's [`QueueCounters`] block. The queue
/// embeds one of these; every handle's [`LocalQueueCounters`] holds a
/// clone, so a handle outliving its registration scope can still fold
/// its deltas in safely. Derefs to the block for cold-path reads
/// (`snapshot_into`) and for the rare counters recorded without a
/// handle in scope (`helps`). With `obs` off this is a ZST.
#[cfg(feature = "obs")]
#[derive(Debug, Clone, Default)]
pub struct SharedQueueCounters(std::sync::Arc<QueueCounters>);

/// Shared ownership of a queue's [`QueueCounters`] block. With `obs`
/// off this is a ZST and derefs to a static empty block.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedQueueCounters;

impl SharedQueueCounters {
    /// A zeroed shared block.
    #[cfg(feature = "obs")]
    pub fn new() -> Self {
        SharedQueueCounters::default()
    }

    /// A zeroed shared block. (ZST: `obs` is off.)
    #[cfg(not(feature = "obs"))]
    pub const fn new() -> Self {
        SharedQueueCounters
    }

    /// Start a handle-local accumulator bound to this block.
    pub fn local(&self) -> LocalQueueCounters {
        #[cfg(feature = "obs")]
        {
            LocalQueueCounters {
                shared: self.clone(),
                ..LocalQueueCounters::default()
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            LocalQueueCounters
        }
    }
}

#[cfg(feature = "obs")]
impl std::ops::Deref for SharedQueueCounters {
    type Target = QueueCounters;
    fn deref(&self) -> &QueueCounters {
        &self.0
    }
}

#[cfg(not(feature = "obs"))]
impl std::ops::Deref for SharedQueueCounters {
    type Target = QueueCounters;
    fn deref(&self) -> &QueueCounters {
        static ZERO: QueueCounters = QueueCounters {
            enq_attempts: Counter,
            enq_success: Counter,
            enq_full: Counter,
            enq_retries: Counter,
            deq_attempts: Counter,
            deq_success: Counter,
            deq_empty: Counter,
            deq_retries: Counter,
            helps: Counter,
            occupancy_hwm: Counter,
        };
        &ZERO
    }
}

/// Handle-local accumulation folds into the shared block at least every
/// this many `enqueue`/`dequeue` calls, bounding how stale a snapshot
/// taken while handles are live can be. (Exact totals are guaranteed
/// once handles are dropped or `flush_metrics` has run.)
pub const LOCAL_FLUSH_PERIOD: u64 = 1024;

/// The hot half of [`QueueCounters`]: plain unsynchronized `u64`s
/// carried by the per-thread handle, so recording an operation is one
/// register-width add — no atomic RMW, no shared cache line. Deltas
/// fold into the [`SharedQueueCounters`] block (where `metrics()`
/// reads) on drop, on [`flush`](LocalQueueCounters::flush), and every
/// [`LOCAL_FLUSH_PERIOD`] operations. With `obs` off this is a ZST and
/// every method an empty `#[inline(always)]` body.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct LocalQueueCounters {
    shared: SharedQueueCounters,
    since_flush: u64,
    enq_attempts: u64,
    enq_success: u64,
    enq_full: u64,
    enq_retries: u64,
    deq_attempts: u64,
    deq_success: u64,
    deq_empty: u64,
    deq_retries: u64,
    occupancy_hwm: u64,
}

/// The hot half of [`QueueCounters`]. With `obs` off this is a ZST and
/// every method an empty `#[inline(always)]` body.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct LocalQueueCounters;

#[cfg(feature = "obs")]
impl LocalQueueCounters {
    #[inline]
    fn tick(&mut self) {
        self.since_flush += 1;
        if self.since_flush >= LOCAL_FLUSH_PERIOD {
            self.flush();
        }
    }

    /// An `enqueue` call was entered.
    #[inline]
    pub fn enq_attempt(&mut self) {
        self.enq_attempts += 1;
        self.tick();
    }

    /// An `enqueue` linearized at the given occupancy (post-increment).
    #[inline]
    pub fn enq_success(&mut self, occupancy: u64) {
        self.enq_success += 1;
        if occupancy > self.occupancy_hwm {
            self.occupancy_hwm = occupancy;
        }
    }

    /// An `enqueue` was refused with `Full`.
    #[inline]
    pub fn enq_full(&mut self) {
        self.enq_full += 1;
    }

    /// An extra enqueue loop iteration (failed CAS / stale reload).
    #[inline]
    pub fn enq_retry(&mut self) {
        self.enq_retries += 1;
    }

    /// A `dequeue` call was entered.
    #[inline]
    pub fn deq_attempt(&mut self) {
        self.deq_attempts += 1;
        self.tick();
    }

    /// A `dequeue` returned an element.
    #[inline]
    pub fn deq_success(&mut self) {
        self.deq_success += 1;
    }

    /// A `dequeue` observed empty.
    #[inline]
    pub fn deq_empty(&mut self) {
        self.deq_empty += 1;
    }

    /// An extra dequeue loop iteration (failed CAS on `dequeues`).
    #[inline]
    pub fn deq_retry(&mut self) {
        self.deq_retries += 1;
    }

    /// Fold the accumulated deltas into the shared block and zero the
    /// locals. Relaxed `fetch_add`s — cold by construction.
    pub fn flush(&mut self) {
        let s: &QueueCounters = &self.shared;
        s.enq_attempts.add(std::mem::take(&mut self.enq_attempts));
        s.enq_success.add(std::mem::take(&mut self.enq_success));
        s.enq_full.add(std::mem::take(&mut self.enq_full));
        s.enq_retries.add(std::mem::take(&mut self.enq_retries));
        s.deq_attempts.add(std::mem::take(&mut self.deq_attempts));
        s.deq_success.add(std::mem::take(&mut self.deq_success));
        s.deq_empty.add(std::mem::take(&mut self.deq_empty));
        s.deq_retries.add(std::mem::take(&mut self.deq_retries));
        s.occupancy_hwm.record_max(self.occupancy_hwm);
        self.since_flush = 0;
    }
}

#[cfg(feature = "obs")]
impl Drop for LocalQueueCounters {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(not(feature = "obs"))]
impl LocalQueueCounters {
    /// An `enqueue` call was entered. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn enq_attempt(&mut self) {}

    /// An `enqueue` linearized. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn enq_success(&mut self, _occupancy: u64) {}

    /// An `enqueue` was refused. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn enq_full(&mut self) {}

    /// An extra enqueue loop iteration. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn enq_retry(&mut self) {}

    /// A `dequeue` call was entered. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn deq_attempt(&mut self) {}

    /// A `dequeue` returned an element. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn deq_success(&mut self) {}

    /// A `dequeue` observed empty. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn deq_empty(&mut self) {}

    /// An extra dequeue loop iteration. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn deq_retry(&mut self) {}

    /// Fold deltas into the shared block. (No-op: `obs` is off.)
    #[inline(always)]
    pub fn flush(&mut self) {}
}

/// Waiter-subsystem counters: one block per [`EventCount`]
/// (DESIGN.md §9), covering both the thread (blocking) and task (async)
/// clients.
#[cfg_attr(feature = "obs", repr(align(128)))]
#[derive(Debug, Default)]
pub struct WaitCounters {
    /// OS-thread parks (one per actual `cond.wait`).
    pub thread_parks: Counter,
    /// Task-waker registrations that went pending (async parks).
    pub task_parks: Counter,
    /// `wake_all` calls that found announced waiters.
    pub wakes: Counter,
    /// Waiters actually woken/drained by those calls.
    pub woken: Counter,
    /// Wakes after which the waiter's re-attempt still failed.
    pub spurious_wakes: Counter,
    /// Timed waits that ended by deadline expiry.
    pub timeout_expiries: Counter,
    /// Park latency (ns from first park to wait completion), log2
    /// buckets. Timestamp-free (all samples 0) under `sim-explore`.
    pub park_ns: Hist32,
}

impl WaitCounters {
    /// A zeroed block.
    pub fn new() -> Self {
        WaitCounters::default()
    }

    /// Append this block's counters (and histogram buckets with nonzero
    /// counts, as `{prefix}park_ns_p2_{bits}`) to `snap` under `prefix`.
    /// With `obs` off nothing is appended.
    #[cfg(not(feature = "obs"))]
    pub fn snapshot_into(&self, _prefix: &str, _snap: &mut MetricsSnapshot) {}

    /// Append this block's counters (and histogram buckets with nonzero
    /// counts, as `{prefix}park_ns_p2_{bits}`) to `snap` under `prefix`.
    /// With `obs` off nothing is appended.
    #[cfg(feature = "obs")]
    pub fn snapshot_into(&self, prefix: &str, snap: &mut MetricsSnapshot) {
        for (name, c) in [
            ("thread_parks", &self.thread_parks),
            ("task_parks", &self.task_parks),
            ("wakes", &self.wakes),
            ("woken", &self.woken),
            ("spurious_wakes", &self.spurious_wakes),
            ("timeout_expiries", &self.timeout_expiries),
        ] {
            snap.push(format!("{prefix}{name}"), c.get());
        }
        for (bits, n) in self.park_ns.buckets().into_iter().enumerate() {
            if n != 0 {
                snap.push(format!("{prefix}park_ns_p2_{bits}"), n);
            }
        }
    }
}

/// Scale-layer counters: one block per `ShardedQueue`. Per-shard
/// *refusal* counts are not duplicated here — the quarantine health
/// counter in `sharded.rs` is the one refusal mechanism (DESIGN.md §14)
/// and the snapshot reads it directly.
#[cfg_attr(feature = "obs", repr(align(128)))]
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Operations served by a non-home shard (work stealing).
    pub steals: Counter,
    /// Rotation-scan hops past the home shard (contention signal).
    pub rotations: Counter,
    /// Shards quarantined.
    pub quarantines: Counter,
}

impl ShardCounters {
    /// A zeroed block.
    pub fn new() -> Self {
        ShardCounters::default()
    }

    /// Append this block's counters to `snap` under `prefix`. With `obs`
    /// off nothing is appended.
    #[cfg(not(feature = "obs"))]
    pub fn snapshot_into(&self, _prefix: &str, _snap: &mut MetricsSnapshot) {}

    /// Append this block's counters to `snap` under `prefix`. With `obs`
    /// off nothing is appended.
    #[cfg(feature = "obs")]
    pub fn snapshot_into(&self, prefix: &str, snap: &mut MetricsSnapshot) {
        for (name, c) in [
            ("steals", &self.steals),
            ("rotations", &self.rotations),
            ("quarantines", &self.quarantines),
        ] {
            snap.push(format!("{prefix}{name}"), c.get());
        }
    }
}

// ---------------------------------------------------------------------------
// MetricsSnapshot — the cold-path view (always compiled)
// ---------------------------------------------------------------------------

/// An ordered set of named counter readings: the uniform currency every
/// layer reports in — queue blocks, eventcounts, shard health, shm
/// per-process stats. Always compiled (it costs nothing until taken);
/// with `obs` off the in-process sources simply contribute zeros or
/// nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Append a reading. Names repeat at the caller's peril; `get`
    /// returns the first match.
    pub fn push(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), value));
    }

    /// The reading for `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// All readings, in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// No readings at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Delta arithmetic: this snapshot minus `earlier`, per name
    /// (saturating; names absent from `earlier` count from zero).
    /// High-watermark entries are still point-in-time values after a
    /// delta, but monotone counters become rates over the interval.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, v) in &self.entries {
            let base = earlier.get(name).unwrap_or(0);
            out.push(name.clone(), v.saturating_sub(base));
        }
        out
    }

    /// Render as a JSON object (sibling of the `BENCH_*.json` artifacts;
    /// also available through the serde shim's `Serialize`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        serde::Serialize::write_json(self, &mut out);
        out
    }
}

impl serde::Serialize for MetricsSnapshot {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::escape_str(name, out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push('}');
    }
}

impl fmt::Display for MetricsSnapshot {
    /// A two-column `name  value` table, insertion-ordered.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &self.entries {
            writeln!(f, "{name:<width$}  {v}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Trace ring — fixed-size binary events over the repo's own byte ring
// ---------------------------------------------------------------------------

/// Trace event kinds recorded by the harnesses. A `u8` namespace; the
/// codec carries unknown kinds through unchanged, so harnesses can add
/// private kinds without breaking `trace:v1:` parsing.
pub mod trace_kind {
    /// A harness round started; `arg` = round number.
    pub const ROUND_START: u8 = 1;
    /// A fault plan was derived; `arg` = its seed.
    pub const PLAN_SEED: u8 = 2;
    /// A round completed; `arg` = operations/publications observed.
    pub const ROUND_OK: u8 = 3;
    /// An oracle or round failed; `arg` = round number.
    pub const FAIL: u8 = 4;
    /// A metrics snapshot was taken; `arg` = its entry count.
    pub const SNAPSHOT: u8 = 5;
}

/// Size of one encoded trace event: kind (1) + arg (8 LE) + stamp (8 LE).
pub const TRACE_EVENT_BYTES: usize = 17;

/// One fixed-size binary trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind (see [`trace_kind`]).
    pub kind: u8,
    /// Kind-specific argument.
    pub arg: u64,
    /// Process-local monotonic stamp (0 under `sim-explore`: explored
    /// schedules must not observe recording order).
    pub stamp: u64,
}

impl TraceEvent {
    /// Encode as [`TRACE_EVENT_BYTES`] little-endian bytes.
    pub fn encode(&self) -> [u8; TRACE_EVENT_BYTES] {
        let mut b = [0u8; TRACE_EVENT_BYTES];
        b[0] = self.kind;
        b[1..9].copy_from_slice(&self.arg.to_le_bytes());
        b[9..17].copy_from_slice(&self.stamp.to_le_bytes());
        b
    }

    /// Decode from [`TRACE_EVENT_BYTES`] bytes.
    pub fn decode(b: &[u8; TRACE_EVENT_BYTES]) -> TraceEvent {
        TraceEvent {
            kind: b[0],
            arg: u64::from_le_bytes(b[1..9].try_into().unwrap()),
            stamp: u64::from_le_bytes(b[9..17].try_into().unwrap()),
        }
    }
}

/// Next monotonic stamp. A process-local counter, never a wall clock:
/// artifacts must replay identically and sim builds must stay
/// deterministic (stamp 0 there).
fn next_stamp() -> u64 {
    #[cfg(feature = "sim-explore")]
    {
        0
    }
    #[cfg(not(feature = "sim-explore"))]
    {
        use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
        static STAMP: StdAtomicU64 = StdAtomicU64::new(1);
        STAMP.fetch_add(1, StdOrdering::Relaxed)
    }
}

/// A bounded binary trace recorder over the repo's own
/// [`byte_ring`](crate::byte_ring) (DESIGN.md §12): fixed-size events,
/// drop-oldest on overflow, multi-thread recording serialized by two
/// uncontended-in-practice mutexes (recording happens on harness control
/// paths, not inside queue operations). Always compiled — the hot-path
/// cost question belongs to the counter blocks, not the trace ring.
pub struct TraceRing {
    prod: parking_lot::Mutex<crate::bytering::ByteProducer>,
    cons: parking_lot::Mutex<crate::bytering::ByteConsumer>,
}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRing").finish_non_exhaustive()
    }
}

impl TraceRing {
    /// A ring holding on the order of `events` most-recent events
    /// (rounded up to the byte ring's record geometry).
    pub fn with_capacity(events: usize) -> TraceRing {
        let events = events.max(2);
        let rec = crate::relocatable::byte_record_size(TRACE_EVENT_BYTES);
        let (prod, cons) = crate::byte_ring(events * rec, TRACE_EVENT_BYTES);
        TraceRing {
            prod: parking_lot::Mutex::new(prod),
            cons: parking_lot::Mutex::new(cons),
        }
    }

    /// Record one event, stamped; evicts the oldest events if full.
    pub fn record(&self, kind: u8, arg: u64) {
        let ev = TraceEvent {
            kind,
            arg,
            stamp: next_stamp(),
        };
        let mut prod = self.prod.lock();
        while !prod.push(&ev.encode()) {
            // Full: drop the oldest event to keep the most recent window.
            let mut cons = self.cons.lock();
            if cons.try_read().is_none() {
                return; // geometry exhausted some other way; drop new event
            }
        }
    }

    /// Drain every recorded event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut cons = self.cons.lock();
        let mut out = Vec::new();
        while let Some(g) = cons.try_read() {
            let mut b = [0u8; TRACE_EVENT_BYTES];
            if g.len() == TRACE_EVENT_BYTES {
                b.copy_from_slice(&g);
                out.push(TraceEvent::decode(&b));
            }
        }
        out
    }

    /// Drain and render the replayable one-line artifact.
    pub fn dump(&self) -> String {
        render_trace(&self.drain())
    }
}

/// Render events as the `trace:v1:` one-line hex artifact.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(9 + events.len() * TRACE_EVENT_BYTES * 2);
    s.push_str("trace:v1:");
    for ev in events {
        for byte in ev.encode() {
            use fmt::Write;
            write!(s, "{byte:02x}").expect("write to String");
        }
    }
    s
}

/// A `trace:v1:` artifact failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadTrace(String);

impl fmt::Display for BadTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace artifact: {}", self.0)
    }
}

impl std::error::Error for BadTrace {}

/// Parse a `trace:v1:` artifact back into events. Round-trip contract:
/// `render_trace(&parse_trace(s)?) == s` for every valid artifact.
pub fn parse_trace(s: &str) -> Result<Vec<TraceEvent>, BadTrace> {
    let body = s
        .strip_prefix("trace:v1:")
        .ok_or_else(|| BadTrace(format!("missing trace:v1: prefix in {:?}", s.get(..32))))?;
    if body.len() % (TRACE_EVENT_BYTES * 2) != 0 {
        return Err(BadTrace(format!(
            "body length {} is not a multiple of {} hex chars",
            body.len(),
            TRACE_EVENT_BYTES * 2
        )));
    }
    let nibble = |c: u8| -> Result<u8, BadTrace> {
        (c as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| BadTrace(format!("non-hex character {:?}", c as char)))
    };
    let raw = body.as_bytes();
    let mut events = Vec::with_capacity(body.len() / (TRACE_EVENT_BYTES * 2));
    for chunk in raw.chunks_exact(TRACE_EVENT_BYTES * 2) {
        let mut b = [0u8; TRACE_EVENT_BYTES];
        for (i, pair) in chunk.chunks_exact(2).enumerate() {
            b[i] = (nibble(pair[0])? << 4) | nibble(pair[1])?;
        }
        events.push(TraceEvent::decode(&b));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_display_json() {
        let mut a = MetricsSnapshot::new();
        a.push("enq_attempts", 10);
        a.push("enq_success", 7);
        let mut b = MetricsSnapshot::new();
        b.push("enq_attempts", 25);
        b.push("enq_success", 19);
        b.push("helps", 3);
        let d = b.delta(&a);
        assert_eq!(d.get("enq_attempts"), Some(15));
        assert_eq!(d.get("enq_success"), Some(12));
        assert_eq!(d.get("helps"), Some(3), "absent-in-earlier counts from 0");
        assert_eq!(
            b.to_json(),
            r#"{"enq_attempts":25,"enq_success":19,"helps":3}"#
        );
        let table = b.to_string();
        assert!(table.contains("enq_attempts  25"), "{table}");
        assert!(MetricsSnapshot::new().is_empty());
    }

    #[test]
    fn hist_buckets_are_bit_lengths() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1023), 10);
        assert_eq!(hist_bucket(1024), 11);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn trace_artifact_round_trips_byte_identically() {
        let ring = TraceRing::with_capacity(64);
        ring.record(trace_kind::ROUND_START, 0);
        ring.record(trace_kind::PLAN_SEED, 0xDEAD_BEEF);
        ring.record(trace_kind::ROUND_OK, 42);
        ring.record(trace_kind::FAIL, 7);
        let dump = ring.dump();
        assert!(dump.starts_with("trace:v1:"), "{dump}");
        let events = parse_trace(&dump).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].kind, trace_kind::PLAN_SEED);
        assert_eq!(events[1].arg, 0xDEAD_BEEF);
        // The acceptance contract: parse → replay-print is byte-identical.
        assert_eq!(render_trace(&events), dump);
    }

    #[test]
    fn trace_ring_drops_oldest_on_overflow() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..64 {
            ring.record(trace_kind::ROUND_OK, i);
        }
        let events = ring.drain();
        assert!(!events.is_empty(), "recent window survives");
        assert!(events.len() < 64, "old events were evicted");
        // The survivors are the most recent args, contiguous and in order.
        let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
        let first = args[0];
        let expect: Vec<u64> = (first..64).collect();
        assert_eq!(args, expect, "survivors are the newest suffix");
        assert_eq!(*args.last().unwrap(), 63);
    }

    #[test]
    fn malformed_trace_artifacts_are_rejected() {
        for bad in [
            "trace:v2:00",
            "00",
            "trace:v1:0",                                  // odd / short
            "trace:v1:zz000000000000000000000000000000zz", // non-hex, right length
        ] {
            assert!(parse_trace(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(parse_trace("trace:v1:").unwrap(), vec![]);
    }

    /// The zero-cost contract, mirroring `simx::layout_is_transparent`:
    /// with `obs` off every counter type is a ZST, so embedding the
    /// blocks in the queue structs changes neither size nor layout.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn obs_off_counter_blocks_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Hist32>(), 0);
        assert_eq!(std::mem::size_of::<QueueCounters>(), 0);
        assert_eq!(std::mem::size_of::<WaitCounters>(), 0);
        assert_eq!(std::mem::size_of::<ShardCounters>(), 0);
        assert_eq!(std::mem::size_of::<SharedQueueCounters>(), 0);
        assert_eq!(std::mem::size_of::<LocalQueueCounters>(), 0);
        let c = Counter::new();
        c.hit();
        c.add(5);
        c.record_max(9);
        assert_eq!(c.get(), 0, "no-op recording with obs off");
        let shared = SharedQueueCounters::new();
        let mut local = shared.local();
        local.enq_attempt();
        local.flush();
        let mut snap = MetricsSnapshot::new();
        shared.snapshot_into("", &mut snap);
        assert!(snap.is_empty(), "obs off: nothing recorded, nothing read");
    }

    /// Handle-local deltas become visible in the shared block on an
    /// explicit flush, on drop, and automatically after
    /// `LOCAL_FLUSH_PERIOD` operations — and never sooner than one of
    /// those (the visibility half of the hot-path-split contract).
    #[cfg(feature = "obs")]
    #[test]
    fn local_counters_fold_into_shared_on_flush_drop_and_period() {
        let shared = SharedQueueCounters::new();
        let mut local = shared.local();
        local.enq_attempt();
        local.enq_success(3);
        assert_eq!(shared.enq_success.get(), 0, "unflushed locals invisible");
        local.flush();
        assert_eq!(shared.enq_attempts.get(), 1);
        assert_eq!(shared.enq_success.get(), 1);
        assert_eq!(shared.occupancy_hwm.get(), 3);

        // Drop folds the tail in.
        let mut local2 = shared.local();
        local2.deq_attempt();
        local2.deq_empty();
        drop(local2);
        assert_eq!(shared.deq_attempts.get(), 1);
        assert_eq!(shared.deq_empty.get(), 1);

        // The periodic fold: after LOCAL_FLUSH_PERIOD attempts the
        // shared block has caught up without an explicit flush.
        let mut local3 = shared.local();
        for _ in 0..LOCAL_FLUSH_PERIOD {
            // Outcome recorded before the attempt tick: the periodic
            // fold fires inside `enq_attempt`, so this order makes the
            // final iteration's outcome part of the folded batch.
            local3.enq_full();
            local3.enq_attempt();
        }
        assert_eq!(shared.enq_attempts.get(), 1 + LOCAL_FLUSH_PERIOD);
        assert_eq!(shared.enq_full.get(), LOCAL_FLUSH_PERIOD);
    }

    /// With `obs` on the blocks live on their own cache-line pairs.
    #[cfg(feature = "obs")]
    #[test]
    fn obs_on_counter_blocks_are_padded_and_count() {
        assert_eq!(std::mem::align_of::<QueueCounters>(), 128);
        assert_eq!(std::mem::align_of::<WaitCounters>(), 128);
        assert_eq!(std::mem::align_of::<ShardCounters>(), 128);
        let c = Counter::new();
        c.hit();
        c.add(5);
        c.record_max(9);
        assert_eq!(c.get(), 9, "record_max saw 6 < 9");
        let h = Hist32::new();
        h.record(0);
        h.record(1000);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[10], 1);
        let q = QueueCounters::new();
        q.enq_attempts.add(3);
        let mut snap = MetricsSnapshot::new();
        q.snapshot_into("q.", &mut snap);
        assert_eq!(snap.get("q.enq_attempts"), Some(3));
        assert_eq!(snap.get("q.deq_empty"), Some(0));
    }
}
