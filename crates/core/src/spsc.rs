//! **Single-producer / single-consumer** bounded queue — the first future
//! direction the paper's §5 names: "the single-producer and
//! single-consumer application restrictions".
//!
//! With one thread on each side the lower bound's adversary evaporates: it
//! needs `T/2` poised threads, and here `T = 2`. Indeed the classic
//! Lamport ring achieves **Θ(1) overhead with no CAS at all** — two
//! counters written by one thread each and read by the other, exactly the
//! Figure 1 layout plus per-side *cached* copies of the opposite counter
//! (a constant-size performance refinement, not an asymptotic cost).
//!
//! This bounds the relaxation the paper leaves open from above: the Ω(T)
//! bound is specific to general MPMC concurrency; restricting the
//! *application* (not the algorithm) restores the sequential footprint.
//!
//! The queue is wait-free: every operation finishes in O(1) steps
//! unconditionally.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;

use bq_memtrack::{FootprintBreakdown, MemoryFootprint, OverheadClass};

struct Shared {
    slots: Box<[Cell<u64>]>,
    /// Total enqueues; written only by the producer.
    tail: CachePadded<AtomicU64>,
    /// Total dequeues; written only by the consumer.
    head: CachePadded<AtomicU64>,
}

// SAFETY: slot `i` is accessed by the producer only while
// `head ≤ i < head + C` is excluded (i.e. `i = tail`, not yet published)
// and by the consumer only after the producer published it via the
// Release store to `tail`; the two roles are enforced by the unique
// Producer/Consumer endpoints.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// The producer endpoint (unique; `!Clone`).
pub struct SpscProducer {
    shared: Arc<Shared>,
    /// Cached copy of `head`, refreshed only when the ring looks full.
    cached_head: u64,
    /// Local copy of `tail` (we are its only writer).
    tail: u64,
}

/// The consumer endpoint (unique; `!Clone`).
pub struct SpscConsumer {
    shared: Arc<Shared>,
    /// Cached copy of `tail`, refreshed only when the ring looks empty.
    cached_tail: u64,
    /// Local copy of `head` (we are its only writer).
    head: u64,
}

/// Create an SPSC bounded queue of capacity `c > 0`, returning its two
/// endpoints.
///
/// ```
/// let (mut tx, mut rx) = bq_core::spsc::spsc_ring(4);
/// tx.enqueue(1).unwrap();
/// tx.enqueue(2).unwrap();
/// assert_eq!(rx.dequeue(), Some(1));
/// let rest = std::thread::spawn(move || rx.dequeue());
/// assert_eq!(rest.join().unwrap(), Some(2)); // endpoints are Send
/// ```
pub fn spsc_ring(c: usize) -> (SpscProducer, SpscConsumer) {
    assert!(c > 0, "capacity must be positive");
    let shared = Arc::new(Shared {
        slots: (0..c).map(|_| Cell::new(0)).collect(),
        tail: CachePadded::new(AtomicU64::new(0)),
        head: CachePadded::new(AtomicU64::new(0)),
    });
    (
        SpscProducer {
            shared: Arc::clone(&shared),
            cached_head: 0,
            tail: 0,
        },
        SpscConsumer {
            shared,
            cached_tail: 0,
            head: 0,
        },
    )
}

impl SpscProducer {
    /// Enqueue `v`; returns it back if the queue is full. Wait-free.
    pub fn enqueue(&mut self, v: u64) -> Result<(), u64> {
        let c = self.shared.slots.len() as u64;
        if self.tail == self.cached_head + c {
            // Looks full through the cache; refresh once.
            self.cached_head = self.shared.head.load(Ordering::Acquire);
            if self.tail == self.cached_head + c {
                return Err(v);
            }
        }
        self.shared.slots[(self.tail % c) as usize].set(v);
        self.tail += 1;
        // Publish the slot write.
        self.shared.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of elements from the producer's view (exact upper bound).
    pub fn len(&self) -> usize {
        (self.tail - self.shared.head.load(Ordering::Acquire)) as usize
    }

    /// Producer-side emptiness view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl SpscConsumer {
    /// Dequeue the oldest element, or `None` if empty. Wait-free.
    pub fn dequeue(&mut self) -> Option<u64> {
        let c = self.shared.slots.len() as u64;
        if self.head == self.cached_tail {
            // Looks empty through the cache; refresh once.
            self.cached_tail = self.shared.tail.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let v = self.shared.slots[(self.head % c) as usize].get();
        self.head += 1;
        // Release the slot for reuse.
        self.shared.head.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Number of elements from the consumer's view (exact lower bound).
    pub fn len(&self) -> usize {
        (self.shared.tail.load(Ordering::Acquire) - self.head) as usize
    }

    /// Consumer-side emptiness view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl MemoryFootprint for SpscProducer {
    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown::with_elements(self.shared.slots.len() * 8)
            .add(
                "head + tail counters (cache-padded)",
                2 * std::mem::size_of::<CachePadded<AtomicU64>>(),
                OverheadClass::Counters,
            )
            .add(
                "per-endpoint cached indices (2 × 16 B)",
                32,
                OverheadClass::Counters,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_bounds() {
        let (mut p, mut c) = spsc_ring(3);
        for v in 1..=3 {
            p.enqueue(v).unwrap();
        }
        assert_eq!(p.enqueue(4), Err(4));
        for v in 1..=3 {
            assert_eq!(c.dequeue(), Some(v));
        }
        assert_eq!(c.dequeue(), None);
    }

    #[test]
    fn wraparound_many_rounds() {
        let (mut p, mut c) = spsc_ring(2);
        for v in 0..1_000u64 {
            p.enqueue(v).unwrap();
            assert_eq!(c.dequeue(), Some(v));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn caches_refresh_lazily() {
        let (mut p, mut c) = spsc_ring(2);
        p.enqueue(1).unwrap();
        p.enqueue(2).unwrap();
        // Producer's cached head is stale; a refresh must rescue the
        // enqueue after the consumer frees a slot.
        assert_eq!(p.enqueue(3), Err(3));
        assert_eq!(c.dequeue(), Some(1));
        p.enqueue(3).unwrap();
        assert_eq!(c.dequeue(), Some(2));
        assert_eq!(c.dequeue(), Some(3));
    }

    #[test]
    fn constant_overhead() {
        let (p8, _c8) = spsc_ring(8);
        let (p64k, _c64k) = spsc_ring(1 << 16);
        assert_eq!(p8.overhead_bytes(), p64k.overhead_bytes());
    }

    #[test]
    fn cross_thread_transfer_strict_fifo() {
        let (mut p, mut c) = spsc_ring(16);
        let n = 100_000u64;
        let producer = std::thread::spawn(move || {
            for v in 1..=n {
                let mut item = v;
                while let Err(back) = p.enqueue(item) {
                    item = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 1u64;
        while expect <= n {
            match c.dequeue() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(c.dequeue(), None);
    }

    #[test]
    fn len_views_are_bounds() {
        let (mut p, mut c) = spsc_ring(4);
        p.enqueue(1).unwrap();
        p.enqueue(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.dequeue().unwrap();
        assert_eq!(c.len(), 1);
    }
}
