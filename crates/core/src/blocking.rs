//! A blocking façade over the non-blocking queues: `send` waits for space,
//! `recv` waits for an element.
//!
//! The paper's §1 mentions the trivial blocking solution (a lock has Θ(1)
//! overhead but poor scalability). This type shows the practical middle
//! ground real systems use: the *data path* stays the lock-free queue —
//! all transfers go through it, no element is ever protected by the lock —
//! and a mutex/condvar pair is used **only to park** threads that found
//! the queue full/empty. The memory cost of the parking layer is Θ(1) on
//! top of whatever the underlying queue pays, so e.g.
//! `BlockingQueue<T, OptimalQueue>` is a blocking-API queue with Θ(T)
//! total overhead.
//!
//! Wake-ups use condvar waits with a short timeout, which makes the
//! design immune to the classic lost-wake race (a fast counterpart
//! transitioning the queue between our failed attempt and our park)
//! without requiring the data path to take the lock.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

use crate::boxed::{BoxedHandle, BoxedQueue, PointerCapable};

/// Maximum park time before re-checking the queue; bounds the cost of a
/// lost wake-up without busy-waiting.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Blocking bounded queue over any pointer-capable token queue.
///
/// ```
/// use bq_core::{BlockingQueue, OptimalQueue};
///
/// let q: BlockingQueue<String, OptimalQueue> =
///     BlockingQueue::new(OptimalQueue::with_capacity_and_threads(8, 2));
/// let mut h = q.register();
/// q.send(&mut h, "job".to_string());
/// assert_eq!(q.recv(&mut h), "job");
/// ```
pub struct BlockingQueue<T: Send, Q: PointerCapable> {
    inner: BoxedQueue<T, Q>,
    gate: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T: Send, Q: PointerCapable> BlockingQueue<T, Q> {
    /// Wrap an empty token queue.
    pub fn new(inner: Q) -> Self {
        BlockingQueue {
            inner: BoxedQueue::new(inner),
            gate: Mutex::new(()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Obtain a per-thread handle.
    pub fn register(&self) -> BoxedHandle<Q> {
        self.inner.register()
    }

    /// Non-blocking enqueue (delegates to the lock-free path).
    pub fn try_send(&self, h: &mut BoxedHandle<Q>, value: T) -> Result<(), T> {
        match self.inner.enqueue(h, value) {
            Ok(()) => {
                self.not_empty.notify_one();
                Ok(())
            }
            Err(v) => Err(v),
        }
    }

    /// Enqueue, waiting while the queue is full.
    pub fn send(&self, h: &mut BoxedHandle<Q>, value: T) {
        let mut item = value;
        loop {
            match self.try_send(h, item) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    let mut guard = self.gate.lock();
                    // Park until signalled (or the timeout re-checks).
                    self.not_full.wait_for(&mut guard, PARK_TIMEOUT);
                }
            }
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self, h: &mut BoxedHandle<Q>) -> Option<T> {
        let v = self.inner.dequeue(h)?;
        self.not_full.notify_one();
        Some(v)
    }

    /// Dequeue, waiting while the queue is empty.
    pub fn recv(&self, h: &mut BoxedHandle<Q>) -> T {
        loop {
            if let Some(v) = self.try_recv(h) {
                return v;
            }
            let mut guard = self.gate.lock();
            self.not_empty.wait_for(&mut guard, PARK_TIMEOUT);
        }
    }

    /// Capacity of the underlying queue.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Approximate emptiness.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalQueue;
    use std::sync::Arc;

    fn make(c: usize, t: usize) -> BlockingQueue<u64, OptimalQueue> {
        BlockingQueue::new(OptimalQueue::with_capacity_and_threads(c, t))
    }

    #[test]
    fn try_paths_mirror_inner_queue() {
        let q = make(2, 1);
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        q.try_send(&mut h, 2).unwrap();
        assert_eq!(q.try_send(&mut h, 3), Err(3));
        assert_eq!(q.try_recv(&mut h), Some(1));
        assert_eq!(q.try_recv(&mut h), Some(2));
        assert_eq!(q.try_recv(&mut h), None);
    }

    #[test]
    fn send_blocks_until_space() {
        let q = Arc::new(make(1, 2));
        let mut h = q.register();
        q.try_send(&mut h, 1).unwrap();
        let q2 = Arc::clone(&q);
        let sender = std::thread::spawn(move || {
            let mut h2 = q2.register();
            // Blocks until the main thread drains.
            q2.send(&mut h2, 2);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_recv(&mut h), Some(1));
        sender.join().unwrap();
        assert_eq!(q.recv(&mut h), 2);
    }

    #[test]
    fn recv_blocks_until_element() {
        let q = Arc::new(make(4, 2));
        let q2 = Arc::clone(&q);
        let receiver = std::thread::spawn(move || {
            let mut h = q2.register();
            q2.recv(&mut h)
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut h = q.register();
        q.send(&mut h, 77);
        assert_eq!(receiver.join().unwrap(), 77);
    }

    #[test]
    fn blocking_transfer_full_stream() {
        let q = Arc::new(make(4, 2));
        let n = 5_000u64;
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut h = q2.register();
            for v in 1..=n {
                q2.send(&mut h, v);
            }
        });
        let mut h = q.register();
        for expect in 1..=n {
            assert_eq!(q.recv(&mut h), expect, "single-producer order");
        }
        producer.join().unwrap();
        assert!(q.is_empty());
    }
}
