//! Simulated shared memory with value/metadata location labelling.
//!
//! The paper's model (§3.3) assumes "a clear separation between
//! value-locations, used exclusively to store queue elements, and
//! metadata-locations, used to store everything else". The adversary's
//! catch criteria are phrased over value-locations, so the simulator tags
//! every allocated cell.

use crate::machine::Access;

/// Index of a simulated memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub usize);

/// The paper's location classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocKind {
    /// May hold queue elements.
    Value,
    /// Counters, descriptors, announcements, …
    Metadata,
}

/// A flat simulated shared memory.
#[derive(Debug, Clone)]
pub struct SimMemory {
    cells: Vec<u64>,
    kinds: Vec<LocKind>,
}

impl SimMemory {
    /// Empty memory.
    pub fn new() -> Self {
        SimMemory {
            cells: Vec::new(),
            kinds: Vec::new(),
        }
    }

    /// Allocate one cell.
    pub fn alloc(&mut self, kind: LocKind, init: u64) -> Loc {
        self.cells.push(init);
        self.kinds.push(kind);
        Loc(self.cells.len() - 1)
    }

    /// Allocate `n` consecutive cells, returning the first.
    pub fn alloc_array(&mut self, kind: LocKind, n: usize, init: u64) -> Loc {
        let base = Loc(self.cells.len());
        for _ in 0..n {
            self.alloc(kind, init);
        }
        base
    }

    /// Read a cell without it counting as a step (for assertions/UI).
    pub fn peek(&self, loc: Loc) -> u64 {
        self.cells[loc.0]
    }

    /// Location kind.
    pub fn kind(&self, loc: Loc) -> LocKind {
        self.kinds[loc.0]
    }

    /// Number of value-locations — the quantity the paper's lower bound is
    /// about.
    pub fn value_location_count(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| matches!(k, LocKind::Value))
            .count()
    }

    /// Number of metadata-locations.
    pub fn metadata_location_count(&self) -> usize {
        self.kinds.len() - self.value_location_count()
    }

    /// Execute one primitive. Returns the observation the issuing machine
    /// feeds back into its `apply`:
    ///
    /// * `Read` → the value read;
    /// * `Write` → 0;
    /// * `Cas` → the **old** value (success iff it equals `exp`);
    /// * `Dcss` → 1 on success, 0 on failure.
    pub fn exec(&mut self, access: Access) -> u64 {
        match access {
            Access::Read(l) => self.cells[l.0],
            Access::Write(l, v) => {
                self.cells[l.0] = v;
                0
            }
            Access::Cas { loc, exp, new } => {
                let old = self.cells[loc.0];
                if old == exp {
                    self.cells[loc.0] = new;
                }
                old
            }
            Access::Dcss {
                loc1,
                exp1,
                new1,
                loc2,
                exp2,
            } => {
                if self.cells[loc1.0] == exp1 && self.cells[loc2.0] == exp2 {
                    self.cells[loc1.0] = new1;
                    1
                } else {
                    0
                }
            }
        }
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_peek() {
        let mut m = SimMemory::new();
        let a = m.alloc(LocKind::Value, 7);
        let b = m.alloc(LocKind::Metadata, 9);
        assert_eq!(m.peek(a), 7);
        assert_eq!(m.peek(b), 9);
        assert_eq!(m.kind(a), LocKind::Value);
        assert_eq!(m.value_location_count(), 1);
        assert_eq!(m.metadata_location_count(), 1);
    }

    #[test]
    fn array_alloc_is_contiguous() {
        let mut m = SimMemory::new();
        let base = m.alloc_array(LocKind::Value, 4, 0);
        assert_eq!(base, Loc(0));
        for i in 0..4 {
            assert_eq!(m.peek(Loc(base.0 + i)), 0);
        }
        assert_eq!(m.value_location_count(), 4);
    }

    #[test]
    fn cas_returns_old_value() {
        let mut m = SimMemory::new();
        let l = m.alloc(LocKind::Value, 5);
        assert_eq!(
            m.exec(Access::Cas {
                loc: l,
                exp: 5,
                new: 6
            }),
            5
        );
        assert_eq!(m.peek(l), 6);
        assert_eq!(
            m.exec(Access::Cas {
                loc: l,
                exp: 5,
                new: 7
            }),
            6,
            "failed CAS reports the current value"
        );
        assert_eq!(m.peek(l), 6);
    }

    #[test]
    fn dcss_semantics() {
        let mut m = SimMemory::new();
        let a = m.alloc(LocKind::Value, 1);
        let b = m.alloc(LocKind::Metadata, 2);
        let hit = Access::Dcss {
            loc1: a,
            exp1: 1,
            new1: 10,
            loc2: b,
            exp2: 2,
        };
        assert_eq!(m.exec(hit), 1);
        assert_eq!(m.peek(a), 10);
        let miss = Access::Dcss {
            loc1: a,
            exp1: 10,
            new1: 11,
            loc2: b,
            exp2: 99,
        };
        assert_eq!(m.exec(miss), 0);
        assert_eq!(m.peek(a), 10, "failed DCSS leaves A untouched");
    }
}
