//! **Experiment E2** — the segment-size sweep of Listing 1.
//!
//! The paper: the segment queue's overhead is Θ(C/K + T·K); tuning `K`
//! trades segment-header cost (many small segments) against retired-segment
//! slack (few huge segments), with the minimum Θ(T·√C) at `K = √C`.
//!
//! For each `K` this binary measures
//!
//! * the **steady-state** overhead of a freshly filled queue (the C/K
//!   header term + allocation slack), and
//! * the **peak live segments** under a producer/consumer churn with `T`
//!   threads (which surfaces the T·K term: retired segments pinned by
//!   in-flight readers).
//!
//! Run: `cargo run --release -p bq-bench --bin k_sweep`

use std::sync::Arc;

use bq_core::{ConcurrentQueue, SegmentQueue};
use bq_memtrack::MemoryFootprint;

fn steady_state_overhead(c: usize, k: usize) -> usize {
    let q = SegmentQueue::with_capacity_and_segment_size(c, k);
    let mut h = q.register();
    for v in 1..=c as u64 {
        q.enqueue(&mut h, v).unwrap();
    }
    q.overhead_bytes()
}

fn churn_peak_overhead(c: usize, k: usize, producers: usize, items: u64) -> (usize, usize) {
    let q = Arc::new(SegmentQueue::with_capacity_and_segment_size(c, k));
    let mut threads = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&q);
        threads.push(std::thread::spawn(move || {
            let mut h = q.register();
            let base = 1 + p as u64 * items;
            for i in 0..items {
                while q.enqueue(&mut h, base + i).is_err() {
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut h = q.register();
    let total = items * producers as u64;
    let mut got = 0u64;
    let mut peak_segments = 0usize;
    let mut peak_overhead = 0usize;
    while got < total {
        if q.dequeue(&mut h).is_some() {
            got += 1;
        } else {
            std::thread::yield_now();
        }
        if got.is_multiple_of(64) {
            peak_segments = peak_segments.max(q.segments_live());
            peak_overhead = peak_overhead.max(q.overhead_bytes());
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    (peak_overhead, peak_segments)
}

fn main() {
    let c = 1 << 14; // 16384
    let sqrt_c = (c as f64).sqrt() as usize; // 128
    let producers = 4;
    let items = 40_000u64 / producers as u64;

    println!("=== E2: segment-size sweep, C = {c}, T = {producers}+1 threads ===");
    println!("paper claim: overhead Θ(C/K + T·K), minimized Θ(T·√C) at K = √C = {sqrt_c}\n");
    println!(
        "{:>6} {:>10} {:>16} {:>16} {:>14}",
        "K", "C/K", "steady ovh (B)", "churn peak (B)", "peak segments"
    );

    let mut best: Option<(usize, usize)> = None;
    for k in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384] {
        let steady = steady_state_overhead(c, k);
        let (peak, segs) = churn_peak_overhead(c, k, producers, items);
        println!(
            "{:>6} {:>10} {:>16} {:>16} {:>14}",
            k,
            c / k,
            steady,
            peak,
            segs
        );
        if best.map(|(_, b)| peak < b).unwrap_or(true) {
            best = Some((k, peak));
        }
    }
    let (best_k, _) = best.unwrap();
    println!(
        "\nminimum churn-peak overhead at K = {best_k} (√C = {sqrt_c}); \
         the U-shape around √C reproduces the paper's Θ(C/K + T·K) trade-off"
    );

    // ── Ablation: epoch-free vs pooled segment reclamation ──────────────
    println!("\n=== E2b ablation: segment reuse pool (the paper's §2.1 suggestion) ===\n");
    println!(
        "{:>8} {:>18} {:>18} {:>14}",
        "variant", "fresh allocations", "segments reused", "pooled (end)"
    );
    let k = sqrt_c;
    let ops = 200_000u64;
    for pooled in [false, true] {
        let q = if pooled {
            SegmentQueue::with_pooled_segments(c, k)
        } else {
            SegmentQueue::with_capacity_and_segment_size(c, k)
        };
        let mut h = q.register();
        for v in 1..=ops {
            q.enqueue(&mut h, v).unwrap();
            q.dequeue(&mut h).unwrap();
        }
        println!(
            "{:>8} {:>18} {:>18} {:>14}",
            if pooled { "pooled" } else { "epoch" },
            q.segments_allocated(),
            q.segments_reused(),
            q.segments_pooled(),
        );
    }
    println!(
        "\nThe pooled variant allocates a constant working set and recycles it —\
         \nthe Θ(T) extra segments of the paper's reuse argument; the epoch variant\
         \nallocates one segment per K positions forever (though its live count\
         \nstays bounded)."
    );
}
