//! Live observability tour (DESIGN.md §14): put a sharded queue and a
//! blocking pair under real threaded load and watch the always-cheap
//! counter blocks tell the story — per-shard refusals and steals,
//! occupancy high-water marks, park/wake traffic, and the snapshot
//! delta arithmetic that turns two readings into a rate table.
//!
//! Built without the feature the same program runs the same workload and
//! prints empty snapshots — that is the zero-cost contract, visible:
//!
//! ```text
//! cargo run --release --example observatory                  # obs off
//! cargo run --release --features obs --example observatory   # obs on
//! ```
//!
//! `MEMBQ_SMOKE=1` shrinks the workload so `tests/examples_smoke.rs`
//! can execute this end to end in milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use membq::core::obs::MetricsSnapshot;
use membq::prelude::*;

fn smoke() -> bool {
    std::env::var("MEMBQ_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Print a snapshot as an indented table, or the obs-off explanation.
fn show(title: &str, m: &MetricsSnapshot) {
    println!("--- {title} ---");
    if m.is_empty() {
        println!("  (empty: built without the `obs` feature — every counter");
        println!("   is a zero-sized no-op; rerun with `--features obs`)\n");
        return;
    }
    for line in m.to_string().lines() {
        println!("  {line}");
    }
    println!();
}

/// Phase 1: a 2-shard queue, two producers, two consumers, and a mid-run
/// quarantine of shard 0 — steals, rotations, and the health layer's
/// refusal counts all move.
fn sharded_phase(per: u64) {
    let q = Arc::new(ShardedQueue::<OptimalQueue>::optimal(8, 2, 5));
    let total = 2 * per;
    let consumed = Arc::new(AtomicU64::new(0));

    let before = q.metrics();
    std::thread::scope(|s| {
        for _ in 0..2 {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut h = q.register();
                for v in 1..=per {
                    while q.enqueue(&mut h, v).is_err() {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                let mut h = q.register();
                loop {
                    let done = consumed.load(Ordering::Relaxed) >= total;
                    match q.dequeue(&mut h) {
                        Some(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        None if done => break,
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
        // Mid-traffic quarantine: producers homed on shard 0 reroute,
        // which shows up as steals; the flag itself is `quarantines  1`.
        q.quarantine(0);
    });

    let after = q.metrics();
    show("sharded queue, cumulative", &after);
    show("sharded queue, this run (delta)", &after.delta(&before));
}

/// Phase 2: a tiny blocking pair that parks constantly, so the wait
/// blocks fill in — parks, wakes, and the log2 park-latency histogram
/// (`not_empty.park_ns_p2_*` buckets).
fn blocking_phase(per: u64) {
    let q: Arc<BlockingQueue<u64, OptimalQueue>> = Arc::new(BlockingQueue::new(
        OptimalQueue::with_capacity_and_threads(2, 2),
    ));
    std::thread::scope(|s| {
        let qp = Arc::clone(&q);
        s.spawn(move || {
            let mut h = qp.register();
            for v in 1..=per {
                qp.send(&mut h, v).unwrap();
            }
        });
        let mut h = q.register();
        for _ in 0..per {
            q.recv(&mut h).unwrap();
        }
    });
    show("blocking pair (capacity 2)", &q.metrics());
}

fn main() {
    let per: u64 = if smoke() { 500 } else { 50_000 };
    println!(
        "observatory: obs feature {} — workload {per} values/producer\n",
        if cfg!(feature = "obs") { "ON" } else { "OFF" }
    );
    sharded_phase(per);
    blocking_phase(per);
    println!(
        "Counters are relaxed increments on cache lines the operations\n\
         already own; E17 in EXPERIMENTS.md prices the whole layer at\n\
         <= 5% on the uncontended blocking pair."
    );
}
