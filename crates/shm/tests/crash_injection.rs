//! Crash injection: a process is `SIGKILL`ed **at every point in the
//! enqueue write sequence** (before any shared write, and after each of
//! W1 claim / W2 tail-help / W3 value write / W4 publish) and **at every
//! point in the dequeue access sequence** (before any access, and after
//! each of V1 claim / V2 head-help / V3 value read / V4 release), and the
//! survivors must keep the queue fully operational — no wedge, no lost or
//! duplicated elements beyond the killed op's own fate.
//!
//! The killed op's fate is exactly determined by its kill point (solo
//! producer/consumer, so the path is deterministic): an enqueue
//! linearizes at W4 and at no earlier write, so the injected value must
//! surface **iff** the producer survived past W4; a dequeue linearizes at
//! V1, so the head element must survive **iff** the consumer died before
//! V1. That is the "allowance ∈ [committed, committed+1]" acceptance
//! bound collapsed to an equality.

use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Duration;

use bq_shm::{fork_child, ChildExit, ShmByteRing, ShmQueue};

static FORK_LOCK: Mutex<()> = Mutex::new(());

const INJECTED: u64 = 0xDEAD;
/// Retry budget for single parent-side operations; the protocol is
/// obstruction-free for a lone survivor, so a bounded number of retries
/// (reclaims + helps) must suffice — exhaustion means a wedge.
const RETRY_CAP: usize = 10_000;

fn enqueue_or_wedge(q: &ShmQueue<u64>, h: &mut bq_shm::ShmHandle, v: u64) {
    for _ in 0..RETRY_CAP {
        if q.enqueue(h, v).is_ok() {
            return;
        }
        std::thread::yield_now();
    }
    panic!("enqueue({v}) wedged after a producer was SIGKILLed");
}

fn dequeue_or_wedge(q: &ShmQueue<u64>, h: &mut bq_shm::ShmHandle) -> u64 {
    for _ in 0..RETRY_CAP {
        if let Some(v) = q.dequeue(h) {
            return v;
        }
        std::thread::yield_now();
    }
    panic!("dequeue wedged after a producer was SIGKILLed");
}

#[test]
fn sigkill_at_every_enqueue_write_never_wedges() {
    let _g = FORK_LOCK.lock().unwrap();
    for kill_point in 0..=4u64 {
        let q = ShmQueue::<u64>::create_anon(4).unwrap();
        let seg = q.segment().clone();

        let qc = q.clone();
        let child = fork_child(move || {
            let mut h = qc.register();
            // Tell the parent which liveness slot to flag; +1 so the
            // parent can distinguish "never registered".
            qc.segment()
                .scratch(7)
                .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
            h.arm_crash_after_writes(kill_point);
            let _ = qc.enqueue(&mut h, INJECTED);
            // Reached only if the gate never fired — a test bug.
            qc.segment().scratch(6).store(1, Ordering::SeqCst);
        })
        .unwrap();

        let end = child
            .wait()
            .unwrap_or_else(|e| panic!("wait failed at kill point {kill_point}: {e}"));
        assert_eq!(
            end,
            ChildExit::Signaled(libc::SIGKILL),
            "kill point {kill_point}: the gate must fire inside the enqueue"
        );
        assert_eq!(seg.scratch(6).load(Ordering::SeqCst), 0);

        // Reaped ⇒ authoritative death flag for the helpers' oracle.
        let slot = seg.scratch(7).load(Ordering::SeqCst);
        assert!(slot > 0, "child registered before arming");
        seg.mark_dead(slot as usize - 1);

        // Survivor: push enough values through to wrap the ring twice,
        // forcing every position (including the orphaned one) to be
        // reclaimed or consumed. One-in/one-out, so the ring never fills
        // even when the injected element is occupying a slot.
        let mut h = q.register();
        let mut out = Vec::new();
        for v in 1..=8u64 {
            enqueue_or_wedge(&q, &mut h, v);
            out.push(dequeue_or_wedge(&q, &mut h));
        }
        // Drain the remainder (the injected element, when it linearized).
        let mut guard = 0;
        while !q.is_empty() {
            out.push(dequeue_or_wedge(&q, &mut h));
            guard += 1;
            assert!(guard <= 4, "queue never drains to empty");
        }

        let injected = out.iter().filter(|&&v| v == INJECTED).count();
        let expected = usize::from(kill_point == 4);
        assert_eq!(
            injected, expected,
            "kill point {kill_point}: enqueue linearizes at W4 and nowhere \
             earlier (got {out:?})"
        );
        let mut rest: Vec<u64> = out.into_iter().filter(|&v| v != INJECTED).collect();
        rest.sort_unstable();
        assert_eq!(
            rest,
            (1..=8).collect::<Vec<_>>(),
            "survivor's elements conserved"
        );
    }
}

#[test]
fn sigkill_at_every_dequeue_access_never_wedges() {
    let _g = FORK_LOCK.lock().unwrap();
    for kill_point in 0..=4u64 {
        let q = ShmQueue::<u64>::create_anon(4).unwrap();
        let seg = q.segment().clone();

        // Pre-fill; the head element is the one the child will claim.
        let mut h = q.register();
        q.enqueue(&mut h, INJECTED).unwrap();
        q.enqueue(&mut h, 101).unwrap();
        q.enqueue(&mut h, 102).unwrap();

        let qc = q.clone();
        let child = fork_child(move || {
            let mut ch = qc.register();
            qc.segment()
                .scratch(7)
                .store(ch.proc_idx() as u64 + 1, Ordering::SeqCst);
            ch.arm_crash_after_writes(kill_point);
            let _ = qc.dequeue(&mut ch);
            // Reached only if the gate never fired — a test bug.
            qc.segment().scratch(6).store(1, Ordering::SeqCst);
        })
        .unwrap();

        let end = child
            .wait()
            .unwrap_or_else(|e| panic!("wait failed at kill point {kill_point}: {e}"));
        assert_eq!(
            end,
            ChildExit::Signaled(libc::SIGKILL),
            "kill point {kill_point}: the gate must fire inside the dequeue"
        );
        assert_eq!(seg.scratch(6).load(Ordering::SeqCst), 0);

        let slot = seg.scratch(7).load(Ordering::SeqCst);
        assert!(slot > 0, "child registered before arming");
        seg.mark_dead(slot as usize - 1);

        // Survivor: wrap the ring twice so every position — including the
        // one the dead consumer may have left CONSUMING — must be
        // reclaimed or recycled. One-in/one-out keeps headroom.
        let mut out = Vec::new();
        for v in 1..=8u64 {
            enqueue_or_wedge(&q, &mut h, v);
            out.push(dequeue_or_wedge(&q, &mut h));
        }
        let mut guard = 0;
        while !q.is_empty() {
            out.push(dequeue_or_wedge(&q, &mut h));
            guard += 1;
            assert!(guard <= 4, "queue never drains to empty");
        }

        let injected = out.iter().filter(|&&v| v == INJECTED).count();
        let expected = usize::from(kill_point == 0);
        assert_eq!(
            injected, expected,
            "kill point {kill_point}: dequeue linearizes at V1 claim and \
             nowhere later (got {out:?})"
        );
        let mut rest: Vec<u64> = out.into_iter().filter(|&v| v != INJECTED).collect();
        rest.sort_unstable();
        assert_eq!(
            rest,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 101, 102],
            "survivor's elements conserved"
        );
    }
}

/// The eager-recovery acceptance test (DESIGN.md §13.3): a producer that
/// also holds a byte-ring endpoint is `SIGKILL`ed at every point in the
/// enqueue write sequence (W0–W4), and ONE `recover()` sweep per
/// structure must restore everything — the orphaned CLAIMED slot
/// reclaimed, the held byte-ring producer endpoint freed — such that the
/// surviving consumer never collides with the victim's leftovers again
/// (measured by the poison counters staying flat through a full wrap of
/// post-sweep traffic).
#[test]
fn one_recover_sweep_cleans_queue_and_endpoint_at_every_kill_point() {
    let _g = FORK_LOCK.lock().unwrap();
    for kill_point in 0..=4u64 {
        let q = ShmQueue::<u64>::create_anon(4).unwrap();
        let seg = q.segment().clone();
        let ring = ShmByteRing::create_anon(256, 32).unwrap();

        let qc = q.clone();
        let child_ring = ring.clone();
        let child = fork_child(move || {
            // Hold a byte-ring endpoint across the death: its Drop (the
            // claim release) must never run.
            let mut tx = child_ring.producer().expect("child claims producer");
            assert!(tx.push(b"held"));
            let mut h = qc.register();
            qc.segment()
                .scratch(7)
                .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
            h.arm_crash_after_writes(kill_point);
            let _ = qc.enqueue(&mut h, INJECTED);
            std::mem::forget(tx); // unreachable: the gate always fires
        })
        .unwrap();

        assert_eq!(
            child.wait().unwrap(),
            ChildExit::Signaled(libc::SIGKILL),
            "kill point {kill_point}: the gate must fire inside the enqueue"
        );
        let slot = seg.scratch(7).load(Ordering::SeqCst);
        assert!(slot > 0, "child registered before arming");
        seg.mark_dead(slot as usize - 1);

        // ONE sweep each. The queue sweep finds the orphaned CLAIMED slot
        // exactly when the child died inside the claim window (after W1,
        // W2 or W3); at W0 nothing was claimed and at W4 the element was
        // fully published. The ring sweep always frees the one endpoint
        // the child died holding (the pid is gone post-reap, so the
        // oracle confirms).
        let expect_reclaims = usize::from((1..=3).contains(&kill_point));
        assert_eq!(
            q.recover(),
            expect_reclaims,
            "kill point {kill_point}: queue sweep reclaims the orphan iff \
             the death landed inside the claim window"
        );
        assert_eq!(
            ring.recover(),
            1,
            "kill point {kill_point}: the held producer endpoint is freed"
        );
        assert_eq!(q.recover(), 0, "queue sweep is idempotent");
        assert_eq!(ring.recover(), 0, "ring sweep is idempotent");

        // Post-sweep traffic never meets the victim again: wrap the ring
        // twice with the poison counters frozen — any further dead-owner
        // collision would bump them.
        let q_poison = seg.poison_count();
        let ring_poison = ring.segment().poison_count();
        let mut h = q.register();
        let mut got = Vec::new();
        for v in 1..=8u64 {
            enqueue_or_wedge(&q, &mut h, v);
            got.push(dequeue_or_wedge(&q, &mut h));
        }
        while !q.is_empty() {
            got.push(dequeue_or_wedge(&q, &mut h));
        }
        let injected = got.iter().filter(|&&v| v == INJECTED).count();
        assert_eq!(
            injected,
            usize::from(kill_point == 4),
            "kill point {kill_point}: linearization at W4 unchanged by sweeps"
        );
        let mut tx = ring.producer().expect("endpoint claimable post-sweep");
        let mut rx = ring.consumer().unwrap();
        let mut out = Vec::new();
        assert!(rx.pop(&mut out), "pre-death message survives");
        assert_eq!(out, b"held");
        assert!(tx.push(b"successor"));
        assert_eq!(
            seg.poison_count(),
            q_poison,
            "kill point {kill_point}: no lazy reclaim left for the survivor"
        );
        assert_eq!(ring.segment().poison_count(), ring_poison);
    }
}

/// The cross-process observability acceptance test (DESIGN.md §14): the
/// per-process attempt/claim counters live in the *segment*, so a
/// `SIGKILL`ed producer's tallies outlive it and are reported by the
/// snapshot taken after the survivor's `recover()` sweep.
#[test]
fn sigkill_victims_counters_survive_and_report_post_recover() {
    let _g = FORK_LOCK.lock().unwrap();
    let q = ShmQueue::<u64>::create_anon(4).unwrap();
    let seg = q.segment().clone();

    let qc = q.clone();
    let child = fork_child(move || {
        let mut h = qc.register();
        qc.segment()
            .scratch(7)
            .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
        // Each enqueue passes 5 gates (entry + W1–W4); a budget of 12
        // completes two enqueues and dies after the third one's W2 —
        // inside the claim window, leaving an orphaned CLAIMED slot.
        h.arm_crash_after_writes(12);
        for v in 1..=3u64 {
            let _ = qc.enqueue(&mut h, v);
        }
    })
    .unwrap();

    assert_eq!(child.wait().unwrap(), ChildExit::Signaled(libc::SIGKILL));
    let slot = seg.scratch(7).load(Ordering::SeqCst);
    assert!(slot > 0, "child registered before arming");
    let victim = slot as usize - 1;
    seg.mark_dead(victim);

    assert_eq!(q.recover(), 1, "the third enqueue's orphan is reclaimed");

    // The post-recover snapshot reports the victim's full history even
    // though the process is gone: three attempts, three won claims (the
    // third claim was reclaimed, not un-counted), flagged dead.
    let snap = q.stats_snapshot();
    assert_eq!(snap.get(&format!("proc{victim}.attempts")), Some(3));
    assert_eq!(snap.get(&format!("proc{victim}.claims")), Some(3));
    assert_eq!(snap.get(&format!("proc{victim}.dead")), Some(1));
    assert_eq!(snap.get("poisoned"), Some(1));

    // Only the two linearized elements surface (the third died at W2,
    // before its W4 publish).
    let mut h = q.register();
    assert_eq!(dequeue_or_wedge(&q, &mut h), 1);
    assert_eq!(dequeue_or_wedge(&q, &mut h), 2);
    // The next dequeue helps `head` past the reclaimed position and
    // reports empty — the third value never linearized.
    assert_eq!(q.dequeue(&mut h), None);
    assert!(q.is_empty());
}

/// Mid-stream kill: a producer streaming values is killed at an arbitrary
/// (but deterministic per write count) point; a consumer process drains
/// to empty and the parent checks the consumed multiset is exactly the
/// set of *published* values — distinct, gap-free except possibly the
/// final in-flight op.
#[test]
fn sigkill_mid_stream_loses_at_most_the_in_flight_element() {
    let _g = FORK_LOCK.lock().unwrap();
    for writes_before_kill in [7u64, 12, 21] {
        let q = ShmQueue::<u64>::create_anon(4).unwrap();
        let seg = q.segment().clone();

        let qp = q.clone();
        let producer = fork_child(move || {
            let mut h = qp.register();
            qp.segment()
                .scratch(7)
                .store(h.proc_idx() as u64 + 1, Ordering::SeqCst);
            h.arm_crash_after_writes(writes_before_kill);
            for v in 1..=100u64 {
                while qp.enqueue(&mut h, v).is_err() {
                    // SAFETY: allocation-free yield in a forked child.
                    unsafe {
                        libc::sched_yield();
                    }
                }
            }
        })
        .unwrap();

        assert_eq!(
            producer.wait().unwrap(),
            ChildExit::Signaled(libc::SIGKILL),
            "producer runs out of its write budget mid-stream"
        );
        let slot = seg.scratch(7).load(Ordering::SeqCst);
        assert!(slot > 0);
        seg.mark_dead(slot as usize - 1);

        // Consumer drains after the death: it must reach a stable empty
        // state (reclaiming the orphan if any) without wedging.
        let qc = q.clone();
        let mut consumer = fork_child(move || {
            let mut h = qc.register();
            let seg = qc.segment();
            let mut empties = 0u32;
            while empties < 1_000 {
                match qc.dequeue(&mut h) {
                    Some(v) => {
                        empties = 0;
                        seg.scratch(0).fetch_add(v, Ordering::SeqCst);
                        seg.scratch(1).fetch_add(1, Ordering::SeqCst);
                        // Values arrive in FIFO order ⇒ strictly increasing.
                        let last = seg.scratch(2).load(Ordering::SeqCst);
                        if v <= last {
                            seg.scratch(3).store(1, Ordering::SeqCst); // order violation
                        }
                        seg.scratch(2).store(v, Ordering::SeqCst);
                    }
                    None => empties += 1,
                }
            }
        })
        .unwrap();
        let end = consumer
            .wait_deadline(Duration::from_secs(30))
            .unwrap()
            .expect("consumer wedged draining a crashed producer's queue");
        assert_eq!(end, ChildExit::Exited(0));

        let count = seg.scratch(1).load(Ordering::SeqCst);
        let sum = seg.scratch(0).load(Ordering::SeqCst);
        assert_eq!(seg.scratch(3).load(Ordering::SeqCst), 0, "FIFO order held");
        // Published values are a prefix 1..=count of the stream: FIFO +
        // a producer only advances after EnqOk. The killed op is the only
        // one allowed to vanish, and it is the (count+1)-th.
        assert!(count < 100, "producer died before finishing by design");
        assert_eq!(
            sum,
            count * (count + 1) / 2,
            "consumed exactly the published prefix (writes_before_kill = \
             {writes_before_kill}, count = {count})"
        );
        assert!(q.is_empty());
    }
}
