//! `mmap`-backed shared segments with a versioned header and a process
//! liveness table — the substrate `ShmQueue` places its relocatable
//! layout into (DESIGN.md §10.2).
//!
//! A segment is `SegHdr` followed (at the next 128-byte boundary) by a
//! caller-defined **payload** whose layout is identified by a `layout_tag`
//! in the header. Attaching (`open_file`, or implicitly after `fork`)
//! validates magic, version, tag and length before any payload access, so
//! a stale or foreign file can never be misread as a queue.
//!
//! Two backings:
//!
//! * [`ShmSegment::create_anon`] — `MAP_SHARED | MAP_ANONYMOUS`. The
//!   mapping is *shared, not copied,* across `fork`, and stays at the same
//!   virtual address in the child, so a child may keep using views built
//!   by the parent. This is the backing the fork harness and all tests
//!   use.
//! * [`ShmSegment::create_file`] / [`ShmSegment::open_file`] — a mapped
//!   file, for unrelated processes; the open path is where relocation
//!   actually happens (each process gets a different base address and
//!   rebuilds its views from it, which only works because payloads are
//!   relocatable).

use std::fs::OpenOptions;
use std::os::unix::io::AsRawFd;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bq_core::relocatable::{align_up, PadAtomicU64};

/// Magic word identifying a membq shared segment ("MBQSHSEG").
pub const SHM_MAGIC: u64 = 0x4d42_5153_4853_4547;
/// Header format version; bumped on any layout change. Version 2 widened
/// [`ProcSlot`] with the heartbeat/lease words of the health monitor
/// (DESIGN.md §13); version 3 widened it again with the per-process
/// operation counters (attempts/claims/reclaims — DESIGN.md §14), which
/// live in the segment so they survive the owner's death and can be
/// reported by a post-`recover` snapshot. The counters are always
/// present (a segment layout cannot depend on a cargo feature: every
/// attached process must agree on the framing byte-for-byte).
pub const SHM_VERSION: u64 = 3;
/// Process-table size. 8 bits of owner index are packed into queue
/// sequence words, but 64 keeps the header compact.
pub const MAX_PROCS: usize = 64;
/// Number of general-purpose scratch counters in the header (used by the
/// fork harness and workloads for cross-process coordination).
pub const SCRATCH_WORDS: usize = 8;

/// One entry of the process liveness table.
///
/// `pid` doubles as the allocation latch (0 = free, CAS to claim). `dead`
/// is the **authoritative** death flag: the parent sets it after `waitpid`
/// has reaped the process, at which point the process provably executes no
/// further instruction. The `kill(pid, 0) == ESRCH` probe in
/// [`ShmSegment::proc_is_dead`] is a secondary signal with the same
/// one-sided guarantee (ESRCH is only returned once the process is gone;
/// a zombie — dead but unreaped — still reports alive, and a recycled pid
/// reports alive): both sources may be *late* about a death but never
/// report a live process dead, which is what the queue's reclaim safety
/// argument needs (DESIGN.md §10.3).
///
/// `heartbeat`/`lease_ns` form the **suspicion** layer on top
/// (DESIGN.md §13): a process that promised to [`beat`](ShmSegment::beat)
/// within its lease and has not is *suspected* — worth probing and worth
/// a [`recover`](crate::ShmQueue::recover) sweep — but never treated as
/// dead on that evidence alone. Only the two one-sided sources above
/// authorize a reclaim; the lease merely decides *when to ask them*.
#[repr(C)]
pub struct ProcSlot {
    /// Registered pid (0 = slot free).
    pub pid: AtomicU64,
    /// 1 once the process is known reaped.
    pub dead: AtomicU64,
    /// Last `CLOCK_MONOTONIC` heartbeat, in nanoseconds (set at
    /// registration, refreshed by [`ShmSegment::beat`]).
    pub heartbeat: AtomicU64,
    /// Promised heartbeat interval in nanoseconds (0 = no lease: the
    /// process opted out of suspicion, e.g. short-lived registrants).
    pub lease_ns: AtomicU64,
    /// Queue operations attempted by this process (DESIGN.md §14).
    /// Statistics only — `Relaxed`, read by nothing in the protocols —
    /// but stored here rather than in process memory so the count
    /// survives a SIGKILL and tells the post-mortem how far the victim
    /// got.
    pub attempts: AtomicU64,
    /// Slot transitions this process won: enqueue claims (W1) and
    /// dequeue claims (V1) alike.
    pub claims: AtomicU64,
    /// Dead-owner reclaims this process performed as a *survivor*
    /// (lazy reclaims and `recover` sweeps).
    pub reclaims: AtomicU64,
    /// Reserved (keeps the slot a power-of-two 64 bytes; always 0 in
    /// version 3).
    pub reserved: AtomicU64,
}

/// Segment header: identification words, scratch counters, process table.
/// The payload follows at [`payload_offset`](ShmSegment::payload_offset).
#[repr(C, align(128))]
pub struct SegHdr {
    /// [`SHM_MAGIC`].
    pub magic: u64,
    /// [`SHM_VERSION`].
    pub version: u64,
    /// Total mapping length in bytes (header + payload).
    pub total_len: u64,
    /// Caller-defined payload layout identifier.
    pub layout_tag: u64,
    /// 0 while the creator initializes the payload, 1 once ready.
    /// `open_file` refuses segments still at 0.
    pub init: AtomicU64,
    /// Count of fault-containment events observed in this segment: each
    /// dead-owner reclaim (lazy or via a `recover` sweep) and each stolen
    /// byte-ring endpoint bumps it. Monotone; survivors read it to learn
    /// the segment has seen deaths (DESIGN.md §13).
    pub poisoned: AtomicU64,
    /// Coordination counters for harnesses/workloads, one cache-line pair
    /// each so cross-process counting does not false-share.
    pub scratch: [PadAtomicU64; SCRATCH_WORDS],
    /// The liveness table.
    pub procs: [ProcSlot; MAX_PROCS],
}

/// An owned mapping of a shared segment.
///
/// Dropping unmaps this process's view; the underlying shared pages live
/// until every mapping is gone (and the file, if any, is removed).
pub struct ShmSegment {
    base: *mut u8,
    len: usize,
}

// SAFETY: the mapping is shared memory by construction; all cross-process
// coordination goes through the atomics stored inside it. The struct
// itself only carries the base pointer and length.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    /// Byte offset of the payload behind the header.
    pub fn payload_offset() -> usize {
        align_up(std::mem::size_of::<SegHdr>(), 128)
    }

    /// Total segment length for a payload of `payload_len` bytes, rounded
    /// up to the page size.
    pub fn total_len(payload_len: usize) -> usize {
        align_up(Self::payload_offset() + payload_len, 4096)
    }

    fn init_header(base: *mut u8, total: usize, layout_tag: u64) {
        // SAFETY: caller maps `total` zeroed bytes at `base`; writing the
        // header into the front is in bounds. Zeroed scratch/procs/init
        // are already the correct initial state, so only the id words are
        // written.
        unsafe {
            let hdr = base.cast::<SegHdr>();
            (*hdr).magic = SHM_MAGIC;
            (*hdr).version = SHM_VERSION;
            (*hdr).total_len = total as u64;
            (*hdr).layout_tag = layout_tag;
        }
    }

    /// Create an anonymous shared segment with room for `payload_len`
    /// payload bytes, tagged `layout_tag`. The mapping (and everything in
    /// it) is shared with all future `fork` children.
    pub fn create_anon(payload_len: usize, layout_tag: u64) -> std::io::Result<ShmSegment> {
        let total = Self::total_len(payload_len);
        // SAFETY: plain anonymous mapping request; result checked below.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                total,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        let base = base.cast::<u8>();
        Self::init_header(base, total, layout_tag);
        Ok(ShmSegment { base, len: total })
    }

    /// Create a file-backed segment at `path` (truncating any previous
    /// content). Mark it [`publish`](Self::publish)ed once the payload is
    /// initialized so `open_file` in other processes can proceed.
    pub fn create_file(
        path: &Path,
        payload_len: usize,
        layout_tag: u64,
    ) -> std::io::Result<ShmSegment> {
        let total = Self::total_len(payload_len);
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        // SAFETY: valid fd from the line above.
        if unsafe { libc::ftruncate(f.as_raw_fd(), total as libc::off_t) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: mapping a file we just sized; result checked below.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                total,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                f.as_raw_fd(),
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        let base = base.cast::<u8>();
        Self::init_header(base, total, layout_tag);
        Ok(ShmSegment { base, len: total })
    }

    /// Map an existing published segment file, validating the header
    /// (magic, version, tag, recorded length) before returning.
    pub fn open_file(path: &Path, layout_tag: u64) -> std::io::Result<ShmSegment> {
        let f = OpenOptions::new().read(true).write(true).open(path)?;
        let total = f.metadata()?.len() as usize;
        if total < std::mem::size_of::<SegHdr>() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "segment file shorter than its header",
            ));
        }
        // SAFETY: mapping an existing file of `total` bytes; checked below.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                total,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED,
                f.as_raw_fd(),
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        let seg = ShmSegment {
            base: base.cast::<u8>(),
            len: total,
        };
        let hdr = seg.hdr();
        let bad = |what: &str| {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("not a membq segment: bad {what}"),
            ))
        };
        if hdr.magic != SHM_MAGIC {
            return bad("magic");
        }
        if hdr.version != SHM_VERSION {
            return bad("version");
        }
        if hdr.layout_tag != layout_tag {
            return bad("layout tag");
        }
        if hdr.total_len as usize != total {
            return bad("recorded length");
        }
        if hdr.init.load(Ordering::Acquire) != 1 {
            return bad("init flag (payload not published)");
        }
        Ok(seg)
    }

    /// Mark the payload initialized (Release-published to openers).
    pub fn publish(&self) {
        self.hdr().init.store(1, Ordering::Release);
    }

    fn hdr(&self) -> &SegHdr {
        // SAFETY: the header is written by every constructor before the
        // segment is returned.
        unsafe { &*self.base.cast::<SegHdr>() }
    }

    /// The payload layout tag recorded in the header.
    pub fn layout_tag(&self) -> u64 {
        self.hdr().layout_tag
    }

    /// Base address of the payload region in this process's mapping.
    pub fn payload_ptr(&self) -> *mut u8 {
        // SAFETY: payload_offset < len by construction.
        unsafe { self.base.add(Self::payload_offset()) }
    }

    /// Payload capacity in bytes.
    pub fn payload_len(&self) -> usize {
        self.len - Self::payload_offset()
    }

    /// Total mapping length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (segments cannot be empty).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scratch counter `i` (`i <` [`SCRATCH_WORDS`]).
    pub fn scratch(&self, i: usize) -> &AtomicU64 {
        &self.hdr().scratch[i].0
    }

    // -- the process liveness table --------------------------------------

    /// Register process `pid` in the table, returning its slot index.
    /// Panics when all [`MAX_PROCS`] slots are taken.
    pub fn register_proc(&self, pid: u32) -> usize {
        assert!(pid != 0, "pid 0 cannot be registered");
        for (i, slot) in self.hdr().procs.iter().enumerate() {
            if slot
                .pid
                .compare_exchange(0, pid as u64, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.dead.store(0, Ordering::Release);
                slot.lease_ns.store(0, Ordering::Release);
                slot.attempts.store(0, Ordering::Release);
                slot.claims.store(0, Ordering::Release);
                slot.reclaims.store(0, Ordering::Release);
                slot.heartbeat.store(monotonic_ns(), Ordering::Release);
                return i;
            }
        }
        panic!("process table full ({MAX_PROCS} slots)");
    }

    /// Register the **calling** process.
    pub fn register_self(&self) -> usize {
        // SAFETY: getpid has no preconditions.
        self.register_proc(unsafe { libc::getpid() } as u32)
    }

    /// The slot already registered to the calling pid (and not flagged
    /// dead), or a fresh registration. Role-based structures (the byte
    /// ring's claimed endpoints) attribute their counters through this so
    /// repeated claims in one process share one table slot instead of
    /// consuming one per claim.
    pub fn find_or_register_self(&self) -> usize {
        // SAFETY: getpid has no preconditions.
        let me = unsafe { libc::getpid() } as u64;
        for (i, slot) in self.hdr().procs.iter().enumerate() {
            if slot.pid.load(Ordering::Acquire) == me && slot.dead.load(Ordering::Acquire) == 0 {
                return i;
            }
        }
        self.register_self()
    }

    /// The pid registered in slot `idx` (0 = free).
    pub fn proc_pid(&self, idx: usize) -> u32 {
        self.hdr().procs[idx].pid.load(Ordering::Acquire) as u32
    }

    /// Authoritatively mark slot `idx` dead. Call only once the process
    /// is known to execute no further instruction (e.g. after `waitpid`
    /// reaped it) — the queue's reclaim safety rests on this.
    pub fn mark_dead(&self, idx: usize) {
        self.hdr().procs[idx].dead.store(1, Ordering::Release);
    }

    /// Is the process in slot `idx` dead?
    ///
    /// True iff the authoritative flag is set **or** the pid probe
    /// (`kill(pid, 0)`) reports `ESRCH`. Both sources are one-sided: they
    /// may lag a real death (zombie, recycled pid ⇒ "alive") but never
    /// report a live process dead, so a reclaim triggered by this answer
    /// can never race a future write from the owner.
    pub fn proc_is_dead(&self, idx: usize) -> bool {
        let slot = &self.hdr().procs[idx];
        if slot.dead.load(Ordering::Acquire) == 1 {
            return true;
        }
        let pid = slot.pid.load(Ordering::Acquire);
        if pid == 0 {
            return false; // unregistered slot: nothing to reclaim from
        }
        // SAFETY: signal 0 probes existence without delivering anything.
        let r = unsafe { libc::kill(pid as libc::pid_t, 0) };
        // SAFETY: errno location is always valid on this thread.
        r == -1 && unsafe { *libc::__errno_location() } == libc::ESRCH
    }

    // -- the heartbeat / lease suspicion layer ---------------------------

    /// Refresh slot `idx`'s heartbeat to "now" (`CLOCK_MONOTONIC`). Cheap
    /// enough to call from a worker's main loop; a process that took a
    /// lease and stops beating becomes a *suspect*, never more.
    pub fn beat(&self, idx: usize) {
        self.hdr().procs[idx]
            .heartbeat
            .store(monotonic_ns(), Ordering::Release);
    }

    /// Take (or change) slot `idx`'s heartbeat lease: the process promises
    /// to [`beat`](Self::beat) at least every `lease`. Also beats, so the
    /// lease never starts expired. A zero lease opts back out.
    pub fn set_lease(&self, idx: usize, lease: Duration) {
        let slot = &self.hdr().procs[idx];
        slot.heartbeat.store(monotonic_ns(), Ordering::Release);
        slot.lease_ns.store(
            lease.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Release,
        );
    }

    /// Has slot `idx` broken its heartbeat lease? **Suspicion only**: a
    /// stalled-but-live process (SIGSTOP, long GC, scheduler starvation)
    /// expires its lease too, so an expired lease authorizes nothing by
    /// itself — it tells monitors to run [`proc_is_dead`](Self::proc_is_dead)
    /// and, if that confirms, a `recover` sweep. Always false without a
    /// lease or for a free slot.
    pub fn lease_expired(&self, idx: usize) -> bool {
        let slot = &self.hdr().procs[idx];
        if slot.pid.load(Ordering::Acquire) == 0 {
            return false;
        }
        let lease = slot.lease_ns.load(Ordering::Acquire);
        if lease == 0 {
            return false;
        }
        monotonic_ns().saturating_sub(slot.heartbeat.load(Ordering::Acquire)) > lease
    }

    /// Slots whose lease has expired *and* whose death the authoritative
    /// oracle confirms — the worklist a health monitor feeds to
    /// `recover`. The lease filter keeps the sweep from probing every
    /// registered pid on every tick; the oracle keeps it sound.
    pub fn confirmed_suspects(&self) -> Vec<usize> {
        (0..MAX_PROCS)
            .filter(|&i| self.lease_expired(i) && self.proc_is_dead(i))
            .collect()
    }

    // -- the per-process operation counters (DESIGN.md §14) --------------

    /// Count one queue-operation attempt by the process in slot `idx`.
    /// `Relaxed`: a pure statistic, read by no protocol decision, living
    /// in the segment only so it survives the owner's death.
    pub fn note_proc_attempt(&self, idx: usize) {
        self.hdr().procs[idx]
            .attempts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful slot/record claim by slot `idx`.
    pub fn note_proc_claim(&self, idx: usize) {
        self.hdr().procs[idx].claims.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one dead-owner reclaim performed *by* slot `idx` (the
    /// survivor doing the cleanup, not the victim).
    pub fn note_proc_reclaim(&self, idx: usize) {
        self.hdr().procs[idx]
            .reclaims
            .fetch_add(1, Ordering::Relaxed);
    }

    /// `(attempts, claims, reclaims)` recorded by slot `idx` — readable
    /// by any attached process, including after the slot's owner died.
    pub fn proc_stats(&self, idx: usize) -> (u64, u64, u64) {
        let slot = &self.hdr().procs[idx];
        (
            slot.attempts.load(Ordering::Relaxed),
            slot.claims.load(Ordering::Relaxed),
            slot.reclaims.load(Ordering::Relaxed),
        )
    }

    /// Cross-process aggregation (DESIGN.md §14): one snapshot covering
    /// every *registered* slot (`procN.attempts/claims/reclaims`, plus a
    /// `procN.dead` marker) and the segment-wide poison count. Unlike
    /// the in-process counter blocks this is **not** feature-gated: the
    /// counters are part of the shm layout, so they are always live.
    pub fn stats_snapshot(&self) -> bq_core::MetricsSnapshot {
        let mut snap = bq_core::MetricsSnapshot::new();
        snap.push("poisoned", self.poison_count());
        for i in 0..MAX_PROCS {
            if self.proc_pid(i) == 0 {
                continue;
            }
            let (attempts, claims, reclaims) = self.proc_stats(i);
            snap.push(format!("proc{i}.attempts"), attempts);
            snap.push(format!("proc{i}.claims"), claims);
            snap.push(format!("proc{i}.reclaims"), reclaims);
            snap.push(format!("proc{i}.dead"), u64::from(self.proc_is_dead(i)));
        }
        snap
    }

    // -- the poison counter ----------------------------------------------

    /// Record one fault-containment event (dead-owner reclaim, stolen
    /// endpoint) in the segment header.
    pub fn note_poison(&self) {
        self.hdr().poisoned.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of fault-containment events recorded in this segment since
    /// creation. Zero means no survivor ever had to clean up after a
    /// death here.
    pub fn poison_count(&self) -> u64 {
        self.hdr().poisoned.load(Ordering::Acquire)
    }
}

/// `CLOCK_MONOTONIC` in nanoseconds — the heartbeat clock. Monotonic (so
/// never jumps backwards on wall-clock changes) and, on Linux, consistent
/// across all processes of the machine, which is what a cross-process
/// lease comparison needs.
fn monotonic_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: valid timespec pointer; CLOCK_MONOTONIC always exists.
    unsafe {
        libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts);
    }
    (ts.tv_sec as u64) * 1_000_000_000 + ts.tv_nsec as u64
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        // SAFETY: base/len are exactly the mapping created in a
        // constructor; unmapping this process's view cannot invalidate
        // other processes' mappings of the same pages.
        unsafe {
            libc::munmap(self.base.cast::<libc::c_void>(), self.len);
        }
    }
}

const _: () = {
    use std::mem::{align_of, offset_of, size_of};
    // Identification words first, then padded scratch, then the table —
    // pinned so independently-built binaries agree on the framing.
    assert!(align_of::<SegHdr>() == 128);
    assert!(offset_of!(SegHdr, magic) == 0);
    assert!(offset_of!(SegHdr, version) == 8);
    assert!(offset_of!(SegHdr, total_len) == 16);
    assert!(offset_of!(SegHdr, layout_tag) == 24);
    assert!(offset_of!(SegHdr, init) == 32);
    assert!(offset_of!(SegHdr, poisoned) == 40);
    assert!(offset_of!(SegHdr, scratch) == 128);
    assert!(offset_of!(SegHdr, procs) == 128 + SCRATCH_WORDS * 128);
    assert!(size_of::<ProcSlot>() == 64);
    assert!(offset_of!(ProcSlot, heartbeat) == 16);
    assert!(offset_of!(ProcSlot, lease_ns) == 24);
    assert!(offset_of!(ProcSlot, attempts) == 32);
    assert!(offset_of!(ProcSlot, claims) == 40);
    assert!(offset_of!(ProcSlot, reclaims) == 48);
    assert!(size_of::<SegHdr>() == 128 + SCRATCH_WORDS * 128 + MAX_PROCS * 64);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anon_segment_header_and_payload() {
        let seg = ShmSegment::create_anon(1000, 42).unwrap();
        assert_eq!(seg.layout_tag(), 42);
        assert!(seg.payload_len() >= 1000);
        assert_eq!(seg.payload_ptr() as usize % 128, 0, "payload aligned");
        // Payload starts zeroed.
        // SAFETY: in-bounds read of the fresh mapping.
        let first = unsafe { seg.payload_ptr().cast::<u64>().read() };
        assert_eq!(first, 0);
        seg.scratch(3).store(99, Ordering::SeqCst);
        assert_eq!(seg.scratch(3).load(Ordering::SeqCst), 99);
    }

    #[test]
    fn proc_table_register_and_liveness() {
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let me = seg.register_self();
        assert!(!seg.proc_is_dead(me), "calling process is alive");
        // A bogus (but never-allocated) pid reads as dead via ESRCH.
        let ghost = seg.register_proc(u32::MAX - 1);
        assert_ne!(me, ghost);
        assert!(seg.proc_is_dead(ghost));
        // The authoritative flag works without any probe.
        let flagged = seg.register_proc(seg.proc_pid(me));
        assert!(!seg.proc_is_dead(flagged));
        seg.mark_dead(flagged);
        assert!(seg.proc_is_dead(flagged));
    }

    #[test]
    fn lease_expiry_is_suspicion_not_death() {
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let me = seg.register_self();
        // No lease taken: never suspect, regardless of heartbeat age.
        assert!(!seg.lease_expired(me));
        // A microscopic lease expires almost immediately...
        seg.set_lease(me, Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(seg.lease_expired(me), "broken lease raises suspicion");
        // ...but a live process is never *dead* on that evidence.
        assert!(!seg.proc_is_dead(me));
        assert!(
            seg.confirmed_suspects().is_empty(),
            "suspicion without oracle confirmation reclaims nothing"
        );
        // Beating renews the lease window.
        seg.set_lease(me, Duration::from_secs(3600));
        assert!(!seg.lease_expired(me));

        // A ghost (ESRCH pid) with a broken lease is a confirmed suspect.
        let ghost = seg.register_proc(u32::MAX - 7);
        seg.set_lease(ghost, Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(seg.confirmed_suspects(), vec![ghost]);
    }

    #[test]
    fn proc_counters_live_in_the_segment_and_survive_death_flags() {
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        let me = seg.register_self();
        seg.note_proc_attempt(me);
        seg.note_proc_attempt(me);
        seg.note_proc_claim(me);
        // A ghost producer: counters written "by" it stay readable after
        // it is known dead — the SIGKILL-survival property at slot level.
        let ghost = seg.register_proc(u32::MAX - 3);
        seg.note_proc_attempt(ghost);
        seg.note_proc_claim(ghost);
        assert!(seg.proc_is_dead(ghost));
        seg.note_proc_reclaim(me); // the survivor cleaned up
        assert_eq!(seg.proc_stats(me), (2, 1, 1));
        assert_eq!(seg.proc_stats(ghost), (1, 1, 0));
        let snap = seg.stats_snapshot();
        assert_eq!(snap.get(&format!("proc{ghost}.attempts")), Some(1));
        assert_eq!(snap.get(&format!("proc{ghost}.dead")), Some(1));
        assert_eq!(snap.get(&format!("proc{me}.reclaims")), Some(1));
        assert_eq!(snap.get("poisoned"), Some(0));
    }

    #[test]
    fn poison_counter_counts_monotonically() {
        let seg = ShmSegment::create_anon(64, 1).unwrap();
        assert_eq!(seg.poison_count(), 0, "fresh segment has seen no faults");
        seg.note_poison();
        seg.note_poison();
        assert_eq!(seg.poison_count(), 2);
    }

    #[test]
    fn file_segment_round_trip_and_validation() {
        let dir = std::env::temp_dir().join(format!("membq-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");

        let seg = ShmSegment::create_file(&path, 256, 7).unwrap();
        // Not yet published: openers must refuse.
        assert!(ShmSegment::open_file(&path, 7).is_err());
        // SAFETY: in-bounds write.
        unsafe { seg.payload_ptr().cast::<u64>().write(0xAB) };
        seg.publish();

        let other = ShmSegment::open_file(&path, 7).unwrap();
        // SAFETY: in-bounds read of the second mapping.
        let v = unsafe { other.payload_ptr().cast::<u64>().read() };
        assert_eq!(v, 0xAB, "both mappings see the same pages");

        // Wrong tag and truncated file are rejected.
        assert!(ShmSegment::open_file(&path, 8).is_err());
        std::fs::write(dir.join("short.bin"), b"tiny").unwrap();
        assert!(ShmSegment::open_file(&dir.join("short.bin"), 7).is_err());

        drop(seg);
        drop(other);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
