//! Property-based tests for the DCSS substrate: a random script of DCSS
//! operations over disjoint data/control locations must agree exactly with
//! the atomic reference semantics
//! `if *a == ea && *b == eb { *a = na; Success } else { … }`,
//! and reads must never observe descriptor words.
//!
//! Per the RDCSS contract (Harris et al., enforced by an assertion), the
//! updated address and the guard address come from disjoint sets: data
//! cells vs control cells — exactly how the Listing 4 queue uses them
//! (slots vs positioning counters).

use std::sync::atomic::{AtomicU64, Ordering};

use bq_dcss::{DcssArena, DcssResult};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Script {
    /// (data idx, exp_data, new_data, control idx, exp_control)
    ops: Vec<(usize, u64, u64, usize, u64)>,
}

fn script_strategy(data: usize, control: usize) -> impl Strategy<Value = Script> {
    prop::collection::vec((0..data, 0u64..6, 0u64..6, 0..control, 0u64..6), 1..150)
        .prop_map(|ops| Script { ops })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_dcss_matches_reference(
        script in script_strategy(4, 2),
        init_data in prop::collection::vec(0u64..6, 4),
        init_ctrl in prop::collection::vec(0u64..6, 2),
    ) {
        let arena = DcssArena::new(2);
        let data: Vec<AtomicU64> = init_data.iter().map(|&v| AtomicU64::new(v)).collect();
        let ctrl: Vec<AtomicU64> = init_ctrl.iter().map(|&v| AtomicU64::new(v)).collect();
        let mut md: Vec<u64> = init_data.clone();
        let mc: Vec<u64> = init_ctrl.clone(); // controls are never updated

        for (a, ea, na, b, eb) in script.ops {
            let r = arena.dcss(0, &data[a], ea, na, &ctrl[b], eb);
            let expected = if md[a] != ea {
                DcssResult::FirstMismatch(md[a])
            } else if mc[b] != eb {
                DcssResult::SecondMismatch
            } else {
                md[a] = na;
                DcssResult::Success
            };
            prop_assert_eq!(r, expected);
            // Memory agrees with the model and holds no descriptors.
            for (i, c) in data.iter().enumerate() {
                prop_assert_eq!(arena.read(c), md[i]);
                prop_assert!(c.load(Ordering::SeqCst) >> 63 == 0);
            }
        }
    }

    #[test]
    fn interleaved_tids_share_the_pool(
        ops_a in script_strategy(3, 2),
        ops_b in script_strategy(3, 2),
    ) {
        // Two tids used alternately from one thread: exercises descriptor
        // alternation and reuse without real concurrency (true concurrency
        // is covered by the unit stress tests).
        let arena = DcssArena::new(2);
        let data: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        let ctrl: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        let mut md = [0u64; 3];
        let mc = [0u64; 2];
        let mut iter_a = ops_a.ops.into_iter();
        let mut iter_b = ops_b.ops.into_iter();
        loop {
            let mut progressed = false;
            for (tid, it) in [(0usize, &mut iter_a), (1usize, &mut iter_b)] {
                if let Some((a, ea, na, b, eb)) = it.next() {
                    progressed = true;
                    let r = arena.dcss(tid, &data[a], ea, na, &ctrl[b], eb);
                    if md[a] == ea && mc[b] == eb {
                        prop_assert!(r.succeeded());
                        md[a] = na;
                    } else {
                        prop_assert!(!r.succeeded());
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        for (i, c) in data.iter().enumerate() {
            prop_assert_eq!(arena.read(c), md[i]);
        }
    }
}

#[test]
#[should_panic(expected = "distinct")]
fn self_referential_dcss_rejected() {
    let arena = DcssArena::new(1);
    let a = AtomicU64::new(0);
    let _ = arena.dcss(0, &a, 0, 1, &a, 0);
}
