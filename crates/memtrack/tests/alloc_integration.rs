//! Integration test installing the counting allocator for real: verifies
//! that `AllocScope` observes actual heap traffic of this test binary.

use bq_memtrack::{AllocScope, TrackingAlloc};

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

#[test]
fn scope_observes_real_allocations() {
    let scope = AllocScope::begin();
    let v: Vec<u64> = (0..10_000).collect();
    assert!(
        scope.live_delta() >= 10_000 * 8,
        "an 80 KB vector must be visible: {}",
        scope.live_delta()
    );
    drop(v);
    // After the drop the delta returns to (near) zero.
    assert!(scope.live_delta() < 1024);
}

#[test]
fn scope_counts_blocks() {
    let scope = AllocScope::begin();
    let mut boxes = Vec::new();
    for i in 0..100u64 {
        boxes.push(Box::new(i));
    }
    assert!(scope.allocated_blocks_delta() >= 100);
    assert!(scope.live_blocks_delta() >= 100);
    drop(boxes);
    assert!(scope.live_blocks_delta() < 100);
}

#[test]
fn queue_construction_is_measurable() {
    // The overhead experiments rely on this: building a structure shows up
    // as a live delta of at least its structural size.
    let scope = AllocScope::begin();
    let slots: Box<[u64]> = vec![0u64; 4096].into_boxed_slice();
    assert!(scope.live_delta() >= 4096 * 8);
    drop(slots);
}
