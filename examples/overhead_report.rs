//! Memory-overhead report across every queue in the workspace — the
//! paper's core metric, measured two ways (structural accounting and the
//! counting allocator) so they can be cross-checked.
//!
//! ```text
//! cargo run --release --example overhead_report
//! ```

use bq_memtrack::report::render_breakdown;
use bq_memtrack::{AllocScope, OverheadRow, TrackingAlloc};
use membq::bench_registry::{QueueKind, ALL_KINDS};

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

fn main() {
    let c = 1 << 12;
    let t = 8;
    println!("memory overhead report at C = {c}, T = {t}\n");

    for kind in ALL_KINDS {
        let scope = AllocScope::begin();
        let q = kind.build(c, t);
        let measured = scope.live_delta();
        let row = OverheadRow {
            name: format!("{} [{}]", kind.name(), kind.claimed_overhead()),
            capacity: c,
            threads: t,
            breakdown: q.footprint(),
            measured_heap_bytes: Some(measured),
        };
        print!("{}", render_breakdown(&row));
        let structural = row.breakdown.total_bytes();
        let ratio = measured as f64 / structural.max(1) as f64;
        println!(
            "  structural total {structural} B vs measured heap {measured} B (x{ratio:.2} — \
             allocator rounding, cache padding, container headers)\n"
        );
    }

    println!(
        "The paper's result in one line: every row that is both sound and flat in C\n\
         pays at least Θ(T) (Listings 4/5), and every Θ(1) row either blocks\n\
         (mutex), assumes distinctness (Listing 2), assumes LL/SC hardware\n\
         (Listing 3), or is demonstrably non-linearizable (naive, two-null)."
    );

    let _ = QueueKind::Optimal; // re-exported for doc discoverability
}
