//! Offline stand-in for the `crossbeam-utils` crate (the [`CachePadded`]
//! subset the workspace uses). Vendored because the build environment has
//! no crates.io access.

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that neighbouring values never
/// share a cache line (128 covers the pair-prefetch granularity of modern
/// x86 and the large lines of some ARM parts — same choice as crossbeam).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line of its own.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}
